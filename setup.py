"""Setup shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 support (no ``wheel`` package):
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
