"""repro — a reproduction of BLAST (Simonini, Bergamaschi, Jagadish;
PVLDB 9(12), 2016): loosely schema-aware meta-blocking for entity
resolution.

Quickstart
----------
>>> from repro import Blast, load_clean_clean, evaluate_blocks
>>> dataset = load_clean_clean("ar1", scale=0.25)
>>> result = Blast().run(dataset)
>>> quality = evaluate_blocks(result.blocks, dataset)
>>> quality.pair_completeness > 0.8
True

The same run as an explicit stage composition (every paper variant is a
pipeline; see DESIGN.md for the architecture and the ablation catalogue):

>>> from repro import build_pipeline
>>> result = build_pipeline(blocker="token", weighting="cbs").run(dataset)
>>> for report in result.stage_reports:
...     _ = report.seconds  # per-stage wall-clock + block statistics

See DESIGN.md for the stage/registry architecture, the component registry
names accepted by ``--blocker``/``--weighting``/``--pruning``, and the
three-line compositions behind each Figure 8 ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core import (
        Blast,
        BlastConfig,
        BlastResult,
        BlockerStage,
        BlockFilteringStage,
        BlockPurgingStage,
        MetaBlockingStage,
        Pipeline,
        PipelineContext,
        PipelineError,
        SchemaAwareBlockingStage,
        SchemaExtraction,
        Stage,
        StageReport,
        TokenBlockingStage,
        build_pipeline,
        prepare_blocks,
        register_backend,
        register_blocker,
        register_pruning,
        register_stream_view,
        register_weighting,
    )
    from repro.data import (
        EntityCollection,
        EntityProfile,
        ERDataset,
        GroundTruth,
        InternedCorpus,
        TokenDictionary,
    )
    from repro.datasets import load_clean_clean, load_dirty
    from repro.graph import MetaBlocker, WeightingScheme
    from repro.metrics import evaluate_blocks
    from repro.serving import ReproServer, ServingClient, TenantRegistry
    from repro.streaming import (
        IncrementalBlockIndex,
        StreamingMetaBlocker,
        StreamingSession,
        StreamingStage,
    )

__version__ = "1.3.0"

#: Lazy export table (PEP 562): public name -> defining module.  The
#: pipeline imports stay lazy because ``python -m repro.analysis`` — the
#: dependency-free ``lint-static`` CI gate — imports the ``repro``
#: package; eager imports here would drag numpy into environments that
#: deliberately have none.  Attribute access (``repro.Blast``,
#: ``from repro import Blast``) resolves through :func:`__getattr__` on
#: first use and is cached in the module namespace afterwards.
_EXPORTS: dict[str, str] = {
    "Blast": "repro.core",
    "BlastConfig": "repro.core",
    "BlastResult": "repro.core",
    "BlockerStage": "repro.core",
    "BlockFilteringStage": "repro.core",
    "BlockPurgingStage": "repro.core",
    "MetaBlockingStage": "repro.core",
    "Pipeline": "repro.core",
    "PipelineContext": "repro.core",
    "PipelineError": "repro.core",
    "SchemaAwareBlockingStage": "repro.core",
    "SchemaExtraction": "repro.core",
    "Stage": "repro.core",
    "StageReport": "repro.core",
    "TokenBlockingStage": "repro.core",
    "build_pipeline": "repro.core",
    "prepare_blocks": "repro.core",
    "register_backend": "repro.core",
    "register_blocker": "repro.core",
    "register_pruning": "repro.core",
    "register_stream_view": "repro.core",
    "register_weighting": "repro.core",
    "EntityCollection": "repro.data",
    "EntityProfile": "repro.data",
    "ERDataset": "repro.data",
    "GroundTruth": "repro.data",
    "InternedCorpus": "repro.data",
    "TokenDictionary": "repro.data",
    "load_clean_clean": "repro.datasets",
    "load_dirty": "repro.datasets",
    "MetaBlocker": "repro.graph",
    "WeightingScheme": "repro.graph",
    "evaluate_blocks": "repro.metrics",
    "ReproServer": "repro.serving",
    "ServingClient": "repro.serving",
    "TenantRegistry": "repro.serving",
    "IncrementalBlockIndex": "repro.streaming",
    "StreamingMetaBlocker": "repro.streaming",
    "StreamingSession": "repro.streaming",
    "StreamingStage": "repro.streaming",
}

__all__ = [
    "Blast",
    "BlastConfig",
    "BlastResult",
    "prepare_blocks",
    "Stage",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "StageReport",
    "SchemaExtraction",
    "TokenBlockingStage",
    "SchemaAwareBlockingStage",
    "BlockerStage",
    "BlockPurgingStage",
    "BlockFilteringStage",
    "MetaBlockingStage",
    "build_pipeline",
    "register_blocker",
    "register_weighting",
    "register_pruning",
    "register_backend",
    "register_stream_view",
    "IncrementalBlockIndex",
    "StreamingMetaBlocker",
    "StreamingSession",
    "StreamingStage",
    "ReproServer",
    "ServingClient",
    "TenantRegistry",
    "EntityProfile",
    "EntityCollection",
    "GroundTruth",
    "ERDataset",
    "InternedCorpus",
    "TokenDictionary",
    "load_clean_clean",
    "load_dirty",
    "MetaBlocker",
    "WeightingScheme",
    "evaluate_blocks",
    "__version__",
]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
