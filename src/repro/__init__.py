"""repro — a reproduction of BLAST (Simonini, Bergamaschi, Jagadish;
PVLDB 9(12), 2016): loosely schema-aware meta-blocking for entity
resolution.

Quickstart
----------
>>> from repro import Blast, load_clean_clean, evaluate_blocks
>>> dataset = load_clean_clean("ar1", scale=0.25)
>>> result = Blast().run(dataset)
>>> quality = evaluate_blocks(result.blocks, dataset)
>>> quality.pair_completeness > 0.8
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import Blast, BlastConfig, BlastResult, prepare_blocks
from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth
from repro.datasets import load_clean_clean, load_dirty
from repro.graph import MetaBlocker, WeightingScheme
from repro.metrics import evaluate_blocks

__version__ = "1.0.0"

__all__ = [
    "Blast",
    "BlastConfig",
    "BlastResult",
    "prepare_blocks",
    "EntityProfile",
    "EntityCollection",
    "GroundTruth",
    "ERDataset",
    "load_clean_clean",
    "load_dirty",
    "MetaBlocker",
    "WeightingScheme",
    "evaluate_blocks",
    "__version__",
]
