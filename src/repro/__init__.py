"""repro — a reproduction of BLAST (Simonini, Bergamaschi, Jagadish;
PVLDB 9(12), 2016): loosely schema-aware meta-blocking for entity
resolution.

Quickstart
----------
>>> from repro import Blast, load_clean_clean, evaluate_blocks
>>> dataset = load_clean_clean("ar1", scale=0.25)
>>> result = Blast().run(dataset)
>>> quality = evaluate_blocks(result.blocks, dataset)
>>> quality.pair_completeness > 0.8
True

The same run as an explicit stage composition (every paper variant is a
pipeline; see DESIGN.md for the architecture and the ablation catalogue):

>>> from repro import build_pipeline
>>> result = build_pipeline(blocker="token", weighting="cbs").run(dataset)
>>> for report in result.stage_reports:
...     _ = report.seconds  # per-stage wall-clock + block statistics

See DESIGN.md for the stage/registry architecture, the component registry
names accepted by ``--blocker``/``--weighting``/``--pruning``, and the
three-line compositions behind each Figure 8 ablation.
"""

from repro.core import (
    Blast,
    BlastConfig,
    BlastResult,
    BlockerStage,
    BlockFilteringStage,
    BlockPurgingStage,
    MetaBlockingStage,
    Pipeline,
    PipelineContext,
    PipelineError,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    Stage,
    StageReport,
    TokenBlockingStage,
    build_pipeline,
    prepare_blocks,
    register_backend,
    register_blocker,
    register_pruning,
    register_stream_view,
    register_weighting,
)
from repro.data import (
    EntityCollection,
    EntityProfile,
    ERDataset,
    GroundTruth,
    InternedCorpus,
    TokenDictionary,
)
from repro.datasets import load_clean_clean, load_dirty
from repro.graph import MetaBlocker, WeightingScheme
from repro.metrics import evaluate_blocks
from repro.streaming import (
    IncrementalBlockIndex,
    StreamingMetaBlocker,
    StreamingSession,
    StreamingStage,
)

__version__ = "1.3.0"

__all__ = [
    "Blast",
    "BlastConfig",
    "BlastResult",
    "prepare_blocks",
    "Stage",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "StageReport",
    "SchemaExtraction",
    "TokenBlockingStage",
    "SchemaAwareBlockingStage",
    "BlockerStage",
    "BlockPurgingStage",
    "BlockFilteringStage",
    "MetaBlockingStage",
    "build_pipeline",
    "register_blocker",
    "register_weighting",
    "register_pruning",
    "register_backend",
    "register_stream_view",
    "IncrementalBlockIndex",
    "StreamingMetaBlocker",
    "StreamingSession",
    "StreamingStage",
    "EntityProfile",
    "EntityCollection",
    "GroundTruth",
    "ERDataset",
    "InternedCorpus",
    "TokenDictionary",
    "load_clean_clean",
    "load_dirty",
    "MetaBlocker",
    "WeightingScheme",
    "evaluate_blocks",
    "__version__",
]
