"""Command-line interface.

Seven subcommands::

    python -m repro run      --left a.jsonl --right b.jsonl --output pairs.csv
    python -m repro evaluate --left a.jsonl --right b.jsonl \
                             --ground-truth gt.csv
    python -m repro generate --dataset ar1 --outdir data/
    python -m repro stream   --input stream.jsonl --output matches.jsonl
    python -m repro serve    --data-dir tenants/ --port 7711
    python -m repro lint     src/
    python -m repro bench    benchmarks/configs/scaling.toml

``run`` executes the BLAST pipeline and writes the candidate pairs;
``evaluate`` additionally scores them against a ground truth; ``generate``
materializes one of the built-in benchmark datasets as JSONL + CSV so the
other two commands (and external tools) can consume it; ``stream`` replays
a JSON-lines profile stream (``.gz`` transparently) through the
incremental subsystem and emits each arrival's retained candidates as they
are computed; ``serve`` runs the multi-tenant JSON-lines-over-TCP server
of :mod:`repro.serving` (one journaled, crash-recovering streaming
session per tenant); ``lint`` runs the repro-lint static contract checks
of :mod:`repro.analysis` (also available dependency-free as ``python -m
repro.analysis``); ``bench`` executes a declarative experiment config
(datasets x pipelines x backends grid) through
:mod:`repro.experiments` and diffs the results against committed
benchmark history with per-metric tolerances.

``run``, ``evaluate`` and ``stream`` assemble their components from the
registries: ``--blocker``, ``--weighting``, ``--pruning``, ``--backend``
and ``--consistency`` accept any registered name (components added via
``repro.register_blocker`` and friends appear automatically, in ``--help``
too).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

import json
import time

from repro.analysis import cli as _lint_cli
from repro.experiments import engine as _bench_cli
from repro.core import BlastConfig, build_pipeline
from repro.core.registry import (
    BACKENDS,
    BLOCKERS,
    PRUNERS,
    STREAM_VIEWS,
    WEIGHTINGS,
)
from repro.data.collection import EntityCollection
from repro.data.dataset import ERDataset
from repro.data.io import (
    load_collection,
    load_ground_truth,
    save_collection,
    save_ground_truth,
)
from repro.data.ground_truth import GroundTruth
from repro.datasets import load_clean_clean, load_dirty
from repro.datasets.benchmarks import CLEAN_CLEAN_DATASETS
from repro.datasets.dirty import DIRTY_DATASETS
from repro.metrics import evaluate_blocks


def _registry_epilog() -> str:
    """The dynamic component listing appended to ``--help``."""
    return (
        "registered components (extensible via repro.register_blocker/"
        "register_weighting/register_pruning/register_backend/"
        "register_stream_view):\n"
        f"  blockers:     {', '.join(BLOCKERS.names())}\n"
        f"  weightings:   {', '.join(WEIGHTINGS.names())}\n"
        f"  prunings:     {', '.join(PRUNERS.names())}\n"
        f"  backends:     {', '.join(BACKENDS.names())}\n"
        f"  stream views: {', '.join(STREAM_VIEWS.names())}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BLAST: loosely schema-aware meta-blocking for entity resolution",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run BLAST and write candidate pairs",
                         epilog=_registry_epilog(),
                         formatter_class=argparse.RawDescriptionHelpFormatter)
    _add_input_arguments(run)
    _add_config_arguments(run)
    run.add_argument("--output", type=Path, required=True,
                     help="CSV file for the candidate pairs")

    ev = sub.add_parser("evaluate", help="run BLAST and score against a ground truth",
                        epilog=_registry_epilog(),
                        formatter_class=argparse.RawDescriptionHelpFormatter)
    _add_input_arguments(ev)
    _add_config_arguments(ev)
    ev.add_argument("--ground-truth", type=Path, required=True,
                    help="two-column CSV of matching profile ids")
    ev.add_argument("--output", type=Path, default=None,
                    help="optionally also write the candidate pairs")

    gen = sub.add_parser("generate", help="materialize a built-in benchmark dataset")
    gen.add_argument("--dataset", required=True,
                     choices=sorted(CLEAN_CLEAN_DATASETS) + sorted(DIRTY_DATASETS))
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--outdir", type=Path, required=True)

    stream = sub.add_parser(
        "stream",
        help="replay a profile stream, emitting candidates as they arrive",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    stream.add_argument("--input", type=Path, required=True,
                        help="JSON-lines profile stream (.gz transparently); "
                             "records may carry 'source' (0/1) and 'op' "
                             "('upsert' default, or 'delete')")
    stream.add_argument("--output", type=Path, default=None,
                        help="JSON-lines file for per-arrival candidates "
                             "(.gz transparently); omit to replay without "
                             "emitting")
    stream.add_argument("--clean-clean", action="store_true",
                        help="two-source stream (records carry source 0/1)")
    stream.add_argument("--weighting", choices=WEIGHTINGS.names(),
                        default="chi_h",
                        help="registered edge weighting (default: "
                             "%(default)s; ejs needs global statistics and "
                             "is rejected at query time)")
    stream.add_argument("--pruning", choices=PRUNERS.names(), default="blast",
                        help="registered node-centric pruning scheme "
                             "(blast, wnp1/wnp2, cnp1/cnp2; default: "
                             "%(default)s)")
    stream.add_argument("--backend", choices=("python", "vectorized"),
                        default="vectorized",
                        help="per-query arithmetic backend "
                             "(default: %(default)s)")
    stream.add_argument("--consistency", choices=STREAM_VIEWS.names(),
                        default="fast",
                        help="query view: 'fast' serves from incremental "
                             "statistics, 'exact' reproduces batch "
                             "purging/filtering semantics per index version "
                             "(default: %(default)s for arrival-time "
                             "replay)")
    stream.add_argument("--query-k", type=int, default=None,
                        help="cap each arrival's emitted candidates")
    stream.add_argument("--min-token-length", type=int, default=2)
    stream.add_argument("--purging-ratio", type=float, default=0.5)
    stream.add_argument("--filtering-ratio", type=float, default=0.8)
    stream.add_argument("--pruning-c", type=float, default=2.0)
    stream.add_argument("--pruning-d", type=float, default=2.0)
    stream.add_argument("--snapshot", type=Path, default=None,
                        help="session snapshot path: restored before the "
                             "replay when the file exists, written after it "
                             "either way")
    stream.add_argument("--journal", type=Path, default=None,
                        help="append-only write-ahead journal: every "
                             "upsert/delete is logged before it is applied; "
                             "with --snapshot, a crashed replay recovers to "
                             "the exact pre-crash state (snapshot + journal "
                             "tail)")
    stream.add_argument("--skip-malformed", action="store_true",
                        help="quarantine malformed stream lines instead of "
                             "aborting; a per-record report goes to stderr")
    stream.add_argument("--no-query", action="store_true",
                        help="only build the index (bulk load / snapshot "
                             "warm-up); no candidates are computed")

    serve = sub.add_parser(
        "serve",
        help="serve many tenants over TCP (JSON lines; see repro.serving)",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    serve.add_argument("--data-dir", type=Path, required=True,
                       help="root of the per-tenant persistence layout "
                            "(<data-dir>/<tenant>/{snapshot.json.gz,"
                            "wal.jsonl}); tenants found here are "
                            "crash-recovered on first touch")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7711,
                       help="TCP port (default: %(default)s; 0 picks a "
                            "free port and prints it)")
    serve.add_argument("--clean-clean", action="store_true",
                       help="fresh tenants index two-source streams "
                            "(recovered tenants keep their snapshot's kind)")
    serve.add_argument("--weighting", choices=WEIGHTINGS.names(),
                       default="chi_h",
                       help="edge weighting of fresh tenants "
                            "(default: %(default)s)")
    serve.add_argument("--pruning", choices=PRUNERS.names(), default="blast",
                       help="pruning scheme of fresh tenants "
                            "(default: %(default)s)")
    serve.add_argument("--consistency", choices=STREAM_VIEWS.names(),
                       default="fast",
                       help="query view of fresh tenants "
                            "(default: %(default)s)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="per-tenant write-queue bound; a full queue "
                            "answers 'overloaded' (default: "
                            "BlastConfig.serve_max_queue)")
    serve.add_argument("--batch-size", type=int, default=None,
                       help="most writes one actor batch applies "
                            "(default: BlastConfig.serve_batch_size)")
    serve.add_argument("--resident-tenants", type=int, default=None,
                       help="LRU cap on simultaneously open tenants "
                            "(default: BlastConfig.serve_resident_tenants)")
    serve.add_argument("--snapshot-interval", type=int, default=None,
                       help="snapshot a tenant every N applied writes "
                            "(default: only on eviction/shutdown)")
    serve.add_argument("--log-interval", type=float, default=30.0,
                       help="seconds between operational log lines "
                            "(default: %(default)s)")

    lint = sub.add_parser(
        "lint",
        help="run repro-lint static contract checks "
             "(determinism/dtype/registry invariants; see DESIGN.md)")
    _lint_cli.configure_parser(lint)

    bench = sub.add_parser(
        "bench",
        help="run a declarative experiment config and compare against "
             "committed benchmark history (see DESIGN.md)")
    _bench_cli.configure_parser(bench)
    return parser


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--left", type=Path, required=True,
                        help="JSONL entity collection (see repro.data.io)")
    parser.add_argument("--right", type=Path, default=None,
                        help="second collection for clean-clean ER; omit for dirty ER")
    parser.add_argument("--skip-malformed", action="store_true",
                        help="quarantine malformed lines and duplicate ids "
                             "instead of aborting; a per-record report goes "
                             "to stderr")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--blocker", choices=BLOCKERS.names(),
                        default="schema-aware",
                        help="registered blocking technique (default: %(default)s)")
    parser.add_argument("--weighting", choices=WEIGHTINGS.names(),
                        default="chi_h",
                        help="registered edge weighting (default: %(default)s)")
    parser.add_argument("--pruning", choices=PRUNERS.names(),
                        default="blast",
                        help="registered pruning scheme (default: %(default)s)")
    parser.add_argument("--backend", choices=BACKENDS.names(),
                        default="vectorized",
                        help="meta-blocking execution backend: the numpy "
                             "array path, the sharded multi-process "
                             "'parallel' engine, or the pure-python "
                             "reference (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes of the parallel backend "
                             "(default: the machine's cpu count; 1 runs "
                             "the shards sequentially in-process)")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="cap on comparisons per shard of the parallel "
                             "backend (strict, except a single entity "
                             "owning more); bounds peak per-shard memory "
                             "(default: one balanced shard per worker)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="seconds one shard task of the parallel "
                             "backend may take before it is declared lost "
                             "and retried (default: wait forever)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="fresh-pool retries of the parallel backend "
                             "after shard failures/timeouts; shards still "
                             "unfinished afterwards run serially in-process "
                             "(default: 2)")
    parser.add_argument("--pool", choices=("per-run", "persistent"),
                        default=None,
                        help="worker-pool lifecycle of the parallel "
                             "backend: 'per-run' forks a pool per call, "
                             "'persistent' reuses the process-wide pool "
                             "with the CSR arrays published once through "
                             "shared memory (default: per-run)")
    parser.add_argument("--spill-dir", type=str, default=None,
                        help="directory for the out-of-core tier of the "
                             "parallel backend; shard/merged edge arrays "
                             "above --spill-threshold-mb stream to atomic "
                             ".npy files there (set both flags together)")
    parser.add_argument("--spill-threshold-mb", type=float, default=None,
                        help="megabyte budget above which the parallel "
                             "backend spills edge arrays to --spill-dir "
                             "(set both flags together)")
    parser.add_argument("--induction", choices=("lmi", "ac"), default="lmi")
    parser.add_argument("--alpha", type=float, default=0.9)
    parser.add_argument("--use-lsh", action="store_true")
    parser.add_argument("--lsh-threshold", type=float, default=0.4)
    parser.add_argument("--min-token-length", type=int, default=2,
                        help="shortest token used as a blocking key")
    parser.add_argument("--purging-ratio", type=float, default=0.5,
                        help="Block Purging max profile fraction per block")
    parser.add_argument("--filtering-ratio", type=float, default=0.8,
                        help="Block Filtering retained fraction per profile")
    parser.add_argument("--no-entropy", action="store_true",
                        help="disable the aggregate-entropy weighting factor")
    parser.add_argument("--pruning-c", type=float, default=2.0)
    parser.add_argument("--pruning-d", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--stage-report", action="store_true",
                        help="print the per-stage instrumentation table")


def _config_from(args: argparse.Namespace) -> BlastConfig:
    return BlastConfig(
        induction=args.induction,
        alpha=args.alpha,
        use_lsh=args.use_lsh,
        lsh_threshold=args.lsh_threshold,
        min_token_length=args.min_token_length,
        purging_ratio=args.purging_ratio,
        filtering_ratio=args.filtering_ratio,
        use_entropy=not args.no_entropy,
        pruning_c=args.pruning_c,
        pruning_d=args.pruning_d,
        backend=args.backend,
        workers=args.workers,
        shard_size=args.shard_size,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        pool=args.pool,
        spill_dir=args.spill_dir,
        spill_threshold_mb=args.spill_threshold_mb,
        seed=args.seed,
    )


def _run_pipeline(args: argparse.Namespace, dataset: ERDataset):
    # The weighting is resolved through the registry (not BlastConfig) so
    # that custom components registered via @register_weighting work too.
    pipeline = build_pipeline(
        _config_from(args),
        blocker=args.blocker,
        weighting=args.weighting,
        pruning=args.pruning,
    )
    result = pipeline.run(dataset)
    if args.stage_report:
        print(result.report())
    return result


def _load_quarantining(path: Path) -> EntityCollection:
    """Load a collection skipping bad records, reporting them on stderr."""
    from repro.data.io import IngestReport

    report = IngestReport()
    collection = load_collection(path, on_error="collect", report=report)
    for issue in report.issues:
        print(f"warning: skipped {issue}", file=sys.stderr)
    if not report.ok:
        print(f"warning: {path}: {report.summary()}", file=sys.stderr)
    return collection


def _dataset_from(args: argparse.Namespace,
                  ground_truth: GroundTruth | None = None) -> ERDataset:
    load = _load_quarantining if args.skip_malformed else load_collection
    left = load(args.left)
    right = load(args.right) if args.right else None
    if ground_truth is None:
        ground_truth = GroundTruth([], clean_clean=right is not None)
    return ERDataset(left, right, ground_truth, name=args.left.stem)


def _write_pairs(result, dataset: ERDataset, output: Path) -> int:
    output.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with output.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2"])
        for block in result.blocks:
            i, j = sorted(block.profiles)
            writer.writerow(
                [dataset.profile(i).profile_id, dataset.profile(j).profile_id]
            )
            count += 1
    return count


def _cmd_run(args: argparse.Namespace) -> int:
    dataset = _dataset_from(args)
    result = _run_pipeline(args, dataset)
    count = _write_pairs(result, dataset, args.output)
    print(f"wrote {count} candidate pairs to {args.output} "
          f"(overhead {result.overhead_seconds:.2f}s, "
          f"{dataset.brute_force_comparisons():,} brute-force comparisons avoided)")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    truth = load_ground_truth(args.ground_truth,
                              clean_clean=args.right is not None)
    dataset = _dataset_from(args, truth)
    result = _run_pipeline(args, dataset)
    quality = evaluate_blocks(result.blocks, dataset)
    print(f"PC={quality.pair_completeness:.4f} PQ={quality.pair_quality:.6f} "
          f"F1={quality.f1:.4f} comparisons={quality.comparisons} "
          f"overhead={result.overhead_seconds:.2f}s")
    if args.output is not None:
        _write_pairs(result, dataset, args.output)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset in CLEAN_CLEAN_DATASETS:
        dataset = load_clean_clean(args.dataset, scale=args.scale, seed=args.seed)
    else:
        dataset = load_dirty(args.dataset, scale=args.scale, seed=args.seed)
    args.outdir.mkdir(parents=True, exist_ok=True)
    save_collection(dataset.collection1, args.outdir / "left.jsonl")
    files = ["left.jsonl", "ground_truth.csv"]
    if dataset.collection2 is not None:
        save_collection(dataset.collection2, args.outdir / "right.jsonl")
        files.insert(1, "right.jsonl")
    save_ground_truth(dataset.ground_truth, args.outdir / "ground_truth.csv")
    print(f"wrote {', '.join(files)} to {args.outdir} "
          f"({dataset.num_profiles} profiles, {dataset.num_duplicates} matches)")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.data.io import IngestReport, open_text
    from repro.streaming import StreamingSession, iter_stream

    config = BlastConfig(
        min_token_length=args.min_token_length,
        purging_ratio=args.purging_ratio,
        filtering_ratio=args.filtering_ratio,
        weighting=args.weighting,
        pruning_c=args.pruning_c,
        pruning_d=args.pruning_d,
        backend=args.backend,
        stream_consistency=args.consistency,
        stream_query_k=args.query_k,
    )
    def fresh_session(journal: Path | None = None) -> StreamingSession:
        return StreamingSession(
            config,
            clean_clean=args.clean_clean,
            pruning=PRUNERS.get(args.pruning)(config),
            journal=journal,
        )

    snapshot_exists = args.snapshot is not None and args.snapshot.exists()
    journal_used = (
        args.journal is not None
        and args.journal.exists()
        and args.journal.stat().st_size > 0
    )
    if args.journal is not None and (snapshot_exists or journal_used):
        # Snapshot + journal tail = the exact pre-crash state (a used
        # journal with no snapshot yet recovers from an empty baseline);
        # the journal stays attached for the replay that follows.
        session = StreamingSession.recover(
            args.snapshot, args.journal, session_factory=fresh_session
        )
        base = (f"{args.snapshot} + {args.journal} (snapshot settings apply)"
                if snapshot_exists
                else f"{args.journal} (no snapshot yet)")
        print(f"recovered {session.index.num_profiles} profiles from {base}")
    elif snapshot_exists:
        session = StreamingSession.restore(args.snapshot)
        print(f"restored {session.index.num_profiles} profiles from "
              f"{args.snapshot} (snapshot settings apply)")
    else:
        session = fresh_session(journal=args.journal)

    ingest_report = IngestReport() if args.skip_malformed else None
    records = iter_stream(
        args.input,
        on_error="collect" if args.skip_malformed else "raise",
        report=ingest_report,
    )
    out_handle = (
        open_text(args.output, "w") if args.output is not None else None
    )
    upserts = deletes = links = 0
    start = time.perf_counter()
    try:
        for event in session.replay(records, query=not args.no_query):
            record = event.record
            if record.op == "delete":
                deletes += 1
                payload = {"op": "delete", "id": record.profile_id,
                           "source": record.source, "applied": event.applied}
            else:
                upserts += 1
                candidates = event.candidates or []
                links += len(candidates)
                payload = {
                    "op": "upsert", "id": record.profile_id,
                    "source": record.source,
                    "candidates": [
                        {"id": c.profile_id, "source": c.source,
                         "weight": c.weight}
                        for c in candidates
                    ],
                }
            if out_handle is not None:
                out_handle.write(json.dumps(payload, ensure_ascii=False) + "\n")
    finally:
        if out_handle is not None:
            out_handle.close()
    elapsed = time.perf_counter() - start

    if ingest_report is not None:
        for issue in ingest_report.issues:
            print(f"warning: skipped {issue}", file=sys.stderr)
        if not ingest_report.ok:
            print(f"warning: {args.input}: {ingest_report.summary()}",
                  file=sys.stderr)
    qps = upserts / elapsed if elapsed > 0 else float("inf")
    print(f"replayed {upserts + deletes} records ({upserts} upserts, "
          f"{deletes} deletes) in {elapsed:.2f}s"
          + ("" if args.no_query else
             f" — {links} candidate links ({qps:,.0f} queries/s)")
          + (f", wrote {args.output}" if args.output is not None else ""))
    if args.snapshot is not None:
        session.snapshot(args.snapshot)
        print(f"snapshot written to {args.snapshot} "
              f"({session.index.num_profiles} profiles, "
              f"{session.index.num_blocks} keys)")
    session.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from repro.serving import ReproServer, TenantRegistry
    from repro.streaming import StreamingSession

    overrides = {
        "serve_max_queue": args.max_queue,
        "serve_batch_size": args.batch_size,
        "serve_resident_tenants": args.resident_tenants,
        "serve_snapshot_interval": args.snapshot_interval,
    }
    config = BlastConfig(
        weighting=args.weighting,
        stream_consistency=args.consistency,
        **{knob: value for knob, value in overrides.items()
           if value is not None},
    )

    def fresh_session() -> StreamingSession:
        # No journal here: the registry's recovery path attaches each
        # tenant's own journal when it opens the tenant.
        return StreamingSession(
            config,
            clean_clean=args.clean_clean,
            pruning=PRUNERS.get(args.pruning)(config),
        )

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    registry = TenantRegistry(
        args.data_dir, config,
        clean_clean=args.clean_clean,
        session_factory=fresh_session,
    )
    server = ReproServer(
        registry, host=args.host, port=args.port,
        log_interval=args.log_interval,
    )

    async def _serve() -> None:
        await server.start()
        print(f"serving on {server.host}:{server.port} "
              f"(data dir {args.data_dir}, "
              f"{len(registry.known_tenants())} tenants on disk)",
              flush=True)
        await server.serve_forever()

    asyncio.run(_serve())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    commands = {"run": _cmd_run, "evaluate": _cmd_evaluate,
                "generate": _cmd_generate, "stream": _cmd_stream,
                "serve": _cmd_serve, "lint": _lint_cli.execute,
                "bench": _bench_cli.execute}
    try:
        return commands[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
