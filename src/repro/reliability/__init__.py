"""Reliability substrate: retry policies and deterministic fault injection.

Everything the production-facing layers use to survive partial failure
lives here, dependency-free (pure stdlib, importable without numpy):

* :class:`~repro.reliability.policy.RetryPolicy` — how many times to
  retry a failed unit of work, how long to wait for each attempt, and a
  *deterministic* seeded backoff schedule (reproducible runs stay
  reproducible even through their failure handling);
* :class:`~repro.reliability.faults.FaultInjector` — a registry of named
  *fault sites* that production code fires on its hot paths for free
  (a dict lookup when nothing is armed) and that tests or the
  ``REPRO_FAULTS`` environment spec arm to deterministically kill
  workers, delay tasks, raise errors, and truncate or corrupt files at
  exact points in the execution.

The wired fault sites (see DESIGN.md "Reliability & recovery"):

==================  =========================================================
site                fires
==================  =========================================================
parallel.worker     in a pool worker, before a shard task runs
snapshot.write      after the snapshot temp file is written and fsynced,
                    before the atomic ``os.replace`` (``path=`` temp file)
journal.append      before a session op is appended to the write-ahead
                    journal
journal.apply       after the journal append + flush, before the op is
                    applied to the index (the WAL crash window)
ingest.record       before each JSON-lines record is decoded
==================  =========================================================
"""

from __future__ import annotations

from repro.reliability.faults import (
    FAULT_ACTIONS,
    FAULTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_fault_specs,
)
from repro.reliability.policy import RetryPolicy

__all__ = [
    "FAULT_ACTIONS",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "parse_fault_specs",
]
