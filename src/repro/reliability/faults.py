"""Deterministic, registry-driven fault injection.

Production code declares *fault sites* — named points on its hot paths —
by calling :meth:`FaultInjector.fire`.  When nothing is armed the call is
a dict lookup; when a test (programmatically) or an operator (via the
``REPRO_FAULTS`` environment variable) arms a site, firing it executes
the armed action at exactly that point:

==========  =================================================================
action      effect at the site
==========  =================================================================
kill        ``os._exit(value or 23)`` — an un-catchable process death, the
            OOM-killer / SIGKILL stand-in
delay       ``time.sleep(value or 0.05)`` — a stuck task (drives timeouts)
raise       raise :class:`InjectedFault` — a deterministic task failure
truncate    truncate the site's file to ``value`` bytes (default: half) —
            a torn write
corrupt     XOR-flip one byte of the site's file at offset ``value``
            (default: the middle) — bit rot
==========  =================================================================

The ``REPRO_FAULTS`` spec is a ``;``/``,``-separated list of
``site=action[:value][@hits]`` items, where ``hits`` restricts the action
to specific invocation counts (1-based): ``@1`` fires only the first
time, ``@2-4`` the second through fourth.  Examples::

    REPRO_FAULTS="parallel.worker=kill"            # every shard task dies
    REPRO_FAULTS="parallel.worker=raise@1"         # first task fails once
    REPRO_FAULTS="journal.apply=kill@5"            # crash in the WAL window
    REPRO_FAULTS="snapshot.write=truncate:64"      # torn snapshot write

Invocation counters live in ``multiprocessing.Value`` shared memory, so
under the ``fork`` start method a hit window spans the whole process tree
(a worker's hit is visible to the parent and to later workers).  Under
``spawn`` the armed state does not travel with the pool; workers re-arm
from the ``REPRO_FAULTS`` environment (inherited by children) with
per-process counters — programmatically armed faults are fork-only.

:data:`FAULTS` is the process-global injector every wired site fires;
tests arm it through the :meth:`FaultInjector.injected` context manager
so state never leaks between tests.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "FAULT_ACTIONS",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "parse_fault_specs",
]

#: The actions a fault site can be armed with.
FAULT_ACTIONS = frozenset({"kill", "delay", "raise", "truncate", "corrupt"})

#: Exit code of ``kill`` faults — distinctive, so a test that finds a
#: worker dead with 23 knows the injector (not the code under test) did it.
KILL_EXIT_CODE = 23

_SPEC_RE = re.compile(
    r"^(?P<site>[A-Za-z0-9_.-]+)=(?P<action>[a-z]+)"
    r"(?::(?P<value>[0-9.]+))?"
    r"(?:@(?P<lo>\d+)(?:-(?P<hi>\d+))?)?$"
)


class InjectedFault(RuntimeError):
    """Raised by a fired ``raise`` fault (and retried like any task error)."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, and on which invocation counts.

    ``hits`` is a frozenset of 1-based invocation numbers (``None`` means
    every invocation); ``value`` parameterizes the action (seconds for
    ``delay``, bytes for ``truncate``, an offset for ``corrupt``, an exit
    code for ``kill``).
    """

    site: str
    action: str
    value: float | None = None
    hits: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"valid: {', '.join(sorted(FAULT_ACTIONS))}"
            )
        if not self.site:
            raise ValueError("fault site must be a non-empty name")
        if self.hits is not None and (
            not self.hits or min(self.hits) < 1
        ):
            raise ValueError(
                f"hits must be 1-based invocation numbers, got {self.hits}"
            )


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` spec string into :class:`FaultSpec`s."""
    specs: list[FaultSpec] = []
    for item in re.split(r"[;,]", text):
        item = item.strip()
        if not item:
            continue
        match = _SPEC_RE.match(item)
        if match is None:
            raise ValueError(
                f"malformed fault spec {item!r}; expected "
                "site=action[:value][@hits] (e.g. parallel.worker=kill@1)"
            )
        hits: frozenset[int] | None = None
        if match.group("lo") is not None:
            lo = int(match.group("lo"))
            hi = int(match.group("hi") or lo)
            if hi < lo:
                raise ValueError(f"empty hit window in fault spec {item!r}")
            hits = frozenset(range(lo, hi + 1))
        value = match.group("value")
        specs.append(
            FaultSpec(
                site=match.group("site"),
                action=match.group("action"),
                value=float(value) if value is not None else None,
                hits=hits,
            )
        )
    return specs


class _Armed:
    """A spec plus its shared-memory invocation counter."""

    __slots__ = ("spec", "counter")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        # Shared so hit windows count across a fork()ed process tree: a
        # worker's invocation is visible to retries in fresh workers.
        self.counter: Any = multiprocessing.Value("i", 0)

    def next_hit(self) -> int:
        with self.counter.get_lock():
            self.counter.value += 1
            return int(self.counter.value)


class FaultInjector:
    """A registry of armed faults, fired by name from production code.

    Sites fire unconditionally (``FAULTS.fire("parallel.worker")``); the
    injector decides — per armed spec and invocation count — whether
    anything happens.  An unarmed fire is a single dict lookup.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self._armed: dict[str, list[_Armed]] = {}
        for spec in specs:
            self.arm(spec)

    # -- arming ---------------------------------------------------------------

    def arm(
        self,
        spec: FaultSpec | str,
        *,
        action: str | None = None,
        value: float | None = None,
        hits: Iterable[int] | int | None = None,
    ) -> FaultSpec:
        """Arm one fault; *spec* is a :class:`FaultSpec` or a site name.

        ``arm("parallel.worker", action="kill", hits=1)`` and
        ``arm(FaultSpec("parallel.worker", "kill", hits=frozenset({1})))``
        are equivalent.  Returns the armed spec.
        """
        if isinstance(spec, str):
            if action is None:
                raise ValueError("arm(site, ...) requires action=")
            if isinstance(hits, int):
                hits = (hits,)
            spec = FaultSpec(
                site=spec,
                action=action,
                value=value,
                hits=frozenset(hits) if hits is not None else None,
            )
        self._armed.setdefault(spec.site, []).append(_Armed(spec))
        return spec

    def clear(self, site: str | None = None) -> None:
        """Disarm every fault (or only *site*'s)."""
        if site is None:
            self._armed.clear()
        else:
            self._armed.pop(site, None)

    def armed_specs(self) -> list[FaultSpec]:
        """Every armed spec, in arming order per site."""
        return [
            armed.spec
            for site in sorted(self._armed)
            for armed in self._armed[site]
        ]

    @contextmanager
    def injected(
        self,
        site: str,
        action: str,
        *,
        value: float | None = None,
        hits: Iterable[int] | int | None = None,
    ) -> Iterator["FaultInjector"]:
        """Arm one fault for the duration of a ``with`` block (test hook)."""
        spec = self.arm(site, action=action, value=value, hits=hits)
        try:
            yield self
        finally:
            entries = self._armed.get(site, [])
            for index, armed in enumerate(entries):
                if armed.spec is spec:
                    del entries[index]
                    break
            if not entries:
                self._armed.pop(site, None)

    # -- firing ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any fault is armed (sites may guard hot loops on this)."""
        return bool(self._armed)

    def fire(self, site: str, *, path: str | Path | None = None) -> None:
        """Fire *site*; executes whatever is armed there (usually nothing).

        *path* hands file-mutating actions (``truncate``/``corrupt``)
        their target; sites that write files pass the file being written.
        """
        entries = self._armed.get(site)
        if not entries:
            return
        for armed in entries:
            hit = armed.next_hit()
            spec = armed.spec
            if spec.hits is not None and hit not in spec.hits:
                continue
            self._execute(spec, path)

    @staticmethod
    def _execute(spec: FaultSpec, path: str | Path | None) -> None:
        if spec.action == "kill":
            os._exit(int(spec.value) if spec.value is not None else KILL_EXIT_CODE)
        if spec.action == "delay":
            time.sleep(spec.value if spec.value is not None else 0.05)
            return
        if spec.action == "raise":
            raise InjectedFault(f"injected fault at site {spec.site!r}")
        # File-mutating actions need a target from the site.
        if path is None:
            raise ValueError(
                f"fault action {spec.action!r} armed at site {spec.site!r}, "
                "but the site provides no file path"
            )
        path = Path(path)
        size = path.stat().st_size
        if spec.action == "truncate":
            keep = int(spec.value) if spec.value is not None else size // 2
            with path.open("r+b") as handle:
                handle.truncate(min(keep, size))
            return
        if spec.action == "corrupt":
            offset = int(spec.value) if spec.value is not None else size // 2
            if size == 0:
                return
            offset = min(offset, size - 1)
            with path.open("r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes((byte[0] ^ 0xFF,)))
            return
        raise AssertionError(f"unreachable action {spec.action!r}")

    # -- environment ----------------------------------------------------------

    @classmethod
    def from_env(cls, variable: str = "REPRO_FAULTS") -> "FaultInjector":
        """An injector armed from an environment spec (empty when unset)."""
        return cls(parse_fault_specs(os.environ.get(variable, "")))

    def __repr__(self) -> str:
        return f"FaultInjector(armed={len(self.armed_specs())})"


#: The process-global injector every wired fault site fires.  Armed from
#: ``REPRO_FAULTS`` at import, so CLI runs and spawned workers pick up
#: operator-specified scenarios automatically.
FAULTS = FaultInjector.from_env()
