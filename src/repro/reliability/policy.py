"""Retry policies with deterministic seeded backoff.

A :class:`RetryPolicy` answers three questions for a dispatcher: how long
may one attempt run (``task_timeout``), how many times may a failed unit
of work be retried (``max_retries``), and how long to wait before each
retry (:meth:`RetryPolicy.delay`).  The backoff schedule is exponential
with *seeded* jitter: two runs with the same policy produce the same
delays, so a fault-injected test — or a bit-for-bit reproduction of a
production incident — replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a dispatcher retries failed work, deterministically.

    Parameters
    ----------
    max_retries:
        Retries after the first attempt (``0`` disables retrying; the
        work still runs once).  Total attempts = ``max_retries + 1``.
    task_timeout:
        Seconds one attempt may take before it is declared lost and
        becomes retryable (``None`` waits forever — worker *errors* are
        still caught and retried, but a silently hung or killed worker
        can only be detected through a timeout).
    backoff_base:
        First retry's nominal delay in seconds; attempt *n* waits
        ``backoff_base * 2**(n-1)``, capped at ``backoff_cap``.
    backoff_cap:
        Upper bound on any single delay.
    seed:
        Jitter seed.  Each delay is scaled by a uniform factor in
        ``[0.5, 1.0]`` drawn from ``random.Random((seed, attempt))`` —
        deterministic per (policy, attempt), decorrelated across
        attempts.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be >= "
                f"backoff_base ({self.backoff_base})"
            )

    @property
    def attempts(self) -> int:
        """Total attempts the policy allows (first run + retries)."""
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1-based).

        Deterministic: depends only on the policy fields and *attempt*.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        nominal = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        jitter = random.Random(f"{self.seed}:{attempt}").uniform(0.5, 1.0)
        return nominal * jitter

    def delays(self) -> list[float]:
        """The full backoff schedule, one delay per allowed retry."""
        return [self.delay(attempt) for attempt in range(1, self.max_retries + 1)]
