"""Shared-memory array publication and the persistent worker pool.

The per-run ``multiprocessing.Pool`` of :mod:`repro.graph.parallel` pays
its fork/spawn cost and re-ships the CSR arrays on every call —
acceptable for one large batch job, fatal for a pipeline that
meta-blocks many times (the benchmark loop, repeated pipeline stages):
``BENCH_metablocking.json`` showed the parallel backend *losing* to the
serial vectorized path because pool startup swamped a sub-second job.
This module provides the two primitives the ``pool="persistent"`` mode
is built from:

* :class:`SharedArrayBundle` / :class:`AttachedArrays` — numpy arrays
  placed zero-copy into named ``multiprocessing.shared_memory``
  segments, described by a picklable manifest of ``(segment name,
  dtype, shape)`` entries.  The publishing process owns the segments
  and unlinks them deterministically on :meth:`SharedArrayBundle.close`;
  attaching processes map them and close their maps without unlinking
  (the resource tracker is told to stand down, so ownership stays
  single-sided and nothing is unlinked twice).
* :class:`PersistentPool` — a worker pool created once and reused
  across runs, with :meth:`~PersistentPool.restart` (terminate + refork,
  the fault-recovery path) and a module-level singleton
  (:func:`get_pool` / :func:`shutdown_pool`) hooked into ``atexit`` so
  no segments or child processes outlive the interpreter.

Empty arrays are carried inline in the manifest (``SharedMemory``
refuses zero-byte segments) and rebuilt on attach, so publication
round-trips any CSR layout, including degenerate empty collections.
Live owner-side segment names are tracked in :func:`live_segments`,
which the leaked-resource regression tests assert empty after every
run, injected fault, and interrupt.
"""

from __future__ import annotations

import atexit
import multiprocessing
import warnings
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

__all__ = [
    "AttachedArrays",
    "BlobSegment",
    "PersistentPool",
    "SegmentSpec",
    "SharedArrayBundle",
    "add_shutdown_hook",
    "get_pool",
    "live_segments",
    "pool_context",
    "read_blob",
    "shutdown_pool",
]

#: Names of owner-side segments currently published by this process.
#: Exact accounting (create adds, close removes) so tests can assert
#: zero leaks without racing on a global /dev/shm listing.
_LIVE_SEGMENTS: set[str] = set()


def live_segments() -> frozenset[str]:
    """Names of the shared-memory segments this process still owns."""
    return frozenset(_LIVE_SEGMENTS)


# Resource-tracker accounting (Python < 3.13 has no ``track=False``):
# ``SharedMemory(name=...)`` registers every attachment too, but on POSIX
# both fork and spawn children inherit the *parent's* tracker, whose
# per-name cache is a set — the attach-side register is an idempotent
# no-op and the owner's single unlink-side unregister keeps the books
# balanced.  Attachers therefore must NOT unregister (that would steal
# the owner's entry and make the owner's unlink a noisy tracker
# KeyError).  The one unsupported layout is attaching from a process
# *outside* the owner's tree: its private tracker would unlink the
# segment when it exits.  All attachers here are pool children.


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:
        # A numpy view over the buffer is still alive somewhere; the map
        # stays until that view dies, but unlinking (owner side) still
        # removes the name, so nothing persists past the process.
        warnings.warn(
            f"shared segment {segment.name!r} closed while views were "
            "still exported",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class SegmentSpec:
    """Manifest entry: where (and with what layout) one array lives.

    ``name`` is ``None`` for empty arrays, which travel inline — there
    is no zero-byte segment to attach; the attacher rebuilds
    ``np.zeros(shape, dtype)`` locally.
    """

    name: str | None
    dtype: str
    shape: tuple[int, ...]


class SharedArrayBundle:
    """Owner side: named shared-memory segments holding a dict of arrays.

    Built through :meth:`publish`; the manifest (picklable) travels to
    workers, the array bytes never do.  :meth:`close` closes *and
    unlinks* every segment, exactly once, on every path — the publisher
    is the single owner.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._manifest: dict[str, SegmentSpec] = {}
        self._closed = False

    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Copy *arrays* into fresh named segments (one per array)."""
        bundle = cls()
        try:
            for key, array in arrays.items():
                bundle._add(key, array)
        except BaseException:
            bundle.close()
            raise
        return bundle

    def _add(self, key: str, array: np.ndarray) -> None:
        contiguous = np.ascontiguousarray(array)
        if contiguous.nbytes == 0:
            self._manifest[key] = SegmentSpec(
                None, str(contiguous.dtype), contiguous.shape
            )
            return
        # Registered in the owning list BEFORE the copy: a failure while
        # writing still leaves the segment where close() can unlink it.
        self._segments.append(
            shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
        )
        segment = self._segments[-1]
        _LIVE_SEGMENTS.add(segment.name)
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
        )
        view[...] = contiguous
        self._manifest[key] = SegmentSpec(
            segment.name, str(contiguous.dtype), contiguous.shape
        )

    @property
    def manifest(self) -> dict[str, SegmentSpec]:
        """Picklable description of every published array."""
        return dict(self._manifest)

    def close(self) -> None:
        """Close and unlink every segment (idempotent, owner side only)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            _close_segment(segment)
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already removed (e.g. an external /dev/shm sweep)
            _LIVE_SEGMENTS.discard(segment.name)
        self._segments.clear()


class AttachedArrays:
    """Attacher side: zero-copy numpy views over a published manifest.

    ``arrays[key]`` aliases the publisher's bytes directly (no pickle,
    no copy).  :meth:`close` drops the views and unmaps the segments
    without unlinking them — the publisher owns the names.
    """

    def __init__(self, manifest: dict[str, SegmentSpec]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for key, spec in manifest.items():
                if spec.name is None:
                    self.arrays[key] = np.zeros(
                        spec.shape, dtype=np.dtype(spec.dtype)
                    )
                    continue
                self._segments.append(
                    shared_memory.SharedMemory(name=spec.name)
                )
                segment = self._segments[-1]
                self.arrays[key] = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Drop the views and unmap (never unlink) the segments."""
        self.arrays.clear()
        for segment in self._segments:
            _close_segment(segment)
        self._segments.clear()


class BlobSegment:
    """One pickled-bytes segment: job specs travel by name, not payload.

    The first 8 bytes store the payload length little-endian (segment
    sizes are page-rounded, so the map alone cannot recover it).
    """

    def __init__(self, data: bytes) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=8 + len(data))
        _LIVE_SEGMENTS.add(self._shm.name)
        self._shm.buf[:8] = len(data).to_bytes(8, "little")
        self._shm.buf[8 : 8 + len(data)] = data
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Close and unlink the segment (idempotent, owner side only)."""
        if self._closed:
            return
        self._closed = True
        _close_segment(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already removed externally
        _LIVE_SEGMENTS.discard(self._shm.name)


def read_blob(name: str) -> bytes:
    """The payload of a :class:`BlobSegment`, copied out (attacher side)."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        length = int.from_bytes(bytes(segment.buf[:8]), "little")
        return bytes(segment.buf[8 : 8 + length])
    finally:
        segment.close()


def pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, shares pages COW); fall back to the default.

    The fallback is announced through :mod:`warnings` rather than taken
    silently: under ``spawn`` every worker re-imports the package and
    initializer payloads travel by pickle, so a run benchmarked under
    ``fork`` behaves very differently — the operator should know which
    regime they are in.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    context = multiprocessing.get_context()
    warnings.warn(
        "multiprocessing 'fork' start method unavailable on this platform; "
        f"falling back to {context.get_start_method()!r} (workers re-import "
        "the package and receive shared state by pickle)",
        RuntimeWarning,
        stacklevel=3,
    )
    return context


class PersistentPool:
    """A worker pool created once and reused across meta-blocking runs.

    Workers attach to each job's published arrays lazily (and cache the
    attachment by job name), so successive runs over the same index pay
    zero fork cost and zero array shipping — the amortization the
    per-run pool cannot offer.
    """

    def __init__(self, processes: int) -> None:
        if processes < 1:
            raise ValueError(f"processes must be positive, got {processes}")
        self._context = pool_context()
        self._processes = processes
        self._pool = self._context.Pool(processes=processes)

    @property
    def processes(self) -> int:
        return self._processes

    def apply_async(self, func: Callable[..., Any], args: tuple) -> Any:
        """Submit one task; returns the ``AsyncResult`` handle."""
        return self._pool.apply_async(func, args)

    def restart(self) -> None:
        """Terminate the workers and fork a fresh set (fault recovery).

        A timed-out task keeps its worker busy forever, and a killed
        worker can leave the pool's bookkeeping wedged — the retry path
        swaps in a clean pool rather than trusting a dirty one.  Dead
        workers drop their shared-memory attachments with their address
        spaces, so no segment leaks across restarts.
        """
        self._pool.terminate()
        self._pool.join()
        self._pool = self._context.Pool(processes=self._processes)

    def shutdown(self) -> None:
        """Terminate and join the workers (the pool is unusable after)."""
        self._pool.terminate()
        self._pool.join()


#: The process-wide persistent pool (created lazily by :func:`get_pool`).
_POOL: PersistentPool | None = None

#: Callbacks run by :func:`shutdown_pool` before the pool dies — e.g.
#: the parallel backend's publication cache unlinking its segments.
_SHUTDOWN_HOOKS: list[Callable[[], None]] = []


def add_shutdown_hook(hook: Callable[[], None]) -> None:
    """Register *hook* to run on every :func:`shutdown_pool` (idempotent)."""
    if hook not in _SHUTDOWN_HOOKS:
        _SHUTDOWN_HOOKS.append(hook)


def get_pool(workers: int) -> PersistentPool:
    """The singleton pool, rebuilt only when *workers* outgrows it.

    A pool larger than the current job is reused as-is (idle workers
    cost nothing); a smaller one is torn down and regrown — grow-only,
    so alternating worker counts never thrash forks.
    """
    global _POOL
    if _POOL is not None and _POOL.processes < workers:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = PersistentPool(workers)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool and every registered publication.

    Safe to call any time (idempotent); registered on ``atexit`` so an
    interpreter that used the persistent mode exits with zero leaked
    children and zero leaked ``/dev/shm`` segments.
    """
    global _POOL
    for hook in _SHUTDOWN_HOOKS:
        hook()
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)
