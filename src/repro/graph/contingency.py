"""Contingency tables and Pearson's chi-squared test (Section 3.3.1, Table 1).

For an edge ``(p_u, p_v)`` the 2x2 contingency table over the block
collection is::

                 p_v present   p_v absent   total
    p_u present      n11           n12       n1.
    p_u absent       n21           n22       n2.
    total            n.1           n.2       n..

with ``n11 = |B_uv|``, ``n1. = |B_u|``, ``n.1 = |B_v|`` and ``n.. = |B|``.
The chi-squared statistic measures how far the observed co-occurrence
deviates from independence — BLAST uses it as an association score, not as
a hypothesis test.

Note: the paper's typeset formula omits the square over ``(n_ij - mu_ij)``;
Pearson's statistic (the paper cites Agresti's *Categorical Data Analysis*)
squares the residual, and we implement the standard squared form.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ContingencyTable:
    """Observed 2x2 joint frequency of two profiles over a block collection."""

    n11: int  # blocks containing both u and v
    n12: int  # blocks containing u but not v
    n21: int  # blocks containing v but not u
    n22: int  # blocks containing neither

    @classmethod
    def from_counts(
        cls, shared: int, blocks_u: int, blocks_v: int, total_blocks: int
    ) -> "ContingencyTable":
        """Build the table from ``|B_uv|``, ``|B_u|``, ``|B_v|`` and ``|B|``.

        >>> ContingencyTable.from_counts(4, 6, 7, 12)  # Table 1's example
        ContingencyTable(n11=4, n12=2, n21=3, n22=3)
        """
        if shared > min(blocks_u, blocks_v):
            raise ValueError("shared blocks exceed an endpoint's block count")
        if total_blocks < blocks_u + blocks_v - shared:
            raise ValueError("total blocks smaller than the union of B_u and B_v")
        return cls(
            n11=shared,
            n12=blocks_u - shared,
            n21=blocks_v - shared,
            n22=total_blocks - blocks_u - blocks_v + shared,
        )

    @property
    def total(self) -> int:
        """n..: the number of blocks."""
        return self.n11 + self.n12 + self.n21 + self.n22

    @property
    def row_totals(self) -> tuple[int, int]:
        return (self.n11 + self.n12, self.n21 + self.n22)

    @property
    def col_totals(self) -> tuple[int, int]:
        return (self.n11 + self.n21, self.n12 + self.n22)

    def expected(self) -> tuple[float, float, float, float]:
        """Expected counts ``mu_ij = n_i. * n_.j / n..`` under independence."""
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0, 0.0)
        r1, r2 = self.row_totals
        c1, c2 = self.col_totals
        return (r1 * c1 / total, r1 * c2 / total, r2 * c1 / total, r2 * c2 / total)

    def chi_squared(self) -> float:
        """Pearson's statistic ``sum (n_ij - mu_ij)^2 / mu_ij``.

        Cells with zero expectation contribute nothing (their observed count
        is necessarily zero as well when margins are consistent).
        """
        observed = (self.n11, self.n12, self.n21, self.n22)
        statistic = 0.0
        for obs, exp in zip(observed, self.expected()):
            if exp > 0.0:
                diff = obs - exp
                statistic += diff * diff / exp
        return statistic


def chi_squared(
    shared: int, blocks_u: int, blocks_v: int, total_blocks: int
) -> float:
    """Chi-squared association of two profiles from their block counts."""
    return ContingencyTable.from_counts(
        shared, blocks_u, blocks_v, total_blocks
    ).chi_squared()
