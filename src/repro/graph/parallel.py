"""Sharded multi-process meta-blocking: the ``parallel`` backend.

The vectorized backend (``repro.graph.vectorized``) made meta-blocking a
handful of numpy passes; this module spreads the dominant pass — pair
enumeration, edge deduplication, and mass accumulation — across worker
processes, one contiguous entity-id shard each (``repro.graph.sharding``),
then merges the shards deterministically and prunes in the parent:

1. the parent plans contiguous entity-id ranges balanced on per-entity
   comparison counts (:func:`~repro.graph.sharding.plan_shards`);
2. each worker enumerates its shard's comparisons, dedupes them into
   sorted edge arrays, accumulates the float masses, and — for every
   weighting except EJS — evaluates the edge weights in place with the
   shared elementwise kernel
   (:func:`~repro.graph.vectorized.compute_edge_weights`);
3. the parent concatenates the shard arrays (shards cover ascending
   ``src`` ranges, so concatenation IS the lexicographic edge order),
   computes EJS from the merged global degrees when needed, and runs the
   existing vectorized pruning (:func:`~repro.graph.vectorized.prune_mask`)
   over the merged arrays.

Because each edge lives in exactly one shard with all of its block
occurrences, the merged ``src``/``dst``/``shared``/mass/weight arrays are
bit-identical to the serial vectorized backend's — and pruning runs the
identical code on identical inputs, so the retained edge set matches the
``vectorized`` (and therefore the ``python`` oracle) backend exactly, for
every weighting scheme and built-in pruning strategy.

``workers=1`` runs the shards sequentially in-process — no pool, no
pickling — which doubles as the chunked low-memory mode: with
``shard_size`` set, the big per-pair arrays (the packed sort keys and
their argsort workspace) never exceed one shard's comparisons, instead of
the full ``||B||`` the serial backend materializes at once.

Fault tolerance (see DESIGN.md "Reliability & recovery"): pool dispatch
is timeout-aware (``AsyncResult.get(task_timeout)``), failed or lost
shards are retried on a freshly built pool with deterministic seeded
backoff (:class:`~repro.reliability.RetryPolicy`), and shards that still
fail after the last retry fall back to serial in-process execution — the
same pure shard kernel, so the merged arrays (and therefore the retained
edge set) stay bit-identical to the all-serial result no matter which
attempt produced each shard.  Workers fire the ``parallel.worker`` fault
site (:data:`repro.reliability.FAULTS`) so tests and ``REPRO_FAULTS``
scenarios can deterministically kill, delay, or fail shard tasks.

Two orthogonal execution modes extend the per-run pool (DESIGN.md
"Out-of-core & shared memory"):

* ``pool="persistent"`` — workers come from the process-wide
  :class:`~repro.graph.pool.PersistentPool` and attach to the run's CSR
  arrays through named shared-memory segments
  (:class:`~repro.graph.pool.SharedArrayBundle`), published once per
  index and cached by the index's identity token; successive runs over
  the same index pay zero fork cost and zero array shipping.  The
  per-task payload stays a bare ``(spec name, lo, hi)`` triple.
* ``spill_dir``/``spill_threshold_mb`` — shard outputs above the byte
  budget stream to atomic ``.npy`` files (:mod:`repro.graph.spill`) and
  the concatenation merge writes into memmapped outputs, bounding peak
  RSS while staying bit-identical (preallocate-and-copy concatenation
  is byte-wise ``np.concatenate``).

Inputs the array path cannot express (custom weighting callables,
user-defined pruning schemes) delegate to the pure-python reference
backend, exactly like the vectorized backend does.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.blocking.base import BlockCollection
from repro.graph.blocking_graph import Edge, KeyEntropyFn
from repro.graph.pool import (
    AttachedArrays,
    BlobSegment,
    SegmentSpec,
    SharedArrayBundle,
    add_shutdown_hook,
    get_pool,
    pool_context,
    read_blob,
)
from repro.graph.pruning import PruningScheme
from repro.graph.sharding import (
    ShardableIndex,
    ShardEdges,
    plan_shards,
    shard_edge_arrays,
)
from repro.graph.spill import (
    SpilledArray,
    SpilledShardEdges,
    SpillJob,
    SpillSpec,
    concat_spillable,
    load_array,
    resolve_shard,
    spill_shard,
)
from repro.graph.vectorized import (
    compute_edge_weights,
    edge_degrees,
    prune_mask,
    supports_pruning,
)
from repro.graph.weights import WeightingScheme
from repro.reliability import FAULTS, RetryPolicy

__all__ = [
    "merge_shards",
    "parallel_metablocking",
    "resolve_workers",
]

#: Fault site fired in a pool worker before its shard task runs.
WORKER_FAULT_SITE = "parallel.worker"


def resolve_workers(workers: int | None) -> int:
    """The effective worker-process count (``None`` -> cpu count).

    Validation matches :class:`~repro.core.config.BlastConfig`: the knob
    is positive or ``None``, at every API layer.
    """
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be positive or None, got {workers}")
    return workers


@dataclass(frozen=True)
class _SharedState:
    """The per-run state every worker shares, shipped ONCE per worker.

    The CSR index and the dense per-node/per-block arrays are identical
    for every shard, so they travel through the pool *initializer* — one
    pickle per worker process (and zero pickling under ``fork``, where
    the child inherits the parent's pages copy-on-write) — while the
    per-task payload is just an ``(lo, hi)`` id range.  ``scheme`` is the
    weighting to evaluate in the worker (its string value, not the enum
    member) or ``None`` when the parent weights after the merge (EJS,
    which needs global degrees).
    """

    index: ShardableIndex
    block_entropies: np.ndarray | None
    need_arcs: bool
    scheme: str | None
    entropy_boost: bool
    node_block_counts: np.ndarray | None
    num_blocks: int


#: Worker-process slot for the run's shared state (set by ``_init_worker``).
_WORKER_STATE: _SharedState | None = None

#: Worker-process slot for the run's spill policy (set by ``_init_worker``).
_WORKER_SPILL: SpillSpec | None = None

#: One shard's result as dispatch produces it: possibly spilled by-path.
_ShardResult = tuple[
    ShardEdges | SpilledShardEdges, "np.ndarray | SpilledArray | None"
]


def _init_worker(state: _SharedState, spill: SpillSpec | None = None) -> None:
    global _WORKER_STATE, _WORKER_SPILL
    _WORKER_STATE = state
    _WORKER_SPILL = spill


def _run_shard(
    state: _SharedState, lo: int, hi: int, spill: SpillSpec | None = None
) -> _ShardResult:
    """Shard body: build one id range's edges (and weights, when local).

    With *spill* armed, an over-budget result is written to atomic
    ``.npy`` files and returned by path (``shard-{lo}`` stems are unique
    — plans tile the id space, and a retried shard overwrites its own
    files with identical bytes).
    """
    edges = shard_edge_arrays(
        state.index,
        lo,
        hi,
        block_entropies=state.block_entropies,
        need_arcs=state.need_arcs,
    )
    weights = None
    if state.scheme is not None:
        counts = state.node_block_counts
        weights = compute_edge_weights(
            WeightingScheme(state.scheme),
            shared=edges.shared,
            blocks_i=counts[edges.src],
            blocks_j=counts[edges.dst],
            num_blocks=state.num_blocks,
            arcs_mass=edges.arcs_mass,
            entropy_mass=edges.entropy_mass,
            entropy_boost=state.entropy_boost,
        )
    return spill_shard(edges, weights, spill, f"shard-{lo}")


def _run_shard_in_worker(bounds: tuple[int, int]) -> _ShardResult:
    """Pool entry point: one ``(lo, hi)`` range against the worker state.

    Fires the ``parallel.worker`` fault site first, so injected worker
    death / delay / failure happens exactly where a real fault would:
    inside a pool worker, with the task already dispatched.  The serial
    paths (``workers=1`` and the retry fallback) never fire it — they
    *are* the degradation target.
    """
    FAULTS.fire(WORKER_FAULT_SITE)
    assert _WORKER_STATE is not None, "worker initialized without state"
    return _run_shard(_WORKER_STATE, bounds[0], bounds[1], _WORKER_SPILL)


# --------------------------------------------------------------------------
# Persistent-pool job publication (parent side)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _JobSpec:
    """Everything a persistent-pool worker needs, reachable by one name.

    The manifest points at the shared-memory segments holding the CSR
    arrays; the scalars travel inline.  The whole spec is pickled into a
    :class:`~repro.graph.pool.BlobSegment`, so the per-task payload sent
    through the pool is just ``(spec name, lo, hi)``.
    """

    manifest: dict[str, SegmentSpec]
    is_clean_clean: bool
    num_ids: int
    num_blocks: int
    need_arcs: bool
    scheme: str | None
    entropy_boost: bool
    spill: SpillSpec | None


#: Parent-side publication cache: the CSR arrays of the last-published
#: index, keyed by its identity token (satellite: successive
#: ``parallel_metablocking`` calls over one index within a pipeline run
#: must not re-ship the arrays).  The third element is a private copy of
#: the published entropies — they are rebuilt per call, so reuse is
#: content-checked, not identity-checked.
_PUBLISHED_BUNDLE: tuple[tuple, SharedArrayBundle, np.ndarray | None] | None
_PUBLISHED_BUNDLE = None

#: Parent-side spec-blob cache (tiny; re-published whenever any scalar of
#: the job changes, without busting the expensive array bundle above).
_PUBLISHED_SPEC: tuple[tuple, BlobSegment] | None = None


def _close_publications() -> None:
    """Unlink every published segment (runs on every ``shutdown_pool``)."""
    global _PUBLISHED_BUNDLE, _PUBLISHED_SPEC
    if _PUBLISHED_SPEC is not None:
        _PUBLISHED_SPEC[1].close()
        _PUBLISHED_SPEC = None
    if _PUBLISHED_BUNDLE is not None:
        _PUBLISHED_BUNDLE[1].close()
        _PUBLISHED_BUNDLE = None


add_shutdown_hook(_close_publications)


def _publish_job(state: _SharedState, spill: SpillSpec | None) -> str:
    """Publish the run's arrays + spec to shared memory; return the name.

    Two-level cache: the array bundle is reused whenever the index
    identity token (plus which optional arrays are present, plus the
    entropies' *content*) matches — so a fresh per-run spill directory
    or a different weighting scheme republishes only the spec blob.
    """
    global _PUBLISHED_BUNDLE, _PUBLISHED_SPEC
    has_counts = state.node_block_counts is not None
    has_entropies = state.block_entropies is not None
    bundle_key = (state.index.identity_token, has_counts, has_entropies)
    bundle_hit = (
        _PUBLISHED_BUNDLE is not None
        and _PUBLISHED_BUNDLE[0] == bundle_key
        and (
            not has_entropies
            or np.array_equal(_PUBLISHED_BUNDLE[2], state.block_entropies)
        )
    )
    if not bundle_hit:
        _close_publications()
        arrays = {
            "block_ptr": state.index.block_ptr,
            "block_split": state.index.block_split,
            "entity_ids": state.index.entity_ids,
            "block_comparisons": state.index.block_comparisons,
        }
        if has_counts:
            arrays["node_block_counts"] = state.node_block_counts
        if has_entropies:
            arrays["block_entropies"] = state.block_entropies
        bundle = SharedArrayBundle.publish(arrays)
        entropies_copy = (
            np.array(state.block_entropies, dtype=np.float64, copy=True)
            if has_entropies
            else None
        )
        _PUBLISHED_BUNDLE = (bundle_key, bundle, entropies_copy)
    spec_key = (
        bundle_key,
        state.scheme,
        state.entropy_boost,
        state.need_arcs,
        spill,
    )
    if _PUBLISHED_SPEC is not None and _PUBLISHED_SPEC[0] == spec_key:
        return _PUBLISHED_SPEC[1].name
    if _PUBLISHED_SPEC is not None:
        _PUBLISHED_SPEC[1].close()
        _PUBLISHED_SPEC = None
    spec = _JobSpec(
        manifest=_PUBLISHED_BUNDLE[1].manifest,
        is_clean_clean=state.index.is_clean_clean,
        num_ids=state.index.num_ids,
        num_blocks=state.num_blocks,
        need_arcs=state.need_arcs,
        scheme=state.scheme,
        entropy_boost=state.entropy_boost,
        spill=spill,
    )
    blob = BlobSegment(pickle.dumps(spec))
    _PUBLISHED_SPEC = (spec_key, blob)
    return blob.name


# --------------------------------------------------------------------------
# Persistent-pool attachment (worker side)
# --------------------------------------------------------------------------


#: Worker-side attachment cache: ``(spec name, rebuilt state, spill,
#: attachment)``.  Keyed by spec name, so a worker re-attaches only when
#: the parent published a new job — successive shards of one run (and
#: successive runs over one index) reuse the mapped segments.
_ATTACHED: tuple[str, _SharedState, SpillSpec | None, AttachedArrays] | None
_ATTACHED = None


def _attached_state(spec_name: str) -> tuple[_SharedState, SpillSpec | None]:
    """The worker's shared state for *spec_name*, attaching on first use."""
    global _ATTACHED
    cached = _ATTACHED
    if cached is not None and cached[0] == spec_name:
        return cached[1], cached[2]
    if cached is not None:
        _ATTACHED = None
        _, stale_state, _, stale_arrays = cached
        # The stale state's index views the stale segments' buffers; the
        # views must die before close() can release the maps cleanly.
        del cached, stale_state
        stale_arrays.close()
    spec: _JobSpec = pickle.loads(read_blob(spec_name))
    attached = AttachedArrays(spec.manifest)
    arrays = attached.arrays
    index = ShardableIndex(
        is_clean_clean=spec.is_clean_clean,
        block_ptr=arrays["block_ptr"],
        block_split=arrays["block_split"],
        entity_ids=arrays["entity_ids"],
        block_comparisons=arrays["block_comparisons"],
        num_ids=spec.num_ids,
    )
    state = _SharedState(
        index=index,
        block_entropies=arrays.get("block_entropies"),
        need_arcs=spec.need_arcs,
        scheme=spec.scheme,
        entropy_boost=spec.entropy_boost,
        node_block_counts=arrays.get("node_block_counts"),
        num_blocks=spec.num_blocks,
    )
    _ATTACHED = (spec_name, state, spec.spill, attached)
    return state, spec.spill


def _run_shard_over_shm(task: tuple[str, int, int]) -> _ShardResult:
    """Persistent-pool entry point: attach by name, run one shard.

    Same fault-site contract as :func:`_run_shard_in_worker` — the
    ``parallel.worker`` site fires before any work, so injected kills
    and failures land inside a live pool worker.
    """
    FAULTS.fire(WORKER_FAULT_SITE)
    spec_name, lo, hi = task
    state, spill = _attached_state(spec_name)
    return _run_shard(state, lo, hi, spill)


def merge_shards(
    shards: list[ShardEdges], spill: SpillSpec | None = None
) -> ShardEdges:
    """Concatenate per-shard edge arrays into the global edge arrays.

    Shards cover ascending ``src`` ranges and each shard is sorted
    lexicographically, so plain concatenation in plan order yields the
    globally sorted, duplicate-free edge list — bit-identical to
    ``ArrayBlockingGraph``'s arrays (each edge's masses were accumulated
    whole inside its single owning shard).  With *spill* armed the
    merged arrays land in memmapped ``.npy`` files when over budget —
    same bytes, bounded residency (:func:`~repro.graph.spill.concat_spillable`).
    """
    if not shards:
        empty_i = np.zeros(0, dtype=np.int64)
        return ShardEdges(src=empty_i, dst=empty_i.copy(), shared=empty_i.copy())
    return ShardEdges(
        src=concat_spillable([s.src for s in shards], spill, "merged-src"),
        dst=concat_spillable([s.dst for s in shards], spill, "merged-dst"),
        shared=concat_spillable(
            [s.shared for s in shards], spill, "merged-shared"
        ),
        arcs_mass=concat_spillable(
            [s.arcs_mass for s in shards], spill, "merged-arcs"
        )
        if shards[0].arcs_mass is not None
        else None,
        entropy_mass=concat_spillable(
            [s.entropy_mass for s in shards], spill, "merged-entropy"
        )
        if shards[0].entropy_mass is not None
        else None,
    )


@dataclass(frozen=True)
class _MergedGraph:
    """The merged-array stand-in ``prune_mask`` dispatches over.

    Duck-types the slice of ``ArrayBlockingGraph`` the vectorized pruning
    handlers read: edge endpoints, the dense ``|B_p|`` array, and the
    indexed-profile count.
    """

    src: np.ndarray
    dst: np.ndarray
    node_blocks: np.ndarray
    num_nodes: int


def _validate_plan(plan: list[tuple[int, int]], num_ids: int) -> None:
    """Reject shard plans that would silently corrupt the merge.

    Merging is plain concatenation, so a plan must tile ``[0, num_ids)``
    contiguously: an overlap would duplicate edges, a gap would drop
    them — both yield a plausible-looking wrong result rather than a
    crash.  Empty ranges (``lo == hi``) are fine.
    """
    if num_ids == 0:
        return
    if not plan:
        raise ValueError("shard_plan must cover the entity-id space")
    cursor = 0
    for lo, hi in plan:
        if lo != cursor or hi < lo:
            raise ValueError(
                f"shard_plan must tile [0, {num_ids}) contiguously; "
                f"range ({lo}, {hi}) breaks at position {cursor}"
            )
        cursor = hi
    if cursor != num_ids:
        raise ValueError(
            f"shard_plan must tile [0, {num_ids}) contiguously; "
            f"coverage stops at {cursor}"
        )


def _dispatch_shards(
    state: _SharedState,
    plan: list[tuple[int, int]],
    workers: int,
    policy: RetryPolicy,
    spill: SpillSpec | None = None,
) -> list[_ShardResult]:
    """Run every shard of *plan*, surviving worker death and stuck tasks.

    The dispatch state machine (DESIGN.md "Reliability & recovery"):

    1. **dispatch** — every unfinished shard is submitted to a pool via
       ``apply_async``; each result is awaited with the policy's
       per-attempt timeout.
    2. **retry** — shards whose result raised (a worker-side exception,
       a broken pipe from a killed worker) or timed out (a lost or stuck
       task) are retried on a *freshly built* pool after a deterministic
       seeded backoff, up to ``policy.max_retries`` times; shards that
       completed are never recomputed.
    3. **degrade** — shards still unfinished after the last retry run
       serially in-process through the identical pure kernel
       (:func:`_run_shard`), so the run completes with the exact arrays a
       fault-free run would have produced.

    Pools are torn down deterministically on every path: ``close()`` after
    a clean batch, ``terminate()`` when anything failed (a timed-out task
    would otherwise keep its worker busy forever), and ``join()`` always —
    no leaked workers or semaphores for ``pytest -x`` to trip over.
    """
    results: list[_ShardResult | None]
    results = [None] * len(plan)
    pending = list(range(len(plan)))
    last_error: BaseException | None = None
    context = pool_context()

    for attempt in range(policy.attempts):
        if not pending:
            break
        if attempt:
            time.sleep(policy.delay(attempt))
        pool = context.Pool(
            processes=min(workers, len(pending)),
            initializer=_init_worker,
            initargs=(state, spill),
        )
        clean = True
        try:
            handles = [
                (index, pool.apply_async(_run_shard_in_worker, (plan[index],)))
                for index in pending
            ]
            unfinished: list[int] = []
            for index, handle in handles:
                try:
                    results[index] = handle.get(policy.task_timeout)
                except Exception as exc:
                    # Worker-side errors arrive re-raised from get();
                    # killed workers and stuck tasks surface as
                    # multiprocessing.TimeoutError.  Either way the shard
                    # is unfinished and retryable.
                    clean = False
                    last_error = exc
                    unfinished.append(index)
            pending = unfinished
        finally:
            if clean:
                pool.close()
            else:
                pool.terminate()
            pool.join()

    if pending:
        warnings.warn(
            f"parallel backend: {len(pending)} shard(s) unfinished after "
            f"{policy.attempts} pool attempt(s) (last error: "
            f"{last_error!r}); degrading to serial in-process execution "
            "for those shards (results remain bit-identical)",
            RuntimeWarning,
            stacklevel=3,
        )
        for index in pending:
            lo, hi = plan[index]
            results[index] = _run_shard(state, lo, hi, spill)

    # Every slot is filled: finished in a worker, or serially just above.
    return [result for result in results if result is not None]


def _dispatch_shards_persistent(
    state: _SharedState,
    plan: list[tuple[int, int]],
    workers: int,
    policy: RetryPolicy,
    spill: SpillSpec | None = None,
) -> list[_ShardResult]:
    """Run every shard of *plan* on the persistent pool.

    Same three-stage state machine as :func:`_dispatch_shards`
    (dispatch → retry with backoff → serial degrade), with two
    differences: workers reach the run's state through shared memory
    (:func:`_publish_job` / :func:`_run_shard_over_shm`) instead of an
    initializer pickle, and an unclean batch *restarts* the singleton
    pool (terminate + refork) rather than discarding a per-run one — a
    timed-out task would otherwise wedge a reused worker forever, and
    restarting also drops any stale shared-memory attachments with the
    dead workers' address spaces.
    """
    spec_name = _publish_job(state, spill)
    results: list[_ShardResult | None]
    results = [None] * len(plan)
    pending = list(range(len(plan)))
    last_error: BaseException | None = None

    for attempt in range(policy.attempts):
        if not pending:
            break
        if attempt:
            time.sleep(policy.delay(attempt))
        pool = get_pool(workers)
        clean = True
        handles = [
            (
                index,
                pool.apply_async(
                    _run_shard_over_shm, ((spec_name, *plan[index]),)
                ),
            )
            for index in pending
        ]
        unfinished: list[int] = []
        for index, handle in handles:
            try:
                results[index] = handle.get(policy.task_timeout)
            except Exception as exc:
                clean = False
                last_error = exc
                unfinished.append(index)
        pending = unfinished
        if not clean:
            pool.restart()

    if pending:
        warnings.warn(
            f"parallel backend: {len(pending)} shard(s) unfinished after "
            f"{policy.attempts} pool attempt(s) (last error: "
            f"{last_error!r}); degrading to serial in-process execution "
            "for those shards (results remain bit-identical)",
            RuntimeWarning,
            stacklevel=3,
        )
        for index in pending:
            lo, hi = plan[index]
            results[index] = _run_shard(state, lo, hi, spill)

    return [result for result in results if result is not None]


def parallel_metablocking(
    collection: BlockCollection,
    *,
    weighting=WeightingScheme.CHI_H,
    pruning: PruningScheme,
    entropy_boost: bool = False,
    key_entropy: KeyEntropyFn | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
    shard_plan: list[tuple[int, int]] | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    retry_policy: RetryPolicy | None = None,
    pool: str = "per-run",
    spill_dir: str | None = None,
    spill_threshold_mb: float | None = None,
) -> list[Edge]:
    """The ``parallel`` meta-blocking backend: sorted retained edges.

    Bit-identical to :func:`repro.graph.vectorized.vectorized_metablocking`
    (and hence to the ``python`` oracle) for every weighting scheme and
    built-in pruning strategy — including under worker death, stuck
    tasks, and injected faults (failed shards are retried, then degraded
    to serial execution of the identical kernel; see
    :func:`_dispatch_shards`).  Unsupported components delegate to the
    reference path.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` means the machine's cpu count, ``1``
        runs the shards sequentially in-process (the chunked low-memory
        mode — no pool, no pickling).  Must be positive or ``None``.
    shard_size:
        Cap on the comparisons enumerated per shard (strict, except that
        a single entity owning more than the cap becomes a shard of its
        own); bounds the peak per-shard edge-array bytes.  ``None``
        splits the id space into one balanced shard per worker.
    shard_plan:
        Explicit ``[(lo, hi), ...]`` entity-id ranges, overriding the
        planner — the hook the conformance/property suites use to pin
        pathological shard layouts (empty ranges, single-entity ranges).
        Must tile ``[0, num_ids)`` contiguously (validated: an overlap or
        gap would silently corrupt the merge).
    task_timeout:
        Seconds one shard attempt may take before it is declared lost
        and retried (``None``: wait forever — a *killed* worker is then
        only recoverable when the pool machinery surfaces an error).
    max_retries:
        Pool retries per dispatch round before degrading the remaining
        shards to serial execution (default 2).
    retry_policy:
        Full :class:`~repro.reliability.RetryPolicy` override (timeout,
        retries, seeded backoff).  Mutually exclusive with the
        ``task_timeout``/``max_retries`` shorthands.
    pool:
        ``"per-run"`` (default) builds and tears down a pool per call;
        ``"persistent"`` reuses the process-wide pool and ships the CSR
        arrays through shared memory, published once per index — the
        amortized mode for pipelines that meta-block repeatedly.
    spill_dir / spill_threshold_mb:
        Set together to arm the out-of-core tier: shard and merged
        arrays above the megabyte budget stream to atomic ``.npy`` files
        under a private subdirectory of *spill_dir* (removed on every
        exit path), bounding peak RSS with bit-identical results.
    """
    if isinstance(weighting, str):
        weighting = WeightingScheme(weighting)
    if not isinstance(weighting, WeightingScheme) or not supports_pruning(
        pruning
    ):
        from repro.graph.metablocking import reference_metablocking

        return reference_metablocking(
            collection,
            weighting=weighting,
            pruning=pruning,
            entropy_boost=entropy_boost,
            key_entropy=key_entropy,
        )
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    if pool not in ("per-run", "persistent"):
        raise ValueError(
            f"pool must be 'per-run' or 'persistent', got {pool!r}"
        )
    if (spill_dir is None) != (spill_threshold_mb is None):
        raise ValueError(
            "spill_dir and spill_threshold_mb must be set together"
        )
    if retry_policy is None:
        retry_policy = RetryPolicy(
            max_retries=2 if max_retries is None else max_retries,
            task_timeout=task_timeout,
        )
    elif task_timeout is not None or max_retries is not None:
        raise ValueError(
            "pass either retry_policy or task_timeout/max_retries, not both"
        )
    workers = resolve_workers(workers)

    index = collection.entity_index
    # EntityIndex caches its shardable view, so repeated runs within one
    # pipeline share a single ShardableIndex object — the identity token
    # the persistent pool's publication cache keys on.
    slim = (
        index.shardable
        if hasattr(index, "shardable")
        else ShardableIndex.from_entity_index(index)
    )
    plan = (
        shard_plan
        if shard_plan is not None
        else plan_shards(slim, num_shards=workers, max_pairs=shard_size)
    )

    if shard_plan is not None:
        _validate_plan(plan, slim.num_ids)

    needs_entropy = weighting is WeightingScheme.CHI_H or entropy_boost
    block_entropies = (
        index.block_entropies(key_entropy) if needs_entropy else None
    )
    need_arcs = weighting is WeightingScheme.ARCS
    # EJS mixes global degree statistics into every edge; its weights are
    # evaluated in the parent over the merged arrays instead of per shard.
    weight_in_worker = weighting is not WeightingScheme.EJS
    counts = index.node_block_counts
    state = _SharedState(
        index=slim,
        block_entropies=block_entropies,
        need_arcs=need_arcs,
        scheme=weighting.value if weight_in_worker else None,
        entropy_boost=entropy_boost,
        node_block_counts=counts if weight_in_worker else None,
        num_blocks=index.num_blocks,
    )

    spill_job = (
        SpillJob(spill_dir, spill_threshold_mb)
        if spill_dir is not None and spill_threshold_mb is not None
        else None
    )
    spill = spill_job.spec if spill_job is not None else None
    try:
        if workers > 1 and len(plan) > 1:
            dispatch = (
                _dispatch_shards_persistent
                if pool == "persistent"
                else _dispatch_shards
            )
            raw = dispatch(state, list(plan), workers, retry_policy, spill)
        else:
            raw = [_run_shard(state, lo, hi, spill) for lo, hi in plan]

        # Spilled shards reopen as memmaps here: pages fault in as the
        # merge copies them, so residency stays one shard at a time.
        results = [
            (resolve_shard(edges), load_array(weights))
            for edges, weights in raw
        ]
        edges = merge_shards([edges for edges, _ in results], spill)
        if weight_in_worker:
            shard_weights = [
                weights for _, weights in results if weights is not None
            ]
            weights = (
                concat_spillable(shard_weights, spill, "merged-weights")
                if shard_weights
                else np.zeros(0, dtype=np.float64)
            )
        else:
            degrees = edge_degrees(edges.src, edges.dst, counts.size)
            weights = compute_edge_weights(
                WeightingScheme.EJS,
                shared=edges.shared,
                blocks_i=counts[edges.src],
                blocks_j=counts[edges.dst],
                num_blocks=index.num_blocks,
                entropy_mass=edges.entropy_mass,
                degrees_src=degrees[edges.src],
                degrees_dst=degrees[edges.dst],
                num_edges=edges.num_edges,
                entropy_boost=entropy_boost,
            )

        graph = _MergedGraph(
            src=edges.src,
            dst=edges.dst,
            node_blocks=counts,
            num_nodes=index.num_indexed_profiles,
        )
        mask = prune_mask(pruning, graph, weights)
        return list(zip(edges.src[mask].tolist(), edges.dst[mask].tolist()))
    finally:
        if spill_job is not None:
            spill_job.cleanup()
