"""Sharded multi-process meta-blocking: the ``parallel`` backend.

The vectorized backend (``repro.graph.vectorized``) made meta-blocking a
handful of numpy passes; this module spreads the dominant pass — pair
enumeration, edge deduplication, and mass accumulation — across worker
processes, one contiguous entity-id shard each (``repro.graph.sharding``),
then merges the shards deterministically and prunes in the parent:

1. the parent plans contiguous entity-id ranges balanced on per-entity
   comparison counts (:func:`~repro.graph.sharding.plan_shards`);
2. each worker enumerates its shard's comparisons, dedupes them into
   sorted edge arrays, accumulates the float masses, and — for every
   weighting except EJS — evaluates the edge weights in place with the
   shared elementwise kernel
   (:func:`~repro.graph.vectorized.compute_edge_weights`);
3. the parent concatenates the shard arrays (shards cover ascending
   ``src`` ranges, so concatenation IS the lexicographic edge order),
   computes EJS from the merged global degrees when needed, and runs the
   existing vectorized pruning (:func:`~repro.graph.vectorized.prune_mask`)
   over the merged arrays.

Because each edge lives in exactly one shard with all of its block
occurrences, the merged ``src``/``dst``/``shared``/mass/weight arrays are
bit-identical to the serial vectorized backend's — and pruning runs the
identical code on identical inputs, so the retained edge set matches the
``vectorized`` (and therefore the ``python`` oracle) backend exactly, for
every weighting scheme and built-in pruning strategy.

``workers=1`` runs the shards sequentially in-process — no pool, no
pickling — which doubles as the chunked low-memory mode: with
``shard_size`` set, the big per-pair arrays (the packed sort keys and
their argsort workspace) never exceed one shard's comparisons, instead of
the full ``||B||`` the serial backend materializes at once.

Inputs the array path cannot express (custom weighting callables,
user-defined pruning schemes) delegate to the pure-python reference
backend, exactly like the vectorized backend does.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

import numpy as np

from repro.blocking.base import BlockCollection
from repro.graph.blocking_graph import Edge, KeyEntropyFn
from repro.graph.pruning import PruningScheme
from repro.graph.sharding import (
    ShardableIndex,
    ShardEdges,
    plan_shards,
    shard_edge_arrays,
)
from repro.graph.vectorized import (
    compute_edge_weights,
    edge_degrees,
    prune_mask,
    supports_pruning,
)
from repro.graph.weights import WeightingScheme

__all__ = [
    "merge_shards",
    "parallel_metablocking",
    "resolve_workers",
]


def resolve_workers(workers: int | None) -> int:
    """The effective worker-process count (``None`` -> cpu count).

    Validation matches :class:`~repro.core.config.BlastConfig`: the knob
    is positive or ``None``, at every API layer.
    """
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be positive or None, got {workers}")
    return workers


@dataclass(frozen=True)
class _SharedState:
    """The per-run state every worker shares, shipped ONCE per worker.

    The CSR index and the dense per-node/per-block arrays are identical
    for every shard, so they travel through the pool *initializer* — one
    pickle per worker process (and zero pickling under ``fork``, where
    the child inherits the parent's pages copy-on-write) — while the
    per-task payload is just an ``(lo, hi)`` id range.  ``scheme`` is the
    weighting to evaluate in the worker (its string value, not the enum
    member) or ``None`` when the parent weights after the merge (EJS,
    which needs global degrees).
    """

    index: ShardableIndex
    block_entropies: np.ndarray | None
    need_arcs: bool
    scheme: str | None
    entropy_boost: bool
    node_block_counts: np.ndarray | None
    num_blocks: int


#: Worker-process slot for the run's shared state (set by ``_init_worker``).
_WORKER_STATE: _SharedState | None = None


def _init_worker(state: _SharedState) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(
    state: _SharedState, lo: int, hi: int
) -> tuple[ShardEdges, np.ndarray | None]:
    """Shard body: build one id range's edges (and weights, when local)."""
    edges = shard_edge_arrays(
        state.index,
        lo,
        hi,
        block_entropies=state.block_entropies,
        need_arcs=state.need_arcs,
    )
    weights = None
    if state.scheme is not None:
        counts = state.node_block_counts
        weights = compute_edge_weights(
            WeightingScheme(state.scheme),
            shared=edges.shared,
            blocks_i=counts[edges.src],
            blocks_j=counts[edges.dst],
            num_blocks=state.num_blocks,
            arcs_mass=edges.arcs_mass,
            entropy_mass=edges.entropy_mass,
            entropy_boost=state.entropy_boost,
        )
    return edges, weights


def _run_shard_in_worker(
    bounds: tuple[int, int],
) -> tuple[ShardEdges, np.ndarray | None]:
    """Pool entry point: one ``(lo, hi)`` range against the worker state."""
    assert _WORKER_STATE is not None, "worker initialized without state"
    return _run_shard(_WORKER_STATE, bounds[0], bounds[1])


def merge_shards(shards: list[ShardEdges]) -> ShardEdges:
    """Concatenate per-shard edge arrays into the global edge arrays.

    Shards cover ascending ``src`` ranges and each shard is sorted
    lexicographically, so plain concatenation in plan order yields the
    globally sorted, duplicate-free edge list — bit-identical to
    ``ArrayBlockingGraph``'s arrays (each edge's masses were accumulated
    whole inside its single owning shard).
    """
    if not shards:
        empty_i = np.zeros(0, dtype=np.int64)
        return ShardEdges(src=empty_i, dst=empty_i.copy(), shared=empty_i.copy())
    return ShardEdges(
        src=np.concatenate([s.src for s in shards]),
        dst=np.concatenate([s.dst for s in shards]),
        shared=np.concatenate([s.shared for s in shards]),
        arcs_mass=np.concatenate([s.arcs_mass for s in shards])
        if shards[0].arcs_mass is not None
        else None,
        entropy_mass=np.concatenate([s.entropy_mass for s in shards])
        if shards[0].entropy_mass is not None
        else None,
    )


@dataclass(frozen=True)
class _MergedGraph:
    """The merged-array stand-in ``prune_mask`` dispatches over.

    Duck-types the slice of ``ArrayBlockingGraph`` the vectorized pruning
    handlers read: edge endpoints, the dense ``|B_p|`` array, and the
    indexed-profile count.
    """

    src: np.ndarray
    dst: np.ndarray
    node_blocks: np.ndarray
    num_nodes: int


def _validate_plan(plan: list[tuple[int, int]], num_ids: int) -> None:
    """Reject shard plans that would silently corrupt the merge.

    Merging is plain concatenation, so a plan must tile ``[0, num_ids)``
    contiguously: an overlap would duplicate edges, a gap would drop
    them — both yield a plausible-looking wrong result rather than a
    crash.  Empty ranges (``lo == hi``) are fine.
    """
    if num_ids == 0:
        return
    if not plan:
        raise ValueError("shard_plan must cover the entity-id space")
    cursor = 0
    for lo, hi in plan:
        if lo != cursor or hi < lo:
            raise ValueError(
                f"shard_plan must tile [0, {num_ids}) contiguously; "
                f"range ({lo}, {hi}) breaks at position {cursor}"
            )
        cursor = hi
    if cursor != num_ids:
        raise ValueError(
            f"shard_plan must tile [0, {num_ids}) contiguously; "
            f"coverage stops at {cursor}"
        )


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, shares pages COW); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_metablocking(
    collection: BlockCollection,
    *,
    weighting=WeightingScheme.CHI_H,
    pruning: PruningScheme,
    entropy_boost: bool = False,
    key_entropy: KeyEntropyFn | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
    shard_plan: list[tuple[int, int]] | None = None,
) -> list[Edge]:
    """The ``parallel`` meta-blocking backend: sorted retained edges.

    Bit-identical to :func:`repro.graph.vectorized.vectorized_metablocking`
    (and hence to the ``python`` oracle) for every weighting scheme and
    built-in pruning strategy; unsupported components delegate to the
    reference path.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` means the machine's cpu count, ``1``
        runs the shards sequentially in-process (the chunked low-memory
        mode — no pool, no pickling).  Must be positive or ``None``.
    shard_size:
        Cap on the comparisons enumerated per shard (strict, except that
        a single entity owning more than the cap becomes a shard of its
        own); bounds the peak per-shard edge-array bytes.  ``None``
        splits the id space into one balanced shard per worker.
    shard_plan:
        Explicit ``[(lo, hi), ...]`` entity-id ranges, overriding the
        planner — the hook the conformance/property suites use to pin
        pathological shard layouts (empty ranges, single-entity ranges).
        Must tile ``[0, num_ids)`` contiguously (validated: an overlap or
        gap would silently corrupt the merge).
    """
    if isinstance(weighting, str):
        weighting = WeightingScheme(weighting)
    if not isinstance(weighting, WeightingScheme) or not supports_pruning(
        pruning
    ):
        from repro.graph.metablocking import reference_metablocking

        return reference_metablocking(
            collection,
            weighting=weighting,
            pruning=pruning,
            entropy_boost=entropy_boost,
            key_entropy=key_entropy,
        )
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    workers = resolve_workers(workers)

    index = collection.entity_index
    slim = ShardableIndex.from_entity_index(index)
    plan = (
        shard_plan
        if shard_plan is not None
        else plan_shards(slim, num_shards=workers, max_pairs=shard_size)
    )

    if shard_plan is not None:
        _validate_plan(plan, slim.num_ids)

    needs_entropy = weighting is WeightingScheme.CHI_H or entropy_boost
    block_entropies = (
        index.block_entropies(key_entropy) if needs_entropy else None
    )
    need_arcs = weighting is WeightingScheme.ARCS
    # EJS mixes global degree statistics into every edge; its weights are
    # evaluated in the parent over the merged arrays instead of per shard.
    weight_in_worker = weighting is not WeightingScheme.EJS
    counts = index.node_block_counts
    state = _SharedState(
        index=slim,
        block_entropies=block_entropies,
        need_arcs=need_arcs,
        scheme=weighting.value if weight_in_worker else None,
        entropy_boost=entropy_boost,
        node_block_counts=counts if weight_in_worker else None,
        num_blocks=index.num_blocks,
    )

    if workers > 1 and len(plan) > 1:
        with _pool_context().Pool(
            processes=min(workers, len(plan)),
            initializer=_init_worker,
            initargs=(state,),
        ) as pool:
            results = pool.map(_run_shard_in_worker, plan)
    else:
        results = [_run_shard(state, lo, hi) for lo, hi in plan]

    edges = merge_shards([edges for edges, _ in results])
    if weight_in_worker:
        shard_weights = [
            weights for _, weights in results if weights is not None
        ]
        weights = (
            np.concatenate(shard_weights)
            if shard_weights
            else np.zeros(0, dtype=np.float64)
        )
    else:
        degrees = edge_degrees(edges.src, edges.dst, counts.size)
        weights = compute_edge_weights(
            WeightingScheme.EJS,
            shared=edges.shared,
            blocks_i=counts[edges.src],
            blocks_j=counts[edges.dst],
            num_blocks=index.num_blocks,
            entropy_mass=edges.entropy_mass,
            degrees_src=degrees[edges.src],
            degrees_dst=degrees[edges.dst],
            num_edges=edges.num_edges,
            entropy_boost=entropy_boost,
        )

    graph = _MergedGraph(
        src=edges.src,
        dst=edges.dst,
        node_blocks=counts,
        num_nodes=index.num_indexed_profiles,
    )
    mask = prune_mask(pruning, graph, weights)
    return list(zip(edges.src[mask].tolist(), edges.dst[mask].tolist()))
