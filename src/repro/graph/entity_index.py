"""CSR-style entity index of a block collection.

The array-backed meta-blocking backend (``repro.graph.vectorized``) never
walks Python block objects in its hot path.  Instead a
:class:`BlockCollection` is lowered once into a compressed-sparse-row
layout — flat ``int32`` member arrays plus per-block offset/cardinality
arrays — from which every co-occurrence pair can be enumerated with pure
numpy arithmetic:

* ``entity_ids[block_ptr[b]:block_ptr[b+1]]`` are block *b*'s members;
  for clean-clean blocks ``block_split[b]`` separates the (sorted) E1
  members from the (sorted) E2 members, and for dirty blocks
  ``block_split[b] == block_ptr[b+1]``.
* ``block_comparisons[b]`` is ``||b||``, the comparisons block *b* entails.
* ``node_block_counts[p]`` is ``|B_p|``, how many blocks index profile
  ``p`` (dense over ``[0, max_profile_id]``; zero for unindexed ids).

:meth:`EntityIndex.enumerate_pairs` unranks every comparison of every
block into parallel ``(src, dst, block)`` arrays in block-major order —
the array analogue of ``for block: block.iter_pairs()`` — in O(||B||)
vectorized work, with no per-pair Python bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base -> here)
    from repro.blocking.base import BlockCollection
    from repro.graph.sharding import ShardableIndex

#: Bit width used to pack an ``(src, dst)`` pair into one int64 sort key.
_PAIR_SHIFT = np.int64(31)
_PAIR_MASK = np.int64((1 << 31) - 1)


@dataclass(frozen=True)
class EntityIndex:
    """Array (CSR) view of a block collection.

    Attributes
    ----------
    is_clean_clean:
        Whether the indexed collection is clean-clean.
    keys:
        Blocking key of every block, aligned with the block axis (used to
        attach per-key entropies without touching block objects again).
    block_ptr:
        ``int32[num_blocks + 1]`` offsets into :attr:`entity_ids`.
    block_split:
        ``int32[num_blocks]`` boundary between E1 and E2 members of each
        block; equals ``block_ptr[b + 1]`` for dirty blocks.
    entity_ids:
        ``int32`` member profile ids, each side sorted ascending.
    block_comparisons:
        ``int64[num_blocks]`` — ``||b||`` per block (zero-comparison
        blocks are kept so block counts match the Python path).
    node_block_counts:
        ``int64[max_id + 1]`` — ``|B_p|`` per profile id, dense.
    """

    is_clean_clean: bool
    keys: tuple[str, ...]
    block_ptr: np.ndarray
    block_split: np.ndarray
    entity_ids: np.ndarray
    block_comparisons: np.ndarray
    node_block_counts: np.ndarray

    @classmethod
    def from_collection(cls, collection: "BlockCollection") -> "EntityIndex":
        """Lower *collection* into the flat array layout (one Python pass)."""
        keys: list[str] = []
        flat: list[int] = []
        sizes: list[int] = []
        left_sizes: list[int] = []
        comparisons: list[int] = []
        for block in collection:
            keys.append(block.key)
            left = sorted(block.left)
            flat.extend(left)
            if block.right is not None:
                right = sorted(block.right)
                flat.extend(right)
                sizes.append(len(left) + len(right))
                comparisons.append(len(left) * len(right))
            else:
                n = len(left)
                sizes.append(n)
                comparisons.append(n * (n - 1) // 2)
            left_sizes.append(len(left))

        num_blocks = len(keys)
        block_ptr = np.zeros(num_blocks + 1, dtype=np.int32)
        np.cumsum(np.asarray(sizes, dtype=np.int32), out=block_ptr[1:])
        block_split = block_ptr[:-1] + np.asarray(left_sizes, dtype=np.int32)
        entity_ids = np.asarray(flat, dtype=np.int32)
        node_block_counts = (
            np.bincount(entity_ids)
            if entity_ids.size
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        return cls(
            is_clean_clean=collection.is_clean_clean,
            keys=tuple(keys),
            block_ptr=block_ptr,
            block_split=block_split,
            entity_ids=entity_ids,
            block_comparisons=np.asarray(comparisons, dtype=np.int64),
            node_block_counts=node_block_counts,
        )

    @classmethod
    def from_arrays(
        cls,
        is_clean_clean: bool,
        keys: tuple[str, ...],
        block_ptr: np.ndarray,
        block_split: np.ndarray,
        entity_ids: np.ndarray,
        block_comparisons: np.ndarray,
    ) -> "EntityIndex":
        """Build an index straight from pre-interned key/member arrays.

        The interned blocking kernels (``repro.blocking._interned``) emit
        exactly this layout, so the CSR lowering skips the
        dict-of-strings/Block-object walk of :meth:`from_collection`.
        Members of each block must already be sorted ascending per side.
        """
        node_block_counts = (
            np.bincount(entity_ids)
            if entity_ids.size
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        return cls(
            is_clean_clean=is_clean_clean,
            keys=keys,
            block_ptr=block_ptr.astype(np.int32, copy=False),
            block_split=block_split.astype(np.int32, copy=False),
            entity_ids=entity_ids.astype(np.int32, copy=False),
            block_comparisons=block_comparisons.astype(np.int64, copy=False),
            node_block_counts=node_block_counts,
        )

    @property
    def num_blocks(self) -> int:
        return len(self.keys)

    @property
    def num_indexed_profiles(self) -> int:
        """Distinct profiles appearing in at least one block."""
        return int(np.count_nonzero(self.node_block_counts))

    @property
    def total_comparisons(self) -> int:
        """``||B||`` — the aggregate cardinality."""
        return int(self.block_comparisons.sum())

    @cached_property
    def _member_blocks_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Transpose of the block->members layout: profile -> block positions.

        Returns ``(ptr, blocks)`` where ``blocks[ptr[p]:ptr[p+1]]`` are the
        positions of the blocks containing profile ``p``, in ascending block
        order (the stable sort preserves the block-major flat order).  Built
        once and cached — the per-node query path of the streaming subsystem
        walks it for every candidate lookup.
        """
        counts = self.node_block_counts
        ptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        if self.entity_ids.size == 0:
            return ptr, np.zeros(0, dtype=np.int64)
        block_of_flat = np.repeat(
            np.arange(self.num_blocks, dtype=np.int64),
            np.diff(self.block_ptr).astype(np.int64),
        )
        order = np.argsort(self.entity_ids, kind="stable")
        return ptr, block_of_flat[order]

    def blocks_of(self, profile: int) -> np.ndarray:
        """Positions of the blocks containing *profile*, ascending.

        Profiles outside ``[0, max_id]`` (or indexed by no block) yield an
        empty array.
        """
        ptr, blocks = self._member_blocks_csr
        if not 0 <= profile < ptr.size - 1:
            return np.zeros(0, dtype=np.int64)
        return blocks[ptr[profile] : ptr[profile + 1]]

    @cached_property
    def shardable(self) -> "ShardableIndex":
        """The cached slim array-only view the parallel backend shards.

        Cached so repeated parallel runs over one index share a single
        ``ShardableIndex`` object — its identity token is what lets the
        persistent pool's shared-memory publication cache skip
        re-shipping the CSR arrays (local import: sharding imports the
        pair-packing helpers from this module).
        """
        from repro.graph.sharding import ShardableIndex

        return ShardableIndex.from_entity_index(self)

    def block_entropies(self, key_entropy=None) -> np.ndarray:
        """Per-block entropy ``h(b)`` via *key_entropy* (1.0 when ``None``)."""
        if key_entropy is None:
            return np.ones(self.num_blocks, dtype=np.float64)
        return np.asarray(
            [key_entropy(key) for key in self.keys], dtype=np.float64
        )

    def enumerate_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All comparisons as ``(src, dst, block)`` int64 arrays.

        Pairs appear in block-major order with ``src < dst`` (global
        indexing already orders E1 before E2 for clean-clean blocks; dirty
        pairs are unranked from each block's sorted member slice).
        """
        counts = self.block_comparisons
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        pair_block = np.repeat(
            np.arange(self.num_blocks, dtype=np.int64), counts
        )
        offsets = np.zeros(self.num_blocks + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # q: rank of the pair within its own block.
        q = np.arange(total, dtype=np.int64) - offsets[pair_block]
        starts = self.block_ptr[:-1].astype(np.int64)[pair_block]
        if self.is_clean_clean:
            split = self.block_split.astype(np.int64)[pair_block]
            num_right = self.block_ptr[1:].astype(np.int64)[pair_block] - split
            left_idx = q // num_right
            right_idx = q - left_idx * num_right
            src = self.entity_ids[starts + left_idx]
            dst = self.entity_ids[split + right_idx]
        else:
            n = (
                self.block_ptr[1:].astype(np.int64)[pair_block] - starts
            )
            row, col = _unrank_combinations(n, q)
            src = self.entity_ids[starts + row]
            dst = self.entity_ids[starts + col]
        return src.astype(np.int64), dst.astype(np.int64), pair_block

    def distinct_pair_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Deduplicated comparison pairs, sorted lexicographically.

        Returns parallel ``(src, dst)`` int64 arrays — the array analogue
        of ``sorted(collection.distinct_pairs())`` at a fraction of the
        memory of a Python set of tuples.
        """
        src, dst, _ = self.enumerate_pairs()
        if src.size == 0:
            return src, dst
        return unpack_pairs(np.unique(pack_pairs(src, dst)))


def pack_pairs(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Pack ``(src, dst)`` into one int64 key preserving (src, dst) order."""
    return (src << _PAIR_SHIFT) | dst


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`."""
    return packed >> _PAIR_SHIFT, packed & _PAIR_MASK


def _unrank_combinations(
    n: np.ndarray, q: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Map rank ``q`` to the ``q``-th pair ``(row, col)`` of ``C(n, 2)``.

    Ranks follow ``itertools.combinations(range(n), 2)`` order: row ``i``
    starts at offset ``i * (2n - i - 1) / 2``.  The closed-form inverse is
    computed in float64 and corrected by at most one step in each
    direction, which is exact for any realistic block size.
    """
    m = 2 * n - 1
    row = ((m - np.sqrt((m * m - 8 * q).astype(np.float64))) // 2).astype(
        np.int64
    )
    np.clip(row, 0, n - 2, out=row)
    offset = row * (2 * n - row - 1) // 2
    row -= offset > q
    offset = row * (2 * n - row - 1) // 2
    row += q >= offset + (n - 1 - row)
    offset = row * (2 * n - row - 1) // 2
    col = q - offset + row + 1
    return row, col
