"""The meta-blocking driver: graph -> weights -> pruning -> new blocks.

Meta-blocking (Definition 2) restructures a block collection into one with
far higher PQ and nearly identical PC.  After pruning, every retained edge
becomes a block of exactly one comparison, so the output collection is
redundancy-free by construction.

Three result-equivalent execution backends exist, addressable by name
through :data:`repro.core.registry.BACKENDS`:

* ``"python"`` — :func:`reference_metablocking`, the dict-based reference
  path over :class:`~repro.graph.blocking_graph.BlockingGraph`;
* ``"vectorized"`` (the default) —
  :func:`repro.graph.vectorized.vectorized_metablocking`, the array-backed
  hot path; it delegates back to the reference for components it cannot
  vectorize, so any registered backend accepts any weighting/pruning;
* ``"parallel"`` —
  :func:`repro.graph.parallel.parallel_metablocking`, the vectorized
  arrays sharded by entity-id range across worker processes (bit-identical
  merge; same reference fallback).

A backend is a callable ``(collection, *, weighting, pruning,
entropy_boost, key_entropy) -> list[Edge]`` returning the retained edges
in lexicographic order.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.blocking.base import Block, BlockCollection
from repro.graph.blocking_graph import BlockingGraph, Edge, KeyEntropyFn
from repro.graph.pruning import BlastPruning, PruningScheme
from repro.graph.weights import WeightingScheme, compute_weights


def blocks_from_edges(
    edges: Iterable[Edge], is_clean_clean: bool, *, presorted: bool = False
) -> BlockCollection:
    """One single-comparison block per retained edge.

    Keys encode the pair (``"e:i-j"``) purely for debuggability; nothing
    downstream depends on them.  Pass ``presorted=True`` when *edges*
    already arrive in lexicographic order (backend outputs do) to skip
    the deterministic re-sort.
    """
    ordered = edges if presorted else sorted(edges)
    blocks = []
    for i, j in ordered:
        if is_clean_clean:
            blocks.append(Block(f"e:{i}-{j}", frozenset((i,)), frozenset((j,))))
        else:
            blocks.append(Block(f"e:{i}-{j}", frozenset((i, j))))
    return BlockCollection(blocks, is_clean_clean)


def reference_metablocking(
    collection: BlockCollection,
    *,
    weighting=WeightingScheme.CHI_H,
    pruning: PruningScheme,
    entropy_boost: bool = False,
    key_entropy: KeyEntropyFn | None = None,
) -> list[Edge]:
    """The ``python`` backend: the pure-Python oracle path.

    *weighting* may be a :class:`WeightingScheme` (or its string name) or
    any callable ``graph -> {edge: weight}``.
    """
    graph = BlockingGraph(collection, key_entropy=key_entropy)
    if callable(weighting) and not isinstance(weighting, WeightingScheme):
        weights = weighting(graph)
    else:
        weights = compute_weights(
            graph, scheme=weighting, entropy_boost=entropy_boost
        )
    return sorted(pruning.prune(graph, weights))


def get_backend(name: str):
    """Resolve a backend name through :data:`repro.core.registry.BACKENDS`."""
    from repro.core.registry import BACKENDS

    return BACKENDS.get(name)


@dataclass
class MetaBlocker:
    """Configurable graph-based meta-blocking.

    Parameters
    ----------
    weighting:
        Edge weighting scheme (BLAST's ``CHI_H`` by default) or a custom
        callable ``graph -> {edge: weight}``.
    pruning:
        Pruning scheme (BLAST's max-based WNP by default).
    entropy_boost:
        Multiply traditional weights by ``h(B_uv)`` (the ``wsh`` ablation).
    key_entropy:
        Blocking-key -> cluster-entropy map; leave ``None`` for
        entropy-agnostic weighting (every key counts 1.0).
    backend:
        Execution backend: ``"vectorized"`` (array-backed, the default),
        ``"parallel"`` (sharded across worker processes) or ``"python"``
        (the reference oracle) — or any name registered via
        ``repro.core.registry.register_backend``.  All built-ins retain
        the identical edge set.
    backend_options:
        Extra keyword arguments forwarded to the backend callable — e.g.
        ``{"workers": 4, "shard_size": 500_000}`` for the ``parallel``
        backend.  Empty for the built-in serial backends.

    Example
    -------
    >>> from repro.graph import MetaBlocker, WeightingScheme
    >>> from repro.graph.pruning import WeightNodePruning
    >>> mb = MetaBlocker(weighting=WeightingScheme.JS,
    ...                  pruning=WeightNodePruning(reciprocal=True))
    """

    weighting: WeightingScheme = WeightingScheme.CHI_H
    pruning: PruningScheme = field(default_factory=BlastPruning)
    entropy_boost: bool = False
    key_entropy: KeyEntropyFn | None = None
    backend: str = "vectorized"
    backend_options: dict = field(default_factory=dict)

    def build_graph(self, collection: BlockCollection) -> BlockingGraph:
        """Materialize the (reference) blocking graph of *collection*."""
        return BlockingGraph(collection, key_entropy=self.key_entropy)

    def retained_edges(self, collection: BlockCollection) -> list[Edge]:
        """The pruned edge set of *collection*, lexicographically sorted."""
        return get_backend(self.backend)(
            collection,
            weighting=self.weighting,
            pruning=self.pruning,
            entropy_boost=self.entropy_boost,
            key_entropy=self.key_entropy,
            **self.backend_options,
        )

    def run(self, collection: BlockCollection) -> BlockCollection:
        """Restructure *collection*; returns the new (pair) block collection."""
        return blocks_from_edges(
            self.retained_edges(collection),
            collection.is_clean_clean,
            presorted=True,
        )

    def run_detailed(
        self, collection: BlockCollection
    ) -> tuple[BlockCollection, BlockingGraph, dict[Edge, float], set[Edge]]:
        """Like :meth:`run` but also returns graph, weights and retained edges.

        Useful for inspection, ablations, and the supervised comparator that
        needs raw edge features.  Always runs the reference path (the
        returned graph and weight dict are its artifacts); backends are
        result-equivalent, so the retained set matches :meth:`run`.
        """
        graph = self.build_graph(collection)
        weights = compute_weights(
            graph, scheme=self.weighting, entropy_boost=self.entropy_boost
        )
        retained = self.pruning.prune(graph, weights)
        return (
            blocks_from_edges(
                sorted(retained), collection.is_clean_clean, presorted=True
            ),
            graph,
            weights,
            retained,
        )
