"""The meta-blocking driver: graph -> weights -> pruning -> new blocks.

Meta-blocking (Definition 2) restructures a block collection into one with
far higher PQ and nearly identical PC.  After pruning, every retained edge
becomes a block of exactly one comparison, so the output collection is
redundancy-free by construction.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.blocking.base import Block, BlockCollection
from repro.graph.blocking_graph import BlockingGraph, Edge, KeyEntropyFn
from repro.graph.pruning import BlastPruning, PruningScheme
from repro.graph.weights import WeightingScheme, compute_weights


def blocks_from_edges(
    edges: Iterable[Edge], is_clean_clean: bool
) -> BlockCollection:
    """One single-comparison block per retained edge.

    Keys encode the pair (``"e:i-j"``) purely for debuggability; nothing
    downstream depends on them.
    """
    blocks = []
    for i, j in sorted(edges):
        if is_clean_clean:
            blocks.append(Block(f"e:{i}-{j}", frozenset((i,)), frozenset((j,))))
        else:
            blocks.append(Block(f"e:{i}-{j}", frozenset((i, j))))
    return BlockCollection(blocks, is_clean_clean)


@dataclass
class MetaBlocker:
    """Configurable graph-based meta-blocking.

    Parameters
    ----------
    weighting:
        Edge weighting scheme (BLAST's ``CHI_H`` by default).
    pruning:
        Pruning scheme (BLAST's max-based WNP by default).
    entropy_boost:
        Multiply traditional weights by ``h(B_uv)`` (the ``wsh`` ablation).
    key_entropy:
        Blocking-key -> cluster-entropy map; leave ``None`` for
        entropy-agnostic weighting (every key counts 1.0).

    Example
    -------
    >>> from repro.graph import MetaBlocker, WeightingScheme
    >>> from repro.graph.pruning import WeightNodePruning
    >>> mb = MetaBlocker(weighting=WeightingScheme.JS,
    ...                  pruning=WeightNodePruning(reciprocal=True))
    """

    weighting: WeightingScheme = WeightingScheme.CHI_H
    pruning: PruningScheme = field(default_factory=BlastPruning)
    entropy_boost: bool = False
    key_entropy: KeyEntropyFn | None = None

    def build_graph(self, collection: BlockCollection) -> BlockingGraph:
        """Materialize the blocking graph of *collection*."""
        return BlockingGraph(collection, key_entropy=self.key_entropy)

    def run(self, collection: BlockCollection) -> BlockCollection:
        """Restructure *collection*; returns the new (pair) block collection."""
        graph = self.build_graph(collection)
        weights = compute_weights(
            graph, scheme=self.weighting, entropy_boost=self.entropy_boost
        )
        retained = self.pruning.prune(graph, weights)
        return blocks_from_edges(retained, collection.is_clean_clean)

    def run_detailed(
        self, collection: BlockCollection
    ) -> tuple[BlockCollection, BlockingGraph, dict[Edge, float], set[Edge]]:
        """Like :meth:`run` but also returns graph, weights and retained edges.

        Useful for inspection, ablations, and the supervised comparator that
        needs raw edge features.
        """
        graph = self.build_graph(collection)
        weights = compute_weights(
            graph, scheme=self.weighting, entropy_boost=self.entropy_boost
        )
        retained = self.pruning.prune(graph, weights)
        return (
            blocks_from_edges(retained, collection.is_clean_clean),
            graph,
            weights,
            retained,
        )
