"""Edge-pruning schemes (Section 2.2 and Section 3.3.2).

The four traditional schemes of [Papadakis et al., EDBT 2016] — WEP, CEP and
the redefined/reciprocal variants of WNP and CNP — plus BLAST's pruning
rule, which replaces the average-based local threshold (sensitive to how
many low-weight edges happen to be adjacent, see the p5/p6 example of
Figure 6) with a fraction of the local *maximum*:

    theta_i = M_i / c          (M_i = max weight incident to node i)
    keep e_ij  iff  w_ij >= (theta_i + theta_j) / d

with c = d = 2 by default.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.graph.blocking_graph import BlockingGraph, Edge


def _clears(weight: float, threshold: float) -> bool:
    """``weight >= threshold`` with a relative tolerance.

    Mean thresholds are computed by floating-point summation; without a
    tolerance, a graph whose edges all carry the same weight can end up
    retaining nothing because ``sum/n`` lands one ulp above the weight.
    """
    return weight >= threshold - 1e-9 * abs(threshold)


class PruningScheme(ABC):
    """Interface: reduce a weighted blocking graph to the retained edges."""

    @abstractmethod
    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        """Return the set of retained edges."""

    @staticmethod
    def _node_thresholds_mean(
        graph: BlockingGraph, weights: dict[Edge, float]
    ) -> dict[int, float]:
        """theta_i = mean weight of node i's incident edges (WNP of [20])."""
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        for edge, weight in weights.items():
            for node in edge:
                sums[node] = sums.get(node, 0.0) + weight
                counts[node] = counts.get(node, 0) + 1
        return {node: sums[node] / counts[node] for node in sums}


class WeightEdgePruning(PruningScheme):
    """WEP: one global threshold over all edges.

    Parameters
    ----------
    threshold:
        The global Theta; defaults to the mean edge weight, the standard
        configuration of [20].
    """

    def __init__(self, threshold: float | None = None) -> None:
        self.threshold = threshold

    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        if not weights:
            return set()
        theta = (
            self.threshold
            if self.threshold is not None
            else sum(weights.values()) / len(weights)
        )
        return {edge for edge, weight in weights.items() if _clears(weight, theta)}


class CardinalityEdgePruning(PruningScheme):
    """CEP: keep the global top-K edges by weight.

    Parameters
    ----------
    k:
        Number of retained edges; defaults to half the total block
        assignments ``sum_i |B_i| / 2``, the convention of [20].
    """

    def __init__(self, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        if not weights:
            return set()
        k = self.k
        if k is None:
            k = max(1, sum(graph.node_blocks.values()) // 2)
        # Deterministic order: weight descending, then edge ascending.
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return {edge for edge, _ in ranked[:k]}


class WeightNodePruning(PruningScheme):
    """WNP: node-centric mean-weight thresholds (wnp1/wnp2 of the paper).

    Parameters
    ----------
    reciprocal:
        ``False`` — redefined WNP (wnp1): keep the edge if it clears the
        threshold of *at least one* endpoint.  ``True`` — reciprocal WNP
        (wnp2): it must clear *both*.
    """

    def __init__(self, reciprocal: bool = False) -> None:
        self.reciprocal = reciprocal

    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        thresholds = self._node_thresholds_mean(graph, weights)
        retained: set[Edge] = set()
        for edge, weight in weights.items():
            i, j = edge
            above_i = _clears(weight, thresholds[i])
            above_j = _clears(weight, thresholds[j])
            keep = (above_i and above_j) if self.reciprocal else (above_i or above_j)
            if keep:
                retained.add(edge)
        return retained


class CardinalityNodePruning(PruningScheme):
    """CNP: node-centric top-k (cnp1/cnp2 of the paper).

    Parameters
    ----------
    reciprocal:
        ``False`` — redefined CNP (cnp1): keep the edge if it is in the
        top-k of at least one endpoint; ``True`` — reciprocal CNP (cnp2):
        of both.
    k:
        Edges retained per node; defaults to the average number of blocks
        per profile, ``ceil(sum_i |B_i| / |V|)``, the convention of [20].
    """

    def __init__(self, reciprocal: bool = False, k: int | None = None) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.reciprocal = reciprocal
        self.k = k

    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        if not weights:
            return set()
        k = self.k
        if k is None:
            total_assignments = sum(graph.node_blocks.values())
            k = max(1, math.ceil(total_assignments / max(1, graph.num_nodes)))

        top_edges: dict[int, set[Edge]] = {}
        for node, incident in graph.adjacency.items():
            ranked = sorted(incident, key=lambda e: (-weights[e], e))
            top_edges[node] = set(ranked[:k])

        retained: set[Edge] = set()
        for edge in weights:
            i, j = edge
            in_i = edge in top_edges.get(i, ())
            in_j = edge in top_edges.get(j, ())
            keep = (in_i and in_j) if self.reciprocal else (in_i or in_j)
            if keep:
                retained.add(edge)
        return retained


class BlastPruning(PruningScheme):
    """BLAST's WNP (Section 3.3.2): max-based local thresholds.

    ``theta_i = M_i / c`` where ``M_i`` is the maximum weight incident to
    node i; an edge survives iff its weight reaches the combined threshold
    ``(theta_i + theta_j) / d``.  Unlike mean-based thresholds, ``theta_i``
    does not move when low-weight edges are added around node i.

    Parameters
    ----------
    c:
        Local threshold divisor; larger c retains more edges (higher PC,
        lower PQ).  The paper found c = 2 effective on real data.
    d:
        Combiner divisor; d = 2 makes the edge threshold the mean of the two
        endpoint thresholds.
    """

    def __init__(self, c: float = 2.0, d: float = 2.0) -> None:
        if c <= 0 or d <= 0:
            raise ValueError("c and d must be positive")
        self.c = c
        self.d = d

    def prune(self, graph: BlockingGraph, weights: dict[Edge, float]) -> set[Edge]:
        maxima: dict[int, float] = {}
        for edge, weight in weights.items():
            for node in edge:
                if weight > maxima.get(node, 0.0):
                    maxima[node] = weight
        retained: set[Edge] = set()
        for edge, weight in weights.items():
            if weight <= 0.0:
                # Zero weight means "no positive evidence of a match" (the
                # chi-squared scheme zeroes negatively associated pairs);
                # such an edge never survives, even when its endpoints have
                # no better alternative.
                continue
            i, j = edge
            theta_i = maxima[i] / self.c
            theta_j = maxima[j] / self.c
            if _clears(weight, (theta_i + theta_j) / self.d):
                retained.add(edge)
        return retained
