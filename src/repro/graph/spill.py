"""Out-of-core shard spilling: bounded peak RSS, bit-identical results.

The parallel backend's memory high-water mark is the moment every
shard's edge/weight arrays coexist for the concatenation merge — at
DBpedia scale that sum dwarfs the CSR index itself.  This module lets
each shard's output *spill* to an ``.npy`` file once it crosses a byte
budget, and lets the merge write its concatenated outputs into
``np.memmap``-backed arrays, so the resident set at any instant is one
shard plus the index, not the whole edge list.

Determinism is inherited, not re-proven: the single-owner shard rule of
:mod:`repro.graph.sharding` already fixes the *order* of every edge,
and the merge here is a preallocate-and-copy concatenation — byte-wise
the same operation as ``np.concatenate``, independent of whether the
inputs arrive as heap arrays or read-only memmaps.  The bit-identity
suites assert exactly that.

Spill files are written atomically (``<stem>.<pid>.tmp.npy`` then
``os.replace``) so a killed worker can never leave a torn file where a
retry would read it, and every job's files live under one
``tempfile.mkdtemp`` directory removed by :meth:`SpillJob.cleanup` on
every exit path.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

import numpy as np
from numpy.lib.format import open_memmap

from .sharding import ShardEdges

__all__ = [
    "MB",
    "SpillJob",
    "SpillSpec",
    "SpilledArray",
    "SpilledShardEdges",
    "concat_spillable",
    "load_array",
    "resolve_shard",
    "spill_array",
    "spill_shard",
]

MB = 1024 * 1024


@dataclass(frozen=True)
class SpillSpec:
    """Picklable spill policy: where to write, and above how many bytes.

    Travels to workers inside the job spec; arrays whose total size
    stays under ``threshold_bytes`` never touch disk.
    """

    directory: str
    threshold_bytes: int


class SpillJob:
    """One run's private spill directory, created eagerly, removed always.

    ``spill_dir`` is the *parent*: each job mkdtemps its own
    ``repro-spill-*`` subdirectory there, so concurrent runs (and
    retried attempts) never collide, and :meth:`cleanup` can remove the
    whole tree without inspecting contents.
    """

    def __init__(self, spill_dir: str, spill_threshold_mb: float) -> None:
        if spill_threshold_mb <= 0:
            raise ValueError(
                f"spill_threshold_mb must be positive, got {spill_threshold_mb}"
            )
        os.makedirs(spill_dir, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=spill_dir)
        self.spec = SpillSpec(
            directory=self.directory,
            threshold_bytes=int(spill_threshold_mb * MB),
        )

    def cleanup(self) -> None:
        """Remove the job directory and everything in it (idempotent)."""
        shutil.rmtree(self.directory, ignore_errors=True)


@dataclass(frozen=True)
class SpilledArray:
    """A by-path reference to one spilled ``.npy`` array."""

    path: str


def spill_array(array: np.ndarray, directory: str, stem: str) -> SpilledArray:
    """Write *array* to ``<directory>/<stem>.npy`` atomically.

    The write goes to a pid-suffixed temp name first and is published
    with ``os.replace`` — a worker killed mid-write leaves only the temp
    file (swept with the job directory), never a torn ``.npy`` that a
    retry or the merge would load.
    """
    final = os.path.join(directory, f"{stem}.npy")
    tmp = os.path.join(directory, f"{stem}.{os.getpid()}.tmp.npy")
    with open(tmp, "wb") as handle:
        np.save(handle, np.ascontiguousarray(array))
    os.replace(tmp, final)
    return SpilledArray(final)


def load_array(value: np.ndarray | SpilledArray | None) -> np.ndarray | None:
    """Materialize a maybe-spilled array as a (possibly memmapped) ndarray.

    Spilled arrays come back via ``np.load(..., mmap_mode="r")`` — pages
    fault in as the merge copies them, so loading N spilled shards does
    not resurrect the RSS spike spilling existed to avoid.
    """
    if value is None or isinstance(value, np.ndarray):
        return value
    result: np.ndarray = np.load(value.path, mmap_mode="r")
    return result


@dataclass(frozen=True)
class SpilledShardEdges:
    """The :class:`~repro.graph.sharding.ShardEdges` fields, spilled."""

    src: SpilledArray
    dst: SpilledArray
    shared: SpilledArray
    arcs_mass: SpilledArray | None
    entropy_mass: SpilledArray | None


def spill_shard(
    edges: ShardEdges,
    weights: np.ndarray | None,
    spec: SpillSpec | None,
    tag: str,
) -> tuple[ShardEdges | SpilledShardEdges, np.ndarray | SpilledArray | None]:
    """Spill one shard's output if it exceeds the byte budget.

    *tag* must be unique per shard within the job (the shard's ``lo``
    bound is — plans tile the id range); below-threshold shards return
    unchanged, so small jobs never pay any IO.
    """
    if spec is None:
        return edges, weights
    total = edges.src.nbytes + edges.dst.nbytes + edges.shared.nbytes
    if edges.arcs_mass is not None:
        total += edges.arcs_mass.nbytes
    if edges.entropy_mass is not None:
        total += edges.entropy_mass.nbytes
    if weights is not None:
        total += weights.nbytes
    if total <= spec.threshold_bytes:
        return edges, weights
    spilled = SpilledShardEdges(
        src=spill_array(edges.src, spec.directory, f"{tag}-src"),
        dst=spill_array(edges.dst, spec.directory, f"{tag}-dst"),
        shared=spill_array(edges.shared, spec.directory, f"{tag}-shared"),
        arcs_mass=(
            None
            if edges.arcs_mass is None
            else spill_array(edges.arcs_mass, spec.directory, f"{tag}-arcs")
        ),
        entropy_mass=(
            None
            if edges.entropy_mass is None
            else spill_array(
                edges.entropy_mass, spec.directory, f"{tag}-entropy"
            )
        ),
    )
    spilled_weights: np.ndarray | SpilledArray | None = weights
    if weights is not None:
        spilled_weights = spill_array(weights, spec.directory, f"{tag}-weights")
    return spilled, spilled_weights


def resolve_shard(edges: ShardEdges | SpilledShardEdges) -> ShardEdges:
    """Reopen a maybe-spilled shard as (memmap-backed) :class:`ShardEdges`."""
    if isinstance(edges, ShardEdges):
        return edges
    src = load_array(edges.src)
    dst = load_array(edges.dst)
    shared = load_array(edges.shared)
    assert src is not None and dst is not None and shared is not None
    return ShardEdges(
        src=src,
        dst=dst,
        shared=shared,
        arcs_mass=load_array(edges.arcs_mass),
        entropy_mass=load_array(edges.entropy_mass),
    )


def concat_spillable(
    arrays: list[np.ndarray],
    spec: SpillSpec | None,
    stem: str,
) -> np.ndarray:
    """Concatenate shard arrays, memmap-backed when over the spill budget.

    Preallocate-and-copy in shard order is byte-for-byte what
    ``np.concatenate`` produces (same dtype promotion rules are never
    invoked — all shards share a dtype by construction), so the merged
    array is bit-identical whether it lands on the heap or in an
    ``open_memmap`` file.  Sequential per-shard copies also mean at most
    one source shard is resident at a time when the inputs are memmaps.
    """
    if not arrays:
        return np.zeros(0, dtype=np.int64)
    total = sum(a.shape[0] for a in arrays)
    nbytes = sum(a.nbytes for a in arrays)
    if spec is not None and nbytes > spec.threshold_bytes:
        out: np.ndarray = open_memmap(
            os.path.join(spec.directory, f"{stem}.npy"),
            mode="w+",
            dtype=arrays[0].dtype,
            shape=(total,),
        )
    else:
        out = np.empty(total, dtype=arrays[0].dtype)
    cursor = 0
    for chunk in arrays:
        out[cursor : cursor + chunk.shape[0]] = chunk
        cursor += chunk.shape[0]
    return out
