"""The blocking graph G_B (Section 2.2).

Nodes are profiles; an edge connects two profiles iff they co-occur in at
least one block.  The graph is materialized *block-centrically*: one pass
over the block collection accumulates, per edge, everything any weighting
scheme needs — shared-block count, ARCS mass, and the summed entropy of the
shared blocking keys — in O(||B||) time, never O(|V|^2).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from functools import cached_property

from repro.blocking.base import BlockCollection

Edge = tuple[int, int]

#: Maps a blocking key to the entropy h(b) of its attribute cluster.
KeyEntropyFn = Callable[[str], float]


@dataclass(slots=True)
class EdgeStats:
    """Accumulated per-edge statistics.

    Attributes
    ----------
    shared_blocks:
        ``|B_ij|`` — how many blocks contain both endpoints (the CBS weight).
    arcs_mass:
        ``sum over b in B_ij of 1 / ||b||`` (the ARCS weight).
    entropy_mass:
        Summed entropy of the shared blocking keys; divided by
        ``shared_blocks`` this is the paper's ``h(B_uv)``.
    """

    shared_blocks: int = 0
    arcs_mass: float = 0.0
    entropy_mass: float = 0.0

    @property
    def mean_entropy(self) -> float:
        """h(B_uv): mean entropy over the shared blocking keys."""
        if self.shared_blocks == 0:
            return 0.0
        return self.entropy_mass / self.shared_blocks


class BlockingGraph:
    """Weighted co-occurrence graph of a block collection.

    Parameters
    ----------
    collection:
        The block collection to derive the graph from.
    key_entropy:
        Optional map from blocking key to the aggregate entropy of the
        attribute cluster it belongs to; defaults to 1.0 for every key
        (entropy-agnostic mode — plain Token Blocking, or the ``chi``
        ablation of Figure 8).
    """

    def __init__(
        self,
        collection: BlockCollection,
        key_entropy: KeyEntropyFn | None = None,
    ) -> None:
        self.num_blocks = len(collection)
        self._edges: dict[Edge, EdgeStats] = {}
        # |B_i| per node: how many blocks contain each profile.
        self.node_blocks: dict[int, int] = {
            profile: len(positions)
            for profile, positions in collection.profile_block_sets.items()
        }

        for block in collection:
            entropy = key_entropy(block.key) if key_entropy is not None else 1.0
            comparisons = block.num_comparisons
            if comparisons == 0:
                continue
            arcs_share = 1.0 / comparisons
            for pair in block.iter_pairs():
                stats = self._edges.get(pair)
                if stats is None:
                    stats = EdgeStats()
                    self._edges[pair] = stats
                stats.shared_blocks += 1
                stats.arcs_mass += arcs_share
                stats.entropy_mass += entropy

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edges

    @property
    def num_nodes(self) -> int:
        """Profiles appearing in at least one block."""
        return len(self.node_blocks)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @cached_property
    def _sorted_edges(self) -> list[Edge]:
        """Edges in lexicographic order, sorted once and reused."""
        return sorted(self._edges)

    def edges(self) -> Iterator[tuple[Edge, EdgeStats]]:
        """Iterate over ``((i, j), stats)`` in deterministic order."""
        for edge in self._sorted_edges:
            yield edge, self._edges[edge]

    def stats(self, edge: Edge) -> EdgeStats:
        """Statistics of *edge* (KeyError if the edge does not exist)."""
        return self._edges[edge]

    @cached_property
    def degrees(self) -> dict[int, int]:
        """|v_i|: number of distinct neighbors of each node."""
        out: dict[int, int] = {}
        for i, j in self._edges:
            out[i] = out.get(i, 0) + 1
            out[j] = out.get(j, 0) + 1
        return out

    @cached_property
    def adjacency(self) -> dict[int, list[Edge]]:
        """Node -> list of incident edges (for node-centric pruning).

        Cached: node-centric pruning schemes may consult it repeatedly
        without rebuilding the full dict per ``prune()`` call.
        """
        out: dict[int, list[Edge]] = {}
        for edge in self._edges:
            i, j = edge
            out.setdefault(i, []).append(edge)
            out.setdefault(j, []).append(edge)
        return out

    def __repr__(self) -> str:
        return (
            f"BlockingGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"blocks={self.num_blocks})"
        )
