"""Entity-range sharding of the CSR entity index.

The parallel meta-blocking backend (``repro.graph.parallel``) splits the
blocking-graph construction across worker processes by partitioning the
*entity-id space* into contiguous ranges.  Every comparison ``(src, dst)``
with ``src < dst`` is owned by exactly one shard — the range containing
``src`` — so each co-occurrence edge, with *all* of its block occurrences,
lands in a single shard.  That single-owner property is what makes the
sharded pipeline bit-identical to the serial vectorized backend: per-edge
float accumulations (ARCS mass, entropy mass) happen in one shard, in the
same block-major order the serial path uses, and the merged edge arrays
are the serial arrays, bit for bit (see DESIGN.md "Parallel execution &
sharding").

The module is deliberately process-friendly: :class:`ShardableIndex` is a
slim picklable view of an :class:`~repro.graph.entity_index.EntityIndex`
(arrays only, no Python block objects or key strings), and every function
here is pure, so workers can run them on a shipped copy of the arrays.

Shard enumeration order
-----------------------
:func:`enumerate_shard_pairs` yields the shard's comparisons in the serial
enumeration order restricted to the shard: block-major, and within each
block the ``itertools.combinations`` order (dirty) or row-major left x
right order (clean-clean).  Restriction preserves relative order, and an
edge's occurrences all share one shard, so the per-edge accumulation
order — and hence every float rounding — matches
:meth:`EntityIndex.enumerate_pairs` exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.graph.entity_index import pack_pairs, unpack_pairs

__all__ = [
    "ShardEdges",
    "ShardableIndex",
    "accumulate_arcs_mass",
    "accumulate_entropy_mass",
    "dedupe_pair_arrays",
    "enumerate_shard_pairs",
    "pair_counts_by_entity",
    "plan_shards",
    "shard_edge_arrays",
]


#: Source of :attr:`ShardableIndex.identity_token` values (process-wide).
_IDENTITY_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class ShardableIndex:
    """Picklable array-only view of an entity index.

    Carries exactly what pair enumeration needs — the CSR block layout —
    plus ``num_ids``, the size of the dense entity-id space the shard
    ranges partition.  Blocking keys (strings) stay behind in the parent
    process; per-block entropies travel separately as a float array.
    """

    is_clean_clean: bool
    block_ptr: np.ndarray
    block_split: np.ndarray
    entity_ids: np.ndarray
    block_comparisons: np.ndarray
    num_ids: int

    @classmethod
    def from_entity_index(cls, index) -> "ShardableIndex":
        return cls(
            is_clean_clean=index.is_clean_clean,
            block_ptr=index.block_ptr,
            block_split=index.block_split,
            entity_ids=index.entity_ids,
            block_comparisons=index.block_comparisons,
            num_ids=int(index.node_block_counts.size),
        )

    @property
    def num_blocks(self) -> int:
        return int(self.block_ptr.size - 1)

    # The flat-axis derivations below are O(total block slots) to build;
    # caching them keeps chunked runs (hundreds of shards against one
    # index) at one pass total instead of one pass per shard.  They are
    # plain ``cached_property`` entries, so a pickled index (shipped once
    # per worker through the pool initializer) carries whatever was
    # already materialized and lazily rebuilds the rest.

    @cached_property
    def block_of_flat(self) -> np.ndarray:
        """Block position of every slot of the flat ``entity_ids`` array."""
        return np.repeat(
            np.arange(self.num_blocks, dtype=np.int64),
            np.diff(self.block_ptr).astype(np.int64),
        )

    @cached_property
    def entity_ids64(self) -> np.ndarray:
        """``entity_ids`` widened once to int64 (pair packing needs it)."""
        return self.entity_ids.astype(np.int64)

    @cached_property
    def identity_token(self) -> int:
        """Process-unique token assigned on first use.

        The arrays are immutable by convention, so object identity is a
        sound cache key — the persistent pool's publication cache uses
        this token to recognize "same index as last run" without hashing
        gigabytes of array content.  Monotonic, never reused within a
        process, stable across pickling of an already-tokenized index
        (the cached value rides along in ``__dict__``).
        """
        return next(_IDENTITY_TOKENS)


@dataclass(frozen=True)
class ShardEdges:
    """One shard's deduplicated edges, sorted lexicographically.

    ``arcs_mass``/``entropy_mass`` are ``None`` unless the shard was built
    with them (they are only accumulated when the weighting needs them,
    mirroring the lazy properties of ``ArrayBlockingGraph``).
    """

    src: np.ndarray
    dst: np.ndarray
    shared: np.ndarray
    arcs_mass: np.ndarray | None = None
    entropy_mass: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


def _as_shardable(index) -> ShardableIndex:
    if isinstance(index, ShardableIndex):
        return index
    return ShardableIndex.from_entity_index(index)


def pair_counts_by_entity(index) -> np.ndarray:
    """``int64[num_ids]`` — comparisons owned by each entity id as ``src``.

    Clean-clean: a left member of block *b* owns one pair per right member
    of *b*.  Dirty: the member at local position *p* of an *n*-member block
    owns ``n - 1 - p`` pairs (every later member).  The shard planner
    balances shards on these counts without enumerating any pair.
    """
    index = _as_shardable(index)
    n = index.num_ids
    if n == 0 or index.entity_ids.size == 0:
        return np.zeros(n, dtype=np.int64)
    block_of = index.block_of_flat
    ids = index.entity_ids64
    position = np.arange(ids.size, dtype=np.int64)
    ends = index.block_ptr[1:].astype(np.int64)
    if index.is_clean_clean:
        split = index.block_split.astype(np.int64)
        num_right = ends - split
        owned = np.where(position < split[block_of], num_right[block_of], 0)
    else:
        owned = ends[block_of] - position - 1
    # Weighted bincount goes through float64; exact for any count < 2**53.
    return np.bincount(
        ids, weights=owned.astype(np.float64), minlength=n
    ).astype(np.int64)


def plan_shards(
    index,
    *,
    num_shards: int | None = None,
    max_pairs: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous entity-id ranges ``[(lo, hi), ...]`` covering the id space.

    Boundaries are placed on the cumulative per-entity pair counts.
    *num_shards* asks for that many ranges of roughly equal comparison
    counts (fewer when the id space is smaller or several boundaries
    coincide); *max_pairs* caps the comparisons per shard instead — the
    chunked low-memory mode, where peak per-shard array bytes scale with
    *max_pairs*.  The cap is strict except for single-entity shards
    (ranges never split one id, so an entity owning more than *max_pairs*
    comparisons becomes a shard of its own).  With both given, the cap is
    tightened to ``total / num_shards`` when that is smaller, so at least
    *num_shards* shards come out.  The plan is deterministic for a given
    index and parameters.
    """
    index = _as_shardable(index)
    n = index.num_ids
    if n == 0:
        return []
    counts = pair_counts_by_entity(index)
    total = int(counts.sum())
    shards = 1 if num_shards is None else num_shards
    if shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if max_pairs is not None and max_pairs < 1:
        raise ValueError(f"max_pairs must be positive, got {max_pairs}")
    cumulative = np.cumsum(counts)

    if max_pairs is not None:
        # Greedy strict-cap cuts: each shard is the longest id range whose
        # owned comparisons fit the (possibly num_shards-tightened) cap.
        cap = max_pairs
        if shards > 1 and total > 0:
            cap = min(cap, max(1, -(-total // shards)))
        boundaries = [0]
        while boundaries[-1] < n:
            lo = boundaries[-1]
            base = int(cumulative[lo - 1]) if lo else 0
            hi = int(np.searchsorted(cumulative, base + cap, side="right"))
            boundaries.append(min(max(hi, lo + 1), n))
        return list(zip(boundaries[:-1], boundaries[1:]))

    shards = min(shards, n)
    if shards <= 1:
        return [(0, n)]
    targets = np.arange(1, shards, dtype=np.float64) * (total / shards)
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    boundaries = np.unique(np.concatenate(([0], cuts, [n])))
    return [
        (int(lo), int(hi))
        for lo, hi in zip(boundaries[:-1], boundaries[1:])
    ]


def enumerate_shard_pairs(
    index, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The shard's comparisons as ``(src, dst, block)`` int64 arrays.

    Exactly the pairs of :meth:`EntityIndex.enumerate_pairs` whose ``src``
    falls in ``[lo, hi)``, in the same relative order.  Work and memory are
    proportional to the shard's own pairs (plus one O(flat) range mask),
    never to the full comparison set.
    """
    index = _as_shardable(index)
    empty = np.zeros(0, dtype=np.int64)
    if index.entity_ids.size == 0 or lo >= hi:
        return empty, empty.copy(), empty.copy()
    ids64 = index.entity_ids64
    in_range = (ids64 >= lo) & (ids64 < hi)
    block_of = index.block_of_flat
    ends = index.block_ptr[1:].astype(np.int64)
    if index.is_clean_clean:
        split = index.block_split.astype(np.int64)
        position = np.arange(ids64.size, dtype=np.int64)
        selected = np.flatnonzero(in_range & (position < split[block_of]))
        selected_block = block_of[selected]
        per_selected = ends[selected_block] - split[selected_block]
    else:
        selected = np.flatnonzero(in_range)
        selected_block = block_of[selected]
        per_selected = ends[selected_block] - selected - 1
    total = int(per_selected.sum())
    if total == 0:
        return empty, empty.copy(), empty.copy()
    offsets = np.zeros(selected.size + 1, dtype=np.int64)
    np.cumsum(per_selected, out=offsets[1:])
    owner = np.repeat(np.arange(selected.size, dtype=np.int64), per_selected)
    rank = np.arange(total, dtype=np.int64) - offsets[owner]
    src = ids64[selected[owner]]
    if index.is_clean_clean:
        dst = ids64[split[selected_block[owner]] + rank]
    else:
        dst = ids64[selected[owner] + 1 + rank]
    return src, dst, selected_block[owner]


def dedupe_pair_arrays(
    src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort + deduplicate parallel pair arrays into edge arrays.

    Returns ``(edge_src, edge_dst, shared, inverse)`` where the edges are
    sorted lexicographically, ``shared`` counts each edge's occurrences,
    and ``inverse`` maps every input pair to its edge position.  One stable
    sort on the packed key; ``inverse`` lets weighted ``bincount`` passes
    accumulate per-edge float masses in the ORIGINAL (block-major) pair
    order — bincount is a sequential C loop, so the summation order (and
    hence every rounding) matches the reference path's ``stats.x += ...``
    bit for bit.  Pairwise-summing reductions (reduceat, np.sum) would
    drift by an ulp and flip tie-breaks.
    """
    packed = pack_pairs(src, dst)
    order = np.argsort(packed, kind="stable")
    packed_sorted = packed[order]
    boundary = np.concatenate(([True], packed_sorted[1:] != packed_sorted[:-1]))
    starts = np.flatnonzero(boundary)
    edge_src, edge_dst = unpack_pairs(packed_sorted[starts])
    inverse = np.empty(packed.size, dtype=np.int64)
    inverse[order] = np.cumsum(boundary) - 1
    shared = np.bincount(inverse, minlength=starts.size)
    return edge_src, edge_dst, shared, inverse


def accumulate_arcs_mass(
    block_comparisons: np.ndarray,
    num_blocks: int,
    inverse: np.ndarray,
    pair_block: np.ndarray,
    num_edges: int,
) -> np.ndarray:
    """Per-edge ``sum over shared blocks of 1/||b||``.

    The single implementation behind both the serial graph's lazy
    ``arcs_mass`` and the per-shard workers — the bincount accumulation
    order (original pair order via *inverse*) is part of the bit-identity
    contract and must not fork.
    """
    arcs_share = np.zeros(num_blocks, dtype=np.float64)
    np.divide(
        1.0, block_comparisons, out=arcs_share, where=block_comparisons > 0
    )
    return np.bincount(
        inverse, weights=arcs_share[pair_block], minlength=num_edges
    )


def accumulate_entropy_mass(
    block_entropies: np.ndarray,
    inverse: np.ndarray,
    pair_block: np.ndarray,
    num_edges: int,
) -> np.ndarray:
    """Per-edge summed entropy of the shared blocking keys (see above)."""
    return np.bincount(
        inverse, weights=block_entropies[pair_block], minlength=num_edges
    )


def shard_edge_arrays(
    index,
    lo: int,
    hi: int,
    *,
    block_entropies: np.ndarray | None = None,
    need_arcs: bool = False,
) -> ShardEdges:
    """Build one shard's deduplicated, mass-accumulated edge arrays.

    The workhorse of both the worker processes and the in-process chunked
    mode.  ``arcs_mass`` is accumulated only when *need_arcs* is set and
    ``entropy_mass`` only when *block_entropies* is given, mirroring the
    lazy properties of ``ArrayBlockingGraph``.
    """
    index = _as_shardable(index)
    src, dst, pair_block = enumerate_shard_pairs(index, lo, hi)
    if src.size == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        return ShardEdges(
            src=empty_i,
            dst=empty_i.copy(),
            shared=empty_i.copy(),
            arcs_mass=empty_f if need_arcs else None,
            entropy_mass=empty_f.copy()
            if block_entropies is not None
            else None,
        )
    edge_src, edge_dst, shared, inverse = dedupe_pair_arrays(src, dst)
    arcs_mass = None
    if need_arcs:
        arcs_mass = accumulate_arcs_mass(
            index.block_comparisons,
            index.num_blocks,
            inverse,
            pair_block,
            edge_src.size,
        )
    entropy_mass = None
    if block_entropies is not None:
        entropy_mass = accumulate_entropy_mass(
            block_entropies, inverse, pair_block, edge_src.size
        )
    return ShardEdges(
        src=edge_src,
        dst=edge_dst,
        shared=shared,
        arcs_mass=arcs_mass,
        entropy_mass=entropy_mass,
    )
