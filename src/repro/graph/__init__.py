"""Graph-based meta-blocking: blocking graph, weighting, pruning."""

from repro.graph.blocking_graph import BlockingGraph, EdgeStats
from repro.graph.contingency import ContingencyTable, chi_squared
from repro.graph.entity_index import EntityIndex
from repro.graph.metablocking import (
    MetaBlocker,
    blocks_from_edges,
    reference_metablocking,
)
from repro.graph.parallel import parallel_metablocking
from repro.graph.pool import (
    AttachedArrays,
    PersistentPool,
    SharedArrayBundle,
    get_pool,
    shutdown_pool,
)
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.sharding import ShardableIndex, ShardEdges, plan_shards
from repro.graph.spill import SpillJob, SpillSpec
from repro.graph.vectorized import ArrayBlockingGraph, vectorized_metablocking
from repro.graph.weights import WeightingScheme, compute_weights

__all__ = [
    "AttachedArrays",
    "PersistentPool",
    "SharedArrayBundle",
    "SpillJob",
    "SpillSpec",
    "get_pool",
    "shutdown_pool",
    "BlockingGraph",
    "EdgeStats",
    "EntityIndex",
    "ArrayBlockingGraph",
    "ShardableIndex",
    "ShardEdges",
    "plan_shards",
    "reference_metablocking",
    "vectorized_metablocking",
    "parallel_metablocking",
    "ContingencyTable",
    "chi_squared",
    "WeightingScheme",
    "compute_weights",
    "PruningScheme",
    "WeightEdgePruning",
    "CardinalityEdgePruning",
    "WeightNodePruning",
    "CardinalityNodePruning",
    "BlastPruning",
    "MetaBlocker",
    "blocks_from_edges",
]
