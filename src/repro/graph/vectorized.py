"""Array-backed meta-blocking: the ``vectorized`` backend.

The reference implementation (``repro.graph.blocking_graph`` +
``repro.graph.weights`` + ``repro.graph.pruning``) materializes a
``dict[(i, j), EdgeStats]`` with a Python-level inner loop per comparison.
This module re-expresses the same pipeline over flat numpy arrays:

1. :class:`ArrayBlockingGraph` lowers a block collection through its CSR
   :class:`~repro.graph.entity_index.EntityIndex`, enumerates every
   comparison into parallel arrays, and deduplicates them with one stable
   sort — yielding per-edge ``src``/``dst``/``shared``/``arcs_mass``/
   ``entropy_mass`` arrays in the exact lexicographic order of
   ``BlockingGraph.edges()``;
2. :meth:`ArrayBlockingGraph.weights` evaluates all six weighting schemes
   (including the ``entropy_boost`` ablation and CHI_H's one-sided
   zeroing) with elementwise numpy arithmetic that mirrors the reference
   operation order, so weights agree bit-for-bit;
3. :func:`prune_mask` vectorizes the five built-in pruning schemes
   (BLAST max-based WNP, WEP, CEP, WNP, CNP) via dense per-node
   scatter/gather and segmented rankings.

:func:`vectorized_metablocking` is the backend entry point registered
under ``backend="vectorized"``; inputs it cannot vectorize (custom
weighting callables, user-defined or subclassed pruning schemes) are
delegated to :func:`repro.graph.metablocking.reference_metablocking`, so
the result is equivalent for *every* input — the reference path stays the
oracle, the arrays are just faster.
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np

from repro.blocking.base import BlockCollection
from repro.graph.blocking_graph import Edge, KeyEntropyFn
from repro.graph.entity_index import EntityIndex
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.sharding import (
    accumulate_arcs_mass,
    accumulate_entropy_mass,
    dedupe_pair_arrays,
)
from repro.graph.weights import WeightingScheme

__all__ = [
    "ArrayBlockingGraph",
    "compute_edge_weights",
    "prune_mask",
    "supports_pruning",
    "vectorized_metablocking",
]

#: Relative tolerance of threshold comparisons — must match
#: :func:`repro.graph.pruning._clears`.
_CLEARS_TOL = 1e-9


class ArrayBlockingGraph:
    """The blocking graph as parallel numpy arrays.

    Edge ``e`` is ``(src[e], dst[e])`` with ``src < dst``; edges are sorted
    lexicographically, matching the deterministic iteration order of the
    reference :class:`~repro.graph.blocking_graph.BlockingGraph`.  Per-node
    quantities (``node_blocks``, ``degrees``) are dense arrays indexed by
    profile id.
    """

    def __init__(
        self,
        collection: BlockCollection,
        key_entropy: KeyEntropyFn | None = None,
    ) -> None:
        index: EntityIndex = collection.entity_index
        self.is_clean_clean = collection.is_clean_clean
        self.num_blocks = index.num_blocks
        self.node_blocks = index.node_block_counts
        self.num_nodes = index.num_indexed_profiles

        src, dst, pair_block = index.enumerate_pairs()
        self._key_entropy = key_entropy
        self._index = index

        if src.size == 0:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            self.src, self.dst, self.shared = empty_i, empty_i, empty_i
            self._arcs_mass = empty_f
            self._entropy_mass = empty_f
            self._pair_block = empty_i
            self._inverse = empty_i
            return

        # One stable sort + inverse mapping (see dedupe_pair_arrays for the
        # bit-level accumulation-order contract).
        self.src, self.dst, self.shared, inverse = dedupe_pair_arrays(src, dst)
        # The float masses are accumulated lazily: CBS/ECBS/JS/EJS without
        # entropy_boost never read them, and the two weighted bincount
        # passes are a measurable slice of the hot path.
        self._arcs_mass: np.ndarray | None = None
        self._entropy_mass: np.ndarray | None = None
        self._pair_block = pair_block
        self._inverse = inverse

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def arcs_mass(self) -> np.ndarray:
        """Per-edge ``sum over shared blocks of 1/||b||`` (lazy)."""
        if self._arcs_mass is None:
            self._arcs_mass = accumulate_arcs_mass(
                self._index.block_comparisons,
                self.num_blocks,
                self._inverse,
                self._pair_block,
                self.num_edges,
            )
        return self._arcs_mass

    @property
    def entropy_mass(self) -> np.ndarray:
        """Per-edge summed entropy of the shared blocking keys (lazy)."""
        if self._entropy_mass is None:
            self._entropy_mass = accumulate_entropy_mass(
                self._index.block_entropies(self._key_entropy),
                self._inverse,
                self._pair_block,
                self.num_edges,
            )
        return self._entropy_mass

    @cached_property
    def degrees(self) -> np.ndarray:
        """|v_i| per profile id (dense), cached after first use."""
        return edge_degrees(self.src, self.dst, self.node_blocks.size)

    def edge_list(self) -> list[Edge]:
        """Edges as Python ``(i, j)`` tuples, lexicographically sorted."""
        return list(zip(self.src.tolist(), self.dst.tolist()))

    def weights(
        self,
        scheme: WeightingScheme = WeightingScheme.CHI_H,
        entropy_boost: bool = False,
    ) -> np.ndarray:
        """Per-edge weights under *scheme*, aligned with the edge arrays."""
        scheme = WeightingScheme(scheme)
        if self.shared.size == 0:
            return np.zeros(0, dtype=np.float64)
        # The lazy mass/degree properties are only touched when the scheme
        # actually reads them — CBS/ECBS/JS stay bincount-free.
        needs_entropy = scheme is WeightingScheme.CHI_H or entropy_boost
        needs_degrees = scheme is WeightingScheme.EJS
        degrees = self.degrees if needs_degrees else None
        return compute_edge_weights(
            scheme,
            shared=self.shared,
            blocks_i=self.node_blocks[self.src],
            blocks_j=self.node_blocks[self.dst],
            num_blocks=self.num_blocks,
            arcs_mass=self.arcs_mass
            if scheme is WeightingScheme.ARCS
            else None,
            entropy_mass=self.entropy_mass if needs_entropy else None,
            degrees_src=degrees[self.src] if needs_degrees else None,
            degrees_dst=degrees[self.dst] if needs_degrees else None,
            num_edges=self.num_edges if needs_degrees else None,
            entropy_boost=entropy_boost,
        )


def edge_degrees(src: np.ndarray, dst: np.ndarray, num_ids: int) -> np.ndarray:
    """|v_i| per profile id (dense) from deduplicated edge endpoints.

    Shared by the serial graph's :attr:`ArrayBlockingGraph.degrees` and
    the parallel backend's post-merge EJS path — one definition, so the
    backends cannot drift.
    """
    return np.bincount(src, minlength=num_ids) + np.bincount(
        dst, minlength=num_ids
    )


def compute_edge_weights(
    scheme: WeightingScheme,
    *,
    shared: np.ndarray,
    blocks_i: np.ndarray,
    blocks_j: np.ndarray,
    num_blocks: int,
    arcs_mass: np.ndarray | None = None,
    entropy_mass: np.ndarray | None = None,
    degrees_src: np.ndarray | None = None,
    degrees_dst: np.ndarray | None = None,
    num_edges: int | None = None,
    entropy_boost: bool = False,
) -> np.ndarray:
    """Edge weights under *scheme* from raw per-edge arrays.

    The single weighting kernel behind both :meth:`ArrayBlockingGraph.weights`
    and the per-shard workers of the ``parallel`` backend.  Every operation
    is elementwise (the EJS degree statistics arrive pre-gathered per edge),
    so evaluating a shard's slice produces bit-identical values to
    evaluating the same rows inside the full arrays — the property the
    sharded backend's equivalence contract rests on.
    """
    scheme = WeightingScheme(scheme)
    if shared.size == 0:
        return np.zeros(0, dtype=np.float64)
    total = num_blocks

    if scheme is WeightingScheme.CBS:
        weights = shared.astype(np.float64)
    elif scheme is WeightingScheme.ECBS:
        weights = (
            shared
            * _safe_log(total, blocks_i)
            * _safe_log(total, blocks_j)
        )
    elif scheme is WeightingScheme.JS:
        weights = shared / (blocks_i + blocks_j - shared)
    elif scheme is WeightingScheme.EJS:
        if degrees_src is None or degrees_dst is None or num_edges is None:
            raise ValueError("EJS weighting needs global degree statistics")
        js = shared / (blocks_i + blocks_j - shared)
        weights = (
            js
            * _safe_log(num_edges, degrees_src)
            * _safe_log(num_edges, degrees_dst)
        )
    elif scheme is WeightingScheme.ARCS:
        if arcs_mass is None:
            raise ValueError("ARCS weighting needs the per-edge ARCS mass")
        weights = arcs_mass.copy()
    else:  # CHI_H — one-sided chi-squared x mean entropy.
        if entropy_mass is None:
            raise ValueError("CHI_H weighting needs the per-edge entropy mass")
        expected_shared = blocks_i * blocks_j / total
        chi = _chi_squared(shared, blocks_i, blocks_j, total)
        weights = np.where(
            shared <= expected_shared,
            0.0,
            chi * (entropy_mass / shared),
        )

    if entropy_boost and scheme is not WeightingScheme.CHI_H:
        if entropy_mass is None:
            raise ValueError("entropy_boost needs the per-edge entropy mass")
        weights = weights * (entropy_mass / shared)
    return weights


def _safe_log(numerator: int, denominators: np.ndarray) -> np.ndarray:
    """``log10(numerator / d)`` clamped at zero, per denominator.

    Evaluated through ``math.log10`` over the (few) distinct denominators
    rather than ``np.log10``: numpy's SIMD log differs from C libm by an
    ulp on some inputs, which would break the bit-level agreement with
    :func:`repro.graph.weights._safe_log`.
    """
    values, inverse = np.unique(denominators, return_inverse=True)
    logs = np.empty(values.size, dtype=np.float64)
    for position, value in enumerate(values.tolist()):
        ratio = numerator / value
        logs[position] = math.log10(ratio) if ratio > 1.0 else 0.0
    return logs[inverse]


def _chi_squared(
    shared: np.ndarray,
    blocks_i: np.ndarray,
    blocks_j: np.ndarray,
    total: int,
) -> np.ndarray:
    """Pearson's statistic, cell by cell in the reference accumulation order."""
    observed = (
        shared,
        blocks_i - shared,
        blocks_j - shared,
        total - blocks_i - blocks_j + shared,
    )
    row = (blocks_i, blocks_i, total - blocks_i, total - blocks_i)
    col = (blocks_j, total - blocks_j, blocks_j, total - blocks_j)
    statistic = np.zeros(shared.shape, dtype=np.float64)
    for obs, r, c in zip(observed, row, col):
        expected = r * c / total
        diff = obs - expected
        term = np.zeros_like(statistic)
        np.divide(diff * diff, expected, out=term, where=expected > 0.0)
        statistic = statistic + term
    return statistic


# --- vectorized pruning -----------------------------------------------------


def _clears(weights: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`repro.graph.pruning._clears`."""
    return weights >= thresholds - _CLEARS_TOL * np.abs(thresholds)


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float sum (matches Python's ``sum``, not pairwise)."""
    return float(np.cumsum(values)[-1]) if values.size else 0.0


def _node_count(graph: ArrayBlockingGraph) -> int:
    return int(graph.node_blocks.size)


def _blast_mask(
    scheme: BlastPruning, graph: ArrayBlockingGraph, weights: np.ndarray
) -> np.ndarray:
    maxima = np.zeros(_node_count(graph), dtype=np.float64)
    np.maximum.at(maxima, graph.src, weights)
    np.maximum.at(maxima, graph.dst, weights)
    thresholds = (
        maxima[graph.src] / scheme.c + maxima[graph.dst] / scheme.c
    ) / scheme.d
    return (weights > 0.0) & _clears(weights, thresholds)


def _wep_mask(
    scheme: WeightEdgePruning, graph: ArrayBlockingGraph, weights: np.ndarray
) -> np.ndarray:
    theta = (
        scheme.threshold
        if scheme.threshold is not None
        else _sequential_sum(weights) / weights.size
    )
    return _clears(weights, np.float64(theta))


def _wnp_mask(
    scheme: WeightNodePruning, graph: ArrayBlockingGraph, weights: np.ndarray
) -> np.ndarray:
    # The reference accumulates src then dst per edge, in edge order —
    # interleaving plus bincount's sequential loop reproduces that float
    # summation order exactly.
    nodes = np.empty(2 * weights.size, dtype=np.int64)
    nodes[0::2] = graph.src
    nodes[1::2] = graph.dst
    values = np.repeat(weights, 2)
    node_count = _node_count(graph)
    sums = np.bincount(nodes, weights=values, minlength=node_count)
    counts = np.bincount(nodes, minlength=node_count)
    thresholds = np.zeros_like(sums)
    np.divide(sums, counts, out=thresholds, where=counts > 0)
    above_i = _clears(weights, thresholds[graph.src])
    above_j = _clears(weights, thresholds[graph.dst])
    return (above_i & above_j) if scheme.reciprocal else (above_i | above_j)


def _cep_mask(
    scheme: CardinalityEdgePruning,
    graph: ArrayBlockingGraph,
    weights: np.ndarray,
) -> np.ndarray:
    k = scheme.k
    if k is None:
        k = max(1, int(graph.node_blocks.sum()) // 2)
    # Rank by weight descending, then edge ascending (lexsort: last key
    # is primary) — the reference's deterministic tie-break.
    order = np.lexsort((graph.dst, graph.src, -weights))
    mask = np.zeros(weights.size, dtype=bool)
    mask[order[:k]] = True
    return mask


def _cnp_mask(
    scheme: CardinalityNodePruning,
    graph: ArrayBlockingGraph,
    weights: np.ndarray,
) -> np.ndarray:
    k = scheme.k
    if k is None:
        total_assignments = int(graph.node_blocks.sum())
        k = max(1, math.ceil(total_assignments / max(1, graph.num_nodes)))

    num_edges = weights.size
    # Two incidences per edge: positions [0, E) are the src side.
    edge_idx = np.concatenate(
        (np.arange(num_edges, dtype=np.int64), np.arange(num_edges, dtype=np.int64))
    )
    nodes = np.concatenate((graph.src, graph.dst))
    order = np.lexsort(
        (graph.dst[edge_idx], graph.src[edge_idx], -weights[edge_idx], nodes)
    )
    sorted_nodes = nodes[order]
    seg_starts = np.flatnonzero(
        np.concatenate(([True], sorted_nodes[1:] != sorted_nodes[:-1]))
    )
    seg_lengths = np.diff(np.append(seg_starts, sorted_nodes.size))
    rank = np.arange(sorted_nodes.size, dtype=np.int64) - np.repeat(
        seg_starts, seg_lengths
    )
    top = order[rank < k]

    in_top_i = np.zeros(num_edges, dtype=bool)
    in_top_j = np.zeros(num_edges, dtype=bool)
    in_top_i[top[top < num_edges]] = True
    in_top_j[top[top >= num_edges] - num_edges] = True
    return (in_top_i & in_top_j) if scheme.reciprocal else (in_top_i | in_top_j)


_PRUNE_DISPATCH = {
    BlastPruning: _blast_mask,
    WeightEdgePruning: _wep_mask,
    WeightNodePruning: _wnp_mask,
    CardinalityEdgePruning: _cep_mask,
    CardinalityNodePruning: _cnp_mask,
}


def supports_pruning(scheme: PruningScheme) -> bool:
    """Whether *scheme* has a vectorized implementation.

    Dispatch is on the exact type: subclasses may override ``prune`` and
    must go through their own (reference) implementation.
    """
    return type(scheme) in _PRUNE_DISPATCH


def prune_mask(
    scheme: PruningScheme, graph: ArrayBlockingGraph, weights: np.ndarray
) -> np.ndarray:
    """Boolean retain-mask over the graph's edges under *scheme*.

    Raises
    ------
    TypeError
        When *scheme* has no vectorized implementation (see
        :func:`supports_pruning`).
    """
    handler = _PRUNE_DISPATCH.get(type(scheme))
    if handler is None:
        raise TypeError(
            f"no vectorized pruning for {type(scheme).__name__}; "
            "use the python backend (or supports_pruning to pre-check)"
        )
    if weights.size == 0:
        return np.zeros(0, dtype=bool)
    return handler(scheme, graph, weights)


def vectorized_metablocking(
    collection: BlockCollection,
    *,
    weighting=WeightingScheme.CHI_H,
    pruning: PruningScheme,
    entropy_boost: bool = False,
    key_entropy: KeyEntropyFn | None = None,
) -> list[Edge]:
    """The ``vectorized`` meta-blocking backend: sorted retained edges.

    Result-equivalent to
    :func:`repro.graph.metablocking.reference_metablocking` for every
    input; combinations without a vectorized implementation (custom
    weighting callables, user pruning schemes) are delegated to it.
    """
    if isinstance(weighting, str):
        weighting = WeightingScheme(weighting)
    if not isinstance(weighting, WeightingScheme) or not supports_pruning(
        pruning
    ):
        from repro.graph.metablocking import reference_metablocking

        return reference_metablocking(
            collection,
            weighting=weighting,
            pruning=pruning,
            entropy_boost=entropy_boost,
            key_entropy=key_entropy,
        )
    graph = ArrayBlockingGraph(collection, key_entropy=key_entropy)
    weights = graph.weights(weighting, entropy_boost=entropy_boost)
    mask = prune_mask(pruning, graph, weights)
    return list(
        zip(graph.src[mask].tolist(), graph.dst[mask].tolist())
    )
