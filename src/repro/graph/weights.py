"""Edge weighting schemes.

The five traditional schemes of graph-based meta-blocking [Papadakis et al.,
EDBT 2016] plus BLAST's chi-squared/entropy scheme (Section 3.3.1):

* ``CBS``  — Common Blocks Scheme: ``|B_ij|``.
* ``ECBS`` — Enhanced CBS: ``|B_ij| * log(|B|/|B_i|) * log(|B|/|B_j|)``.
* ``JS``   — Jaccard Scheme: ``|B_ij| / (|B_i| + |B_j| - |B_ij|)``.
* ``EJS``  — Enhanced JS: ``JS * log(|E|/|v_i|) * log(|E|/|v_j|)``.
* ``ARCS`` — Aggregate Reciprocal Comparisons: ``sum_b 1/||b||``.
* ``CHI_H`` — BLAST: ``chi2(u, v) * h(B_uv)``.

Each traditional scheme also has an entropy-boosted variant (``scheme *
h(B_uv)``) used by the ``wsh`` ablation of Figure 8, obtained by passing
``entropy_boost=True``.
"""

from __future__ import annotations

import math
from enum import Enum

from repro.graph.blocking_graph import BlockingGraph, Edge
from repro.graph.contingency import chi_squared


class WeightingScheme(str, Enum):
    """Available edge weighting schemes."""

    ARCS = "arcs"
    JS = "js"
    EJS = "ejs"
    CBS = "cbs"
    ECBS = "ecbs"
    CHI_H = "chi_h"

    @classmethod
    def traditional(cls) -> tuple["WeightingScheme", ...]:
        """The five schemes of [20], in the paper's listing order."""
        return (cls.ARCS, cls.JS, cls.EJS, cls.CBS, cls.ECBS)


def compute_weights(
    graph: BlockingGraph,
    scheme: WeightingScheme = WeightingScheme.CHI_H,
    entropy_boost: bool = False,
) -> dict[Edge, float]:
    """Weight every edge of *graph* under *scheme*.

    Parameters
    ----------
    graph:
        The blocking graph (must carry key entropies if ``CHI_H`` or
        ``entropy_boost`` is requested and entropies other than the neutral
        1.0 are desired).
    scheme:
        The weighting scheme.
    entropy_boost:
        Multiply traditional schemes by ``h(B_uv)`` — the ``wsh``
        configuration of Section 4.1.2.  Ignored for ``CHI_H``, which always
        includes the entropy factor.

    Returns
    -------
    dict
        ``(i, j) -> weight`` for every edge.
    """
    scheme = WeightingScheme(scheme)
    total_blocks = graph.num_blocks
    node_blocks = graph.node_blocks
    weights: dict[Edge, float] = {}

    if scheme in (WeightingScheme.EJS,):
        degrees = graph.degrees
        num_edges = graph.num_edges

    for edge, stats in graph.edges():
        i, j = edge
        shared = stats.shared_blocks
        if scheme is WeightingScheme.CBS:
            weight = float(shared)
        elif scheme is WeightingScheme.ECBS:
            weight = (
                shared
                * _safe_log(total_blocks / node_blocks[i])
                * _safe_log(total_blocks / node_blocks[j])
            )
        elif scheme is WeightingScheme.JS:
            weight = shared / (node_blocks[i] + node_blocks[j] - shared)
        elif scheme is WeightingScheme.EJS:
            js = shared / (node_blocks[i] + node_blocks[j] - shared)
            weight = (
                js
                * _safe_log(num_edges / degrees[i])
                * _safe_log(num_edges / degrees[j])
            )
        elif scheme is WeightingScheme.ARCS:
            weight = stats.arcs_mass
        else:  # CHI_H
            # One-sided association: the chi-squared statistic is large for
            # *any* deviation from independence, including profiles that
            # co-occur far LESS than expected (e.g. p1/p2 of Figure 1, who
            # share only the ambiguous "abram" block).  BLAST uses the
            # statistic to highlight highly associated pairs (Section
            # 3.3.1), so negatively associated edges weigh zero.
            expected_shared = node_blocks[i] * node_blocks[j] / total_blocks
            if shared <= expected_shared:
                weight = 0.0
            else:
                weight = chi_squared(
                    shared, node_blocks[i], node_blocks[j], total_blocks
                ) * stats.mean_entropy

        if entropy_boost and scheme is not WeightingScheme.CHI_H:
            weight *= stats.mean_entropy
        weights[edge] = weight
    return weights


def _safe_log(value: float) -> float:
    """log10 clamped at zero — guards nodes present in nearly every block."""
    if value <= 1.0:
        return 0.0
    return math.log10(value)
