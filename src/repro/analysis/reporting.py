"""Reporters: findings -> text for humans, JSON for machines.

The JSON document is versioned (``schema_version``) so CI consumers can
detect shape changes; ``tests/analysis`` pins the schema.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.engine import Finding
from repro.analysis.rules.base import LintRule

__all__ = ["JSON_SCHEMA_VERSION", "render_json", "render_text"]

#: Bump when the JSON document shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding, plus a tally."""
    lines = [finding.render() for finding in findings]
    count = len(findings)
    lines.append(
        "no contract violations found"
        if count == 0
        else f"found {count} contract violation{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[LintRule] | None = None,
) -> str:
    """The machine-readable report (stable key order, schema-versioned)."""
    by_code: dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(by_code.items())),
        },
        "rules": [
            {
                "code": rule.code,
                "name": rule.name,
                "rationale": rule.rationale,
            }
            for rule in (rules or [])
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
