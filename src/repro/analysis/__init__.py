"""repro-lint: AST-based static checks for the repo's determinism contracts.

Every guarantee the reproduction makes — serial/parallel/streaming backends
bit-identical to the python oracle, interned vs string-era block identity —
rests on a handful of coding contracts that runtime tests can only sample:
no unordered ``set`` iteration may flow into an ordered output, numpy
arrays on the CSR hot path must pin their dtypes explicitly, registered
components must match the registry protocols, and objects shipped to
worker processes must be picklable.  This package checks those contracts
*statically*, so a violation fails ``repro lint`` (and the CI
``lint-static`` job, and the pytest self-check) before it can flake on
another platform.

Usage::

    repro lint src/                  # or: python -m repro.analysis src/
    repro lint --format json src/    # machine-readable findings
    repro lint --list-rules          # rule codes + the invariant each encodes

Suppression::

    order = list(seen)  # repro-lint: disable=RL001  -- justification here

The engine (:class:`~repro.analysis.engine.LintEngine`) walks python
files, parses them once, and runs every registered rule — an
:class:`~repro.analysis.rules.base.LintRule` visitor — over the tree.
Rules are pluggable: subclass ``LintRule``, list it in
``repro.analysis.rules.default_rules`` (or pass your own rule set to the
engine).  See DESIGN.md "Static guarantees" for the rule catalogue.
"""

from __future__ import annotations

from repro.analysis.engine import Finding, LintEngine, lint_paths
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "LintEngine",
    "default_rules",
    "lint_paths",
    "main",
    "render_json",
    "render_text",
]


def main(argv: list[str] | None = None) -> int:
    """The ``repro lint`` / ``python -m repro.analysis`` entry point."""
    from repro.analysis.cli import run

    return run(argv)
