"""The lint engine: file walking, parsing, suppressions, rule dispatch.

One :class:`LintEngine` holds a rule set (``repro.analysis.rules``); it
parses each python file once and runs every rule's AST visitor over the
tree.  Findings are plain sortable records — ``(path, line, col, code,
message)`` — so reporters, tests, and the CI gate all consume the same
shape.

Suppressions follow the familiar ``noqa`` model, but must name the code
they silence (a blanket waiver would defeat the contract)::

    pairs = list(seen)   # repro-lint: disable=RL001  -- proven order-free
    # repro-lint: disable-next=RL002
    raw = np.array(rows)

``disable=RL001,RL005`` silences several codes on one line; ``disable``
applies to its own line, ``disable-next`` to the line below (for lines
with no room left).  An unparseable file yields a single ``RL000``
finding rather than crashing the run.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.rules import default_rules
from repro.analysis.rules.base import FileContext, LintRule

__all__ = ["Finding", "LintEngine", "lint_paths"]

#: Code reserved for files the engine could not parse.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location (sortable, hashable)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> codes suppressed there (1-based, like findings).

    Directives are read from ``tokenize`` COMMENT tokens, not raw source
    lines: a *string literal* containing ``# repro-lint: disable=...``
    (e.g. in this engine's own tests) must not silence real findings on
    its line.
    """
    out: dict[int, set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            target = (
                lineno + 1 if match.group("kind") == "disable-next" else lineno
            )
            codes = {code.strip() for code in match.group("codes").split(",")}
            out.setdefault(target, set()).update(codes)
    except (tokenize.TokenError, IndentationError):
        # lint_source only reaches here for files ast.parse accepted, so
        # tokenize failures are effectively unreachable; keep whatever
        # directives were seen before the error rather than crashing.
        pass
    return {line: frozenset(codes) for line, codes in out.items()}


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(path.rglob("*.py"))
        else:
            collected.append(path)
    for path in sorted(collected):
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            yield path


class LintEngine:
    """Run a rule set over source files and collect :class:`Finding`s.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to
        :func:`repro.analysis.rules.default_rules` (RL001–RL006).
    select / ignore:
        Optional code filters applied after the run — ``select`` keeps
        only the named codes, ``ignore`` drops them (``RL000`` parse
        errors always survive ``select``: a file that cannot be parsed
        cannot be vouched for).
    """

    def __init__(
        self,
        rules: Sequence[LintRule] | None = None,
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        self.rules: tuple[LintRule, ...] = tuple(
            default_rules() if rules is None else rules
        )
        self._select = frozenset(select) if select is not None else None
        self._ignore = frozenset(ignore or ())

    def _wanted(self, code: str) -> bool:
        if code in self._ignore:
            return False
        if self._select is not None:
            return code == PARSE_ERROR_CODE or code in self._select
        return True

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one in-memory module; the workhorse every entry point uses."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            finding = Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
            )
            return [finding] if self._wanted(PARSE_ERROR_CODE) else []

        context = FileContext(path=path, source=source, tree=tree)
        findings: list[Finding] = []
        for rule in self.rules:
            for raw in rule.run(context):
                findings.append(
                    Finding(
                        path=path,
                        line=raw.line,
                        col=raw.col,
                        code=rule.code,
                        message=raw.message,
                    )
                )

        suppressed = _suppressions(source)
        findings = [
            finding
            for finding in findings
            if self._wanted(finding.code)
            and finding.code not in suppressed.get(finding.line, frozenset())
        ]
        return sorted(findings)

    def lint_file(self, path: Path) -> list[Finding]:
        """Lint one file on disk."""
        return self.lint_source(
            path.read_text(encoding="utf-8"), path=str(path)
        )

    def lint_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        """Lint files and/or directories (recursively), sorted by location."""
        findings: list[Finding] = []
        for path in _iter_python_files(Path(p) for p in paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[LintRule] | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Convenience wrapper: one-shot engine over *paths*."""
    engine = LintEngine(rules, select=select, ignore=ignore)
    return engine.lint_paths(paths)
