"""Argument parsing and exit-code policy for ``repro lint``.

Kept separate from :mod:`repro.cli` so ``python -m repro.analysis`` works
without importing the pipeline (and its numpy dependency): the analyzer
is pure stdlib and must stay runnable in minimal CI environments.
:mod:`repro.cli` mounts the same arguments on its ``lint`` subcommand via
:func:`configure_parser` / :func:`execute`.

Exit codes: 0 — clean; 1 — findings; 2 — usage error or missing path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import LintEngine
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import default_rules

__all__ = ["build_parser", "configure_parser", "execute", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the ``repro lint`` arguments to *parser* (standalone or subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help=(
            "files or directories to lint (default: src/ when it exists "
            "— the in-repo layout — else the current directory)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RL001,RL005)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (code, name, invariant) and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "repro-lint: static contract checks for determinism, dtype, "
            "registry, and picklability invariants (see DESIGN.md "
            "'Static guarantees')"
        ),
    )
    configure_parser(parser)
    return parser


def _split_codes(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [code.strip() for code in value.split(",") if code.strip()]


def execute(args: argparse.Namespace) -> int:
    """Run the lint with parsed arguments; returns the process exit code."""
    rules = default_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.rationale}")
        return 0

    # The bare `repro lint` default must make sense outside the repo root
    # too (installed console script): prefer src/ when present, otherwise
    # lint the current directory instead of failing on a missing 'src'.
    paths: list[Path] = args.paths or [
        Path("src") if Path("src").is_dir() else Path(".")
    ]

    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(missing)} "
            "(paths are resolved relative to the current directory)",
            file=sys.stderr,
        )
        return 2

    engine = LintEngine(
        rules,
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
    )
    findings = engine.lint_paths(paths)
    if args.format == "json":
        print(render_json(findings, rules))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def run(argv: list[str] | None = None) -> int:
    """Lint the requested paths; returns the process exit code."""
    return execute(build_parser().parse_args(argv))
