"""RL006 — exceptions are handled, logged, or re-raised, never swallowed.

The reliability layer (repro.reliability) works by making failures
*surface* deterministically: worker errors become retries, timeouts
become serial fallbacks, malformed records become quarantine reports.
All of that breaks silently if a handler swallows the error first — an
injected fault that disappears into ``except Exception: pass`` makes a
fault-injection test vacuous, and a production error that disappears
there corrupts results without a trace.

RL006 flags two constructs:

* ``except:`` — the bare form catches ``BaseException``, including
  ``KeyboardInterrupt``, ``SystemExit``, and injected faults, whatever
  the body does;
* ``except Exception`` / ``except BaseException`` (alone, aliased, or as
  a tuple member) whose body only ``pass``es (or ``...``/``continue``) —
  the error is caught as broadly as possible and then discarded.

Narrow handlers (``except KeyError: pass``) stay legal: quarantining a
*specific* anticipated failure is exactly what ``on_error="skip"`` does.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import LintRule

__all__ = ["SwallowedExceptionRule"]

#: Exception names considered "catches everything".
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(expr: ast.expr | None) -> str | None:
    """The broad exception name *expr* mentions, or ``None``."""
    if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
        return expr.id
    if isinstance(expr, ast.Attribute) and expr.attr in _BROAD_NAMES:
        return expr.attr
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _only_swallows(body: list[ast.stmt]) -> bool:
    """Whether a handler body discards the exception without a trace.

    True when every statement is ``pass``, ``...``, or ``continue`` —
    nothing is logged, re-raised, returned, or recorded.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


class SwallowedExceptionRule(LintRule):
    """RL006: no bare ``except:``; no silently-discarded broad catches."""

    code = "RL006"
    name = "swallowed-exception"
    rationale = (
        "the reliability layer depends on failures surfacing: worker "
        "errors drive retries and serial fallback, injected faults drive "
        "the fault-injection suite, malformed records drive quarantine "
        "reports — a bare 'except:' or an 'except Exception: pass' "
        "discards all of them invisibly; catch the specific exceptions "
        "you can handle, and log or re-raise the rest"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' catches BaseException — including "
                "KeyboardInterrupt, SystemExit, and injected faults; "
                "name the exceptions this handler can actually handle",
            )
        else:
            broad = _broad_name(node.type)
            if broad is not None and _only_swallows(node.body):
                self.report(
                    node,
                    f"'except {broad}' with a pass-only body silently "
                    "swallows every error; handle specific exceptions, or "
                    "log/re-raise what this handler cannot deal with",
                )
        self.generic_visit(node)
