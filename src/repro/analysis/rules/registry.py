"""RL003 — registered components must match the registry protocols.

``repro.core.registry`` wires components by name; nothing checks the
*shape* of what gets registered until a pipeline is assembled at run
time, often in someone else's process.  RL003 checks the registration
sites statically against the protocols the registry documents:

* ``register_blocker`` / ``register_pruning`` — factory taking exactly
  one argument (the :class:`BlastConfig`);
* ``register_stream_view`` — factory taking exactly one argument (the
  :class:`IncrementalBlockIndex`);
* ``register_weighting`` — a :class:`WeightingScheme` member or a
  callable taking exactly one argument (the blocking graph);
* ``register_backend`` — ``(collection, *, weighting, pruning,
  entropy_boost, key_entropy, **options) -> list[Edge]``: one leading
  positional parameter, and every protocol keyword either named or
  absorbed by ``**kwargs``.

Both the decorator form (``@register_blocker("x")``, ``@BLOCKERS.register
("x")``) and the call form (``BACKENDS.register("x", fn)``) are checked;
the call form only when ``fn`` is a function defined in the same module
(cross-module references are beyond a single-file analysis and are left
to the conformance matrix).
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, LintRule, RawFinding

__all__ = ["RegistryContractRule"]

#: registrar name -> (argument description, required keyword params or None)
_ONE_ARG_REGISTRARS = {
    "register_blocker": "a BlastConfig",
    "register_pruning": "a BlastConfig",
    "register_weighting": "the blocking graph",
    "register_stream_view": "an IncrementalBlockIndex",
}

_BACKEND_KEYWORDS = ("weighting", "pruning", "entropy_boost", "key_entropy")

#: registry global -> registrar semantics, for the ``X.register`` spelling.
_REGISTRY_GLOBALS = {
    "BLOCKERS": "register_blocker",
    "WEIGHTINGS": "register_weighting",
    "PRUNERS": "register_pruning",
    "BACKENDS": "register_backend",
    "STREAM_VIEWS": "register_stream_view",
}


def _registrar_of(func: ast.expr) -> str | None:
    """The canonical registrar name of a call target, if it is one."""
    if isinstance(func, ast.Name) and (
        func.id in _ONE_ARG_REGISTRARS or func.id == "register_backend"
    ):
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "register"
        and isinstance(func.value, ast.Name)
    ):
        return _REGISTRY_GLOBALS.get(func.value.id)
    return None


class RegistryContractRule(LintRule):
    """RL003: registration sites match the registry protocol signatures."""

    code = "RL003"
    name = "registry-contract"
    rationale = (
        "components registered under a name are constructed much later, "
        "from configs and CLI flags; a factory with the wrong arity or a "
        "backend missing a protocol keyword fails at pipeline-assembly "
        "time in the user's process — the registration site must match "
        "the protocol in core/registry.py"
    )

    def run(self, context: FileContext) -> list[RawFinding]:
        # Index module-level functions once, for the call-form lookups.
        self._module_functions = {
            stmt.name: stmt
            for stmt in context.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        return super().run(context)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for decorator in node.decorator_list:
            # @register_blocker("name") / @BLOCKERS.register("name")
            if isinstance(decorator, ast.Call):
                registrar = _registrar_of(decorator.func)
                if registrar is not None:
                    self._check(registrar, node, node)
        self._enter_function(node)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_Call(self, node: ast.Call) -> None:
        # Call form: REGISTRY.register("name", fn) / register_backend("n", fn)
        registrar = _registrar_of(node.func)
        if registrar is not None and len(node.args) >= 2:
            target = node.args[1]
            if isinstance(target, ast.Name):
                definition = self._module_functions.get(target.id)
                if definition is not None:
                    self._check(registrar, definition, node)
            elif isinstance(target, ast.Lambda):
                self._check_lambda(registrar, target, node)
        self.generic_visit(node)

    # -- signature checks ----------------------------------------------------

    def _check(
        self,
        registrar: str,
        definition: ast.FunctionDef | ast.AsyncFunctionDef,
        site: ast.AST,
    ) -> None:
        self._check_args(registrar, definition.name, definition.args, site)

    def _check_lambda(
        self, registrar: str, target: ast.Lambda, site: ast.AST
    ) -> None:
        self._check_args(registrar, "<lambda>", target.args, site)

    def _check_args(
        self,
        registrar: str,
        name: str,
        args: ast.arguments,
        site: ast.AST,
    ) -> None:
        positional = [*args.posonlyargs, *args.args]
        # Methods: the bound receiver does not count toward the protocol.
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        required_kwonly = [
            arg.arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is None
        ]

        if registrar in _ONE_ARG_REGISTRARS:
            takes = _ONE_ARG_REGISTRARS[registrar]
            required = len(positional) - len(args.defaults)
            if required != 1 and not (required < 1 and args.vararg):
                self.report(
                    site,
                    f"{registrar} target {name!r} must take exactly one "
                    f"required argument ({takes}); it takes {max(required, 0)}",
                )
            if required_kwonly:
                self.report(
                    site,
                    f"{registrar} target {name!r} has required keyword-only "
                    f"parameters {required_kwonly}; the registry calls the "
                    f"factory with a single positional argument",
                )
        elif registrar == "register_backend":
            if not positional and not args.vararg:
                self.report(
                    site,
                    f"register_backend target {name!r} must accept the "
                    "block collection as its first positional argument",
                )
            if args.kwarg is None:
                accepted = {arg.arg for arg in positional} | {
                    arg.arg for arg in args.kwonlyargs
                }
                missing = [
                    kw for kw in _BACKEND_KEYWORDS if kw not in accepted
                ]
                if missing:
                    self.report(
                        site,
                        f"register_backend target {name!r} does not accept "
                        f"the protocol keyword(s) {missing}; add them or a "
                        "**kwargs catch-all",
                    )
