"""RL007 — no blocking calls inside ``async def`` bodies.

The serving layer (repro.serving) multiplexes every tenant over one
event loop: a single blocking call in a coroutine stalls *all* tenants
at once, not just the offending request.  The failure is invisible in
unit tests (one coroutine, no contention) and catastrophic under load —
a ``time.sleep`` or a synchronous snapshot write in an actor freezes
queue draining, inflates every p99, and can cascade into spurious
``overloaded`` responses server-wide.

RL007 flags, inside ``async def`` bodies only:

* known-blocking module calls — ``time.sleep``, ``os.replace`` /
  ``os.rename`` / ``os.fsync``, ``subprocess.run`` and friends,
  ``shutil`` file operations — through ``import m`` / ``import m as n``
  / ``from m import f`` aliases alike;
* synchronous ``open()`` / ``input()`` builtins;
* zero-argument ``.join()`` — the ``Pool.join()`` / ``Thread.join()``
  shape (string and path joins always take arguments; the coroutine
  ``asyncio.Queue.join`` is exempt because it is awaited).

A call directly under ``await`` is never flagged (``await
asyncio.sleep(...)`` is the fix, not the bug), and nested ``def`` /
``lambda`` bodies are skipped — they run wherever they are called, which
is exactly where the rule will look for them.  The remedy is
``asyncio.sleep`` for delays and ``asyncio.to_thread`` for file IO and
process joins, which is how repro.serving ships its snapshot writes off
the loop.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, LintRule, RawFinding

__all__ = ["AsyncBlockingCallRule"]

#: ``(module, function)`` pairs known to block the calling thread.
_BLOCKING_MODULE_CALLS: frozenset[tuple[str, str]] = frozenset(
    {
        ("time", "sleep"),
        ("os", "replace"),
        ("os", "rename"),
        ("os", "fsync"),
        ("os", "remove"),
        ("os", "unlink"),
        ("os", "makedirs"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("shutil", "copy"),
        ("shutil", "copyfile"),
        ("shutil", "copytree"),
        ("shutil", "move"),
        ("shutil", "rmtree"),
        ("socket", "create_connection"),
    }
)

#: Builtins that block (file IO, terminal reads) when called bare.
_BLOCKING_BUILTINS = frozenset({"open", "input"})


class AsyncBlockingCallRule(LintRule):
    """RL007: coroutines never call blocking IO/sleep/join primitives."""

    code = "RL007"
    name = "async-blocking-call"
    rationale = (
        "the serving layer runs every tenant on one event loop, so a "
        "single blocking call in a coroutine — time.sleep, a sync "
        "open()/os.replace, a Pool/Thread join — stalls all tenants at "
        "once and inflates every latency tail; use await asyncio.sleep "
        "for delays and await asyncio.to_thread(...) for file IO and "
        "joins, as repro.serving does for snapshot writes"
    )

    def __init__(self) -> None:
        super().__init__()
        #: Name -> module it aliases (``import time as t`` -> {"t": "time"}).
        self._module_aliases: dict[str, str] = {}
        #: Name -> (module, function) it aliases (``from time import sleep``).
        self._func_aliases: dict[str, tuple[str, str]] = {}
        #: One entry per enclosing function-ish scope; True inside async def.
        self._async_stack: list[bool] = []
        #: ids of Call nodes sitting directly under an ``await``.
        self._awaited: set[int] = set()

    def run(self, context: FileContext) -> list[RawFinding]:
        self._module_aliases = {}
        self._func_aliases = {}
        self._async_stack = []
        self._awaited = set()
        self._scan_imports(context.tree)
        return super().run(context)

    def _scan_imports(self, tree: ast.Module) -> None:
        blocking_modules = {module for module, _ in _BLOCKING_MODULE_CALLS}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in blocking_modules:
                        self._module_aliases[
                            alias.asname or alias.name
                        ] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    pair = (node.module, alias.name)
                    if pair in _BLOCKING_MODULE_CALLS:
                        self._func_aliases[alias.asname or alias.name] = pair

    # -- scope tracking ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._async_stack.append(False)
        super().visit_FunctionDef(node)
        self._async_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_stack.append(True)
        super().visit_AsyncFunctionDef(node)
        self._async_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body runs where it is *called*, not where it is
        # defined — e.g. a callback handed to asyncio.to_thread.
        self._async_stack.append(False)
        self.generic_visit(node)
        self._async_stack.pop()

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    # -- the check -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._async_stack
            and self._async_stack[-1]
            and id(node) not in self._awaited
        ):
            described = self._blocking_call(node)
            if described is not None:
                self.report(
                    node,
                    f"blocking call {described} inside 'async def' stalls "
                    "the whole event loop (every tenant, not just this "
                    "request); use 'await asyncio.sleep(...)' for delays "
                    "or 'await asyncio.to_thread(...)' for blocking work",
                )
        self.generic_visit(node)

    def _blocking_call(self, node: ast.Call) -> str | None:
        """A human-readable name of the blocking call, or ``None``."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_BUILTINS:
                return f"{func.id}()"
            aliased = self._func_aliases.get(func.id)
            if aliased is not None:
                module, name = aliased
                return f"{func.id}() (= {module}.{name})"
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                module = self._module_aliases.get(func.value.id)
                if (
                    module is not None
                    and (module, func.attr) in _BLOCKING_MODULE_CALLS
                ):
                    return f"{func.value.id}.{func.attr}()"
            if func.attr == "join" and not node.args and not node.keywords:
                # Zero-argument join: the Pool.join()/Thread.join() shape
                # (str.join and os.path.join always take arguments).
                return ".join()"
        return None
