"""The repro-lint rule set.

Rules are pluggable: anything implementing the
:class:`~repro.analysis.rules.base.LintRule` interface can be passed to
:class:`~repro.analysis.engine.LintEngine`.  :func:`default_rules` builds
the built-in contract set — one instance per run, so rule state never
leaks between files:

======  =============================  ==========================================
code    name                           invariant
======  =============================  ==========================================
RL001   unordered-set-iteration        set iteration never flows into an
                                       ordered output without ``sorted()``
RL002   unpinned-numpy-dtype           CSR/edge arrays pin fixed-width dtypes;
                                       no platform-C-long inference
RL003   registry-contract              registered components match the
                                       protocols in core/registry.py
RL004   unpicklable-worker-payload     no lambdas/local defs shipped to
                                       multiprocessing workers
RL005   order-dependent-float-sum      float accumulation over unordered
                                       collections uses ``math.fsum``
RL006   swallowed-exception            no bare ``except:``; broad catches
                                       never silently discard the error
RL007   async-blocking-call            coroutines never call blocking
                                       IO/sleep/join primitives
RL008   unreleased-resource-handle     SharedMemory/memmap handles are
                                       released in a ``finally`` block, a
                                       context manager, or by ownership
                                       transfer
======  =============================  ==========================================
"""

from __future__ import annotations

from repro.analysis.rules.async_blocking import AsyncBlockingCallRule
from repro.analysis.rules.base import FileContext, LintRule, RawFinding
from repro.analysis.rules.determinism import (
    FloatAccumulationRule,
    UnorderedIterationRule,
)
from repro.analysis.rules.dtype import DtypeDisciplineRule
from repro.analysis.rules.exceptions import SwallowedExceptionRule
from repro.analysis.rules.pickling import PicklabilityRule
from repro.analysis.rules.registry import RegistryContractRule
from repro.analysis.rules.resources import ResourceLifecycleRule

__all__ = [
    "AsyncBlockingCallRule",
    "DtypeDisciplineRule",
    "FileContext",
    "FloatAccumulationRule",
    "LintRule",
    "PicklabilityRule",
    "RawFinding",
    "RegistryContractRule",
    "ResourceLifecycleRule",
    "SwallowedExceptionRule",
    "UnorderedIterationRule",
    "default_rules",
]


def default_rules() -> list[LintRule]:
    """Fresh instances of the built-in contract rules, in code order."""
    return [
        UnorderedIterationRule(),
        DtypeDisciplineRule(),
        RegistryContractRule(),
        PicklabilityRule(),
        FloatAccumulationRule(),
        SwallowedExceptionRule(),
        AsyncBlockingCallRule(),
        ResourceLifecycleRule(),
    ]
