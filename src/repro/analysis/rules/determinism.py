"""RL001/RL005 — unordered iteration and float accumulation contracts.

Set iteration order is an implementation detail of CPython's hash table:
it varies with insertion history for ints (collision probing) and with
``PYTHONHASHSEED`` for strings.  Any set iteration that flows into an
*ordered* output — a list, a yielded pair stream, a joined string, an
array — therefore produces results that can differ between runs and
platforms while passing every local test.  RL001 demands ``sorted()`` at
those boundaries.

Float addition is not associative, so even an order-*insensitive*
consumer is unsafe when the values are floats: ``sum()`` over a set
rounds differently per iteration order, which is exactly the class of
last-bit drift the conformance matrix exists to rule out.  RL005 demands
``math.fsum`` (exactly rounded, order-independent) or sorting before a
float accumulation over an unordered collection.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import LintRule

__all__ = ["FloatAccumulationRule", "UnorderedIterationRule"]

#: Call targets that materialize their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})

#: Call targets for which a generator argument's order is immaterial.
_ORDER_FREE_CALLS = frozenset(
    {"set", "frozenset", "sum", "len", "any", "all", "min", "max", "dict",
     "sorted", "fsum", "Counter"}
)

#: numpy constructors that freeze iteration order into an array.
_ARRAY_CONSTRUCTORS = frozenset({"array", "asarray", "fromiter"})


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UnorderedIterationRule(LintRule):
    """RL001: set iteration flowing into an ordered output without sorted()."""

    code = "RL001"
    name = "unordered-set-iteration"
    rationale = (
        "set/frozenset iteration order is arbitrary (insertion- and "
        "hash-seed-dependent); materializing it into a list, tuple, "
        "joined string, array, or yielded stream makes output "
        "order-nondeterministic across runs and platforms — wrap the "
        "set in sorted() at the boundary"
    )

    _MESSAGE = (
        "iterating an unordered set into an ordered {sink}; wrap the set "
        "in sorted() to pin the order"
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = _called_name(node.func)
        if (
            name in _ORDER_SENSITIVE_CALLS or name in _ARRAY_CONSTRUCTORS
        ) and node.args:
            target = node.args[0]
            if self.is_set_expr(target):
                sink = "array" if name in _ARRAY_CONSTRUCTORS else f"{name}()"
                self.report(node, self._MESSAGE.format(sink=sink))
            elif isinstance(target, ast.GeneratorExp) and self._genexp_over_set(
                target
            ):
                sink = "array" if name in _ARRAY_CONSTRUCTORS else f"{name}()"
                self.report(node, self._MESSAGE.format(sink=sink))
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            target = node.args[0]
            if self.is_set_expr(target) or (
                isinstance(target, ast.GeneratorExp)
                and self._genexp_over_set(target)
            ):
                self.report(node, self._MESSAGE.format(sink="joined string"))
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for comp in node.generators:
            if self.is_set_expr(comp.iter):
                self.report(
                    node, self._MESSAGE.format(sink="list comprehension")
                )
                break
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self.is_set_expr(node.value):
            self.report(node, self._MESSAGE.format(sink="yielded stream"))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            sink = self._ordered_sink_in(node.body)
            if sink is not None:
                self.report(node, self._MESSAGE.format(sink=sink))
        self.generic_visit(node)

    def _genexp_over_set(self, node: ast.GeneratorExp) -> bool:
        return any(self.is_set_expr(comp.iter) for comp in node.generators)

    def _ordered_sink_in(self, body: list[ast.stmt]) -> str | None:
        """An order-sensitive operation in a loop body, if any.

        Only yields and list mutations count — loops that update sets,
        dicts, or counters keyed by the element are order-insensitive and
        stay silent.  Nested function definitions are their own world.
        """
        stack: list[ast.AST] = list(body)
        while stack:
            sub = stack.pop()
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return "yielded stream"
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("append", "extend", "insert")
            ):
                return f"list .{sub.func.attr}()"
            stack.extend(ast.iter_child_nodes(sub))
        return None


class FloatAccumulationRule(LintRule):
    """RL005: float accumulation over an unordered collection."""

    code = "RL005"
    name = "order-dependent-float-sum"
    rationale = (
        "float addition is not associative: sum() over a set rounds "
        "differently depending on the iteration order, so the result can "
        "drift in the last bit between runs and platforms — use "
        "math.fsum (exactly rounded, order-independent), a dtype-pinned "
        "np.sum over a sorted array, or sort the set first"
    )

    _MESSAGE = (
        "sum() over an unordered set is order-dependent for floats; use "
        "math.fsum(...) or sort the iterable first"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
        ):
            target = node.args[0]
            if self.is_set_expr(target):
                self.report(node, self._MESSAGE)
            elif isinstance(target, ast.GeneratorExp):
                over_set = any(
                    self.is_set_expr(comp.iter) for comp in target.generators
                )
                if over_set and not self._element_is_integral(target.elt):
                    self.report(node, self._MESSAGE)
        self.generic_visit(node)

    @staticmethod
    def _element_is_integral(elt: ast.expr) -> bool:
        """Whether the summed element is provably an int (order-free).

        ``len(...)`` calls, integer literals, and boolean tests cover the
        common counting patterns; anything else is assumed float.
        """
        if isinstance(elt, ast.Call):
            return (
                isinstance(elt.func, ast.Name) and elt.func.id == "len"
            )
        if isinstance(elt, ast.Constant):
            return isinstance(elt.value, int)
        return isinstance(elt, (ast.Compare, ast.BoolOp))
