"""Rule framework: the visitor base class and set-typedness inference.

A rule is an :class:`ast.NodeVisitor` subclass with a ``code`` (``RL001``
…), a ``name``, and a ``rationale`` — the invariant it encodes, shown by
``repro lint --list-rules`` and documented in DESIGN.md.  Rules report
through :meth:`LintRule.report`; the engine owns file IO, suppression
handling, and ordering.

The determinism rules need to answer one question statically: *is this
expression an unordered set?*  :meth:`LintRule.is_set_expr` implements a
deliberately conservative, flow-insensitive answer from five sources:

1. literals and constructors — ``{…}``, set comprehensions, ``set()``,
   ``frozenset()``, and set-operator expressions (``a | b``, ``a - b``)
   with a known-set operand;
2. local names every assignment of which (in the enclosing function) is a
   known-set expression;
3. annotations — function parameters, ``AnnAssign`` statements (local
   names and ``self`` attributes), and dataclass-style class-body fields
   annotated ``set[...]``/``frozenset[...]``;
4. methods this repo's contracts declare set-returning
   (:data:`SET_RETURNING_METHODS` — e.g. ``AttributePartitioning.members``,
   ``IncrementalBlockIndex.derive_keys``);
5. attributes declared set-valued (:data:`SET_ATTRIBUTES` — ``.profiles``
   on blocks).

Anything the inference cannot prove to be a set is treated as ordered —
false negatives over false positives, so ``repro lint src/`` stays a
hard gate rather than a noise source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "FileContext",
    "LintRule",
    "RawFinding",
    "SET_ATTRIBUTES",
    "SET_RETURNING_METHODS",
]

#: Method names the repo's protocols declare to return ``set``/``frozenset``
#: (see core/registry.py and the streaming index).  Extend when a new
#: contract introduces a set-returning accessor.
SET_RETURNING_METHODS = frozenset(
    {
        "members",  # AttributePartitioning.members -> frozenset[AttributeRef]
        "derive_keys",  # IncrementalBlockIndex.derive_keys -> set[str]
        "profile_blocking_keys",  # schema_aware key derivation -> set[str]
        "distinct_pairs",  # BlockCollection.distinct_pairs -> set[pair]
        "keys_of",  # IncrementalBlockIndex.keys_of -> frozenset[str]
        "key_ids_of",  # IncrementalBlockIndex.key_ids_of -> frozenset[int]
        "side",  # PostingList.side -> set[int]
    }
)

#: Attribute names declared set-valued across the repo's data model.
SET_ATTRIBUTES = frozenset({"profiles"})  # Block.profiles -> frozenset[int]

#: Builtins whose call results are known NOT to be sets (so a name assigned
#: from them is proven ordered even if another branch assigns a set).
_ORDERED_CONSTRUCTORS = frozenset(
    {"list", "tuple", "sorted", "dict", "str", "bytes", "range"}
)


@dataclass(frozen=True)
class RawFinding:
    """A rule-local finding; the engine stamps path and code."""

    line: int
    col: int
    message: str


@dataclass
class FileContext:
    """Everything a rule may read about the file under analysis."""

    path: str
    source: str
    tree: ast.Module


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    """Whether an annotation expression denotes a set/frozenset type."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation ("set[int]"); parse best-effort.
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Attribute):  # typing.Set / typing.FrozenSet
        return annotation.attr in ("Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # ``set[int] | None`` — optional sets still iterate unordered.
        return _is_set_annotation(annotation.left) or _is_set_annotation(
            annotation.right
        )
    return False


@dataclass
class _Scope:
    """Names proven set-ish (or proven ordered) in one function scope."""

    set_names: set[str] = field(default_factory=set)
    ordered_names: set[str] = field(default_factory=set)
    set_self_attrs: set[str] = field(default_factory=set)


class LintRule(ast.NodeVisitor):
    """Base class for all repro-lint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`rationale` and
    implement ``visit_*`` methods calling :meth:`report`.  Scope tracking
    (for set inference) is provided here so every rule sees the same
    environment; rules that don't need it pay nothing.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self) -> None:
        self._findings: list[RawFinding] = []
        self._scopes: list[_Scope] = []
        self._class_set_fields: list[set[str]] = []

    # -- engine entry point --------------------------------------------------

    def run(self, context: FileContext) -> list[RawFinding]:
        """Visit *context*'s tree and return this rule's raw findings."""
        self._findings = []
        self._scopes = [self._scan_scope(context.tree.body)]
        self._class_set_fields = []
        self.context = context
        self.visit(context.tree)
        return self._findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at *node*."""
        self._findings.append(
            RawFinding(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- scope bookkeeping ---------------------------------------------------

    def _scan_scope(self, body: list[ast.stmt]) -> _Scope:
        """Pre-scan a function (or module) body for name-level setness.

        Walks statements recursively but does not descend into nested
        function or class definitions — their names live in their own
        scopes.  A name is set-ish when at least one assignment binds it
        to a known-set expression and none binds it to a proven-ordered
        one.
        """
        scope = _Scope()

        def scan(statements: list[ast.stmt]) -> None:
            for stmt in statements:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Assign):
                    self._record_assignment(scope, stmt.targets, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    self._record_annassign(scope, stmt)
                blocks = [
                    getattr(stmt, attr, [])
                    for attr in ("body", "orelse", "finalbody")
                ]
                for handler in getattr(stmt, "handlers", []):
                    blocks.append(handler.body)
                for block in blocks:
                    if block and isinstance(block[0], ast.stmt):
                        scan(block)

        scan(body)
        return scope

    def _record_assignment(
        self, scope: _Scope, targets: list[ast.expr], value: ast.expr
    ) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if self._expr_is_set(value, scope):
            scope.set_names.update(names)
        elif self._expr_is_ordered(value):
            scope.ordered_names.update(names)

    def _record_annassign(self, scope: _Scope, stmt: ast.AnnAssign) -> None:
        if not _is_set_annotation(stmt.annotation):
            return
        target = stmt.target
        if isinstance(target, ast.Name):
            scope.set_names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            scope.set_self_attrs.add(target.attr)
            if self._class_set_fields:
                self._class_set_fields[-1].add(target.attr)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        fields = {
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and _is_set_annotation(stmt.annotation)
        }
        self._class_set_fields.append(fields)
        self.generic_visit(node)
        self._class_set_fields.pop()

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        scope = self._scan_scope(node.body)
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            args.vararg,
            args.kwarg,
        ]:
            if arg is not None and _is_set_annotation(arg.annotation):
                scope.set_names.add(arg.arg)
        self._scopes.append(scope)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._scopes.pop()

    # -- setness inference ---------------------------------------------------

    def is_set_expr(self, node: ast.expr) -> bool:
        """Whether *node* is statically known to evaluate to a set."""
        return self._expr_is_set(node, self._scopes[-1] if self._scopes else None)

    def _expr_is_set(self, node: ast.expr, scope: _Scope | None) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id in SET_RETURNING_METHODS:
                    return True
            if isinstance(func, ast.Attribute):
                if func.attr in SET_RETURNING_METHODS:
                    return True
                if func.attr in (
                    "union",
                    "intersection",
                    "difference",
                    "symmetric_difference",
                ) and self._expr_is_set(func.value, scope):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._expr_is_set(node.left, scope) or self._expr_is_set(
                node.right, scope
            )
        if isinstance(node, ast.Name) and scope is not None:
            return (
                node.id in scope.set_names
                and node.id not in scope.ordered_names
            )
        if isinstance(node, ast.Attribute):
            if node.attr in SET_ATTRIBUTES:
                return True
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and (
                    (scope is not None and node.attr in scope.set_self_attrs)
                    or any(
                        node.attr in fields
                        for fields in self._class_set_fields
                    )
                )
            ):
                return True
            return False
        if isinstance(node, ast.IfExp):
            return self._expr_is_set(node.body, scope) or self._expr_is_set(
                node.orelse, scope
            )
        return False

    @staticmethod
    def _expr_is_ordered(node: ast.expr) -> bool:
        """Whether *node* is statically known to be an ordered value."""
        if isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.ListComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _ORDERED_CONSTRUCTORS
        if isinstance(node, ast.Constant):
            return True
        return False
