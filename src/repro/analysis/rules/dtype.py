"""RL002 — numpy dtype discipline on the CSR hot path.

The CSR arrays (``block_ptr``/``entity_ids``/``token_ids`` and the edge
arrays) are the currency every backend trades in; the conformance matrix
compares them bit for bit.  Two numpy defaults silently break that on
other platforms:

* value-inferred integer dtypes — ``np.array([1, 2])`` and a bare
  ``np.arange(n)`` default to the platform C ``long``: 64-bit on
  Linux/macOS, **32-bit on Windows** — so index arithmetic that is exact
  on the dev box can overflow (or just hash/concatenate differently)
  elsewhere;
* the builtin ``int``/``np.int_`` as an explicit dtype, which pins the
  same platform-dependent width on purpose-looking code.

RL002 therefore requires ``np.array``/``np.asarray``/``np.fromiter``/
``np.arange`` calls to pass an explicit ``dtype=`` and forbids
platform-width integer dtypes (builtin ``int``, ``np.int_``, ``np.intc``,
``np.long``, ``"int"``) everywhere, including ``.astype(...)``.
``dtype=float``/``np.float64``/``bool`` are allowed — they are the same
width on every supported platform.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import LintRule

__all__ = ["DtypeDisciplineRule"]

#: Constructors whose *integer* default dtype is the platform C long.
_INFERRING_CONSTRUCTORS = frozenset({"array", "asarray", "fromiter", "arange"})

#: Dtype spellings whose width differs across platforms.
_PLATFORM_WIDTH_NAMES = frozenset({"int_", "intc", "long", "uint", "ulong"})


class DtypeDisciplineRule(LintRule):
    """RL002: explicit, platform-stable dtypes on numpy constructors."""

    code = "RL002"
    name = "unpinned-numpy-dtype"
    rationale = (
        "np.array/np.asarray/np.fromiter/np.arange infer integer dtypes "
        "as the platform C long (32-bit on Windows, 64-bit elsewhere), "
        "and dtype=int/np.int_ pins that same platform-dependent width "
        "explicitly — CSR and edge arrays must name a fixed-width dtype "
        "(np.int32/np.int64/np.float64) so results are bit-identical "
        "everywhere"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and func.attr in _INFERRING_CONSTRUCTORS
        ):
            dtype = self._dtype_argument(node)
            if dtype is None:
                self.report(
                    node,
                    f"np.{func.attr}(...) without an explicit dtype= infers "
                    "the platform C long for integers; pin a fixed-width "
                    "dtype (e.g. np.int64)",
                )
            else:
                self._check_dtype_value(node, dtype)
        elif isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args:
                self._check_dtype_value(node, node.args[0])
            dtype = self._dtype_argument(node)
            if dtype is not None:
                self._check_dtype_value(node, dtype)
        else:
            dtype = self._dtype_argument(node)
            if dtype is not None:
                self._check_dtype_value(node, dtype)
        self.generic_visit(node)

    @staticmethod
    def _dtype_argument(node: ast.Call) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return keyword.value
        return None

    def _check_dtype_value(self, node: ast.Call, dtype: ast.expr) -> None:
        platform_width = (
            (isinstance(dtype, ast.Name) and dtype.id == "int")
            or (
                isinstance(dtype, ast.Attribute)
                and dtype.attr in _PLATFORM_WIDTH_NAMES
            )
            or (
                isinstance(dtype, ast.Constant)
                and dtype.value in ("int", "long", "uint")
            )
        )
        if platform_width:
            self.report(
                node,
                "platform-width integer dtype (builtin int / np.int_ is the "
                "C long: 32-bit on Windows); use a fixed-width dtype such "
                "as np.int32 or np.int64",
            )
