"""RL008 — shared-memory and memmap handles must have a bounded lifetime.

``multiprocessing.shared_memory.SharedMemory`` segments outlive the
process unless somebody calls ``close()`` *and* (owner side) ``unlink()``
— a raise between creation and release leaks a named ``/dev/shm``
segment until reboot.  ``np.memmap``/``open_memmap`` handles hold disk
pages and (on write mode) unflushed data with the same failure shape.
The out-of-core subsystem (graph/pool.py, graph/spill.py) makes these
handles routine, so the leak pattern becomes a one-liner away.

RL008 flags a ``SharedMemory``/``memmap``/``open_memmap`` creation whose
handle has no structurally guaranteed release.  A creation is **clean**
when any of these holds:

* it is the context expression of a ``with`` item (directly or wrapped,
  e.g. ``with closing(SharedMemory(...))``), or the bound name is later
  used as one;
* the bound name has a ``close()``/``unlink()``/``flush()`` call inside
  a ``finally`` block of the same scope;
* the handle is returned, or created directly inside another call's
  arguments (``segments.append(SharedMemory(...))``) — ownership moves
  to the caller/container, whose lifecycle is its own contract;
* it is assigned to an attribute or subscript (``self._shm = ...``) —
  instance-managed handles are released by the owning object's
  ``close()``, which the per-function analysis cannot see and does not
  second-guess.

Everything else — a bare-expression creation, or a local name with no
``finally``/``with`` release on any path — is reported.  The analysis is
per scope (module body, each function body) and deliberately structural:
a mid-body ``seg.close()`` without ``finally`` does NOT sanction the
name, because the exception path still leaks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import FileContext, LintRule, RawFinding

__all__ = ["ResourceLifecycleRule"]

#: Call names that create a leakable named/paged resource handle.
_CREATORS = frozenset({"SharedMemory", "memmap", "open_memmap"})

#: Method calls that count as releasing a handle when inside ``finally``.
_RELEASES = frozenset({"close", "unlink", "flush"})

#: Nodes that open a new analysis scope (their bodies are checked
#: separately; the scope walk does not descend into them).
_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Yield every node of *root*'s scope, stopping at nested functions."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield child
        yield from _walk_scope(child)


def _creator_name(call: ast.Call) -> str | None:
    """The creator (``SharedMemory``/``memmap``/…) *call* invokes, if any."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _CREATORS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _CREATORS:
        return func.attr
    return None


class ResourceLifecycleRule(LintRule):
    """RL008: SharedMemory/memmap handles need a paired release."""

    code = "RL008"
    name = "unreleased-resource-handle"
    rationale = (
        "a SharedMemory segment or memmap handle created without a "
        "finally-guarded close()/unlink()/flush(), a context manager, or "
        "an ownership transfer leaks a named /dev/shm segment or "
        "unflushed pages whenever an exception interrupts the happy "
        "path — releases must be structural, not best-effort"
    )

    def run(self, context: FileContext) -> list[RawFinding]:
        self._findings = []
        self.context = context
        scopes: list[ast.AST] = [context.tree]
        scopes.extend(
            node
            for node in ast.walk(context.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            self._check_scope(scope)
        return self._findings

    def _check_scope(self, scope: ast.AST) -> None:
        nodes = list(_walk_scope(scope))
        creations = [
            (node, name)
            for node in nodes
            if isinstance(node, ast.Call)
            and (name := _creator_name(node)) is not None
        ]
        if not creations:
            return
        parents: dict[ast.AST, ast.AST] = {}
        for node in [scope, *nodes]:
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        released = self._released_names(nodes)
        for call, creator in creations:
            if not self._is_managed(call, parents, released):
                self.report(
                    call,
                    f"{creator} handle has no guaranteed release on this "
                    "path; close()/unlink()/flush() it in a finally block, "
                    "use a context manager, or hand ownership to a "
                    "container/caller",
                )

    @staticmethod
    def _released_names(nodes: list[ast.AST]) -> frozenset[str]:
        """Names whose release is structurally guaranteed in this scope."""
        released: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _RELEASES
                            and isinstance(sub.func.value, ast.Name)
                        ):
                            released.add(sub.func.value.id)
            elif isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name):
                    released.add(expr.id)
                elif isinstance(expr, ast.Call):
                    released.update(
                        arg.id
                        for arg in expr.args
                        if isinstance(arg, ast.Name)
                    )
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                released.add(node.value.id)
        return frozenset(released)

    @staticmethod
    def _is_managed(
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
        released: frozenset[str],
    ) -> bool:
        """Whether *call*'s handle has a structurally guaranteed release."""
        child: ast.AST = call
        parent = parents.get(child)
        while parent is not None:
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, ast.Call) and child is not parent.func:
                # Created directly inside another call's arguments —
                # ownership transfers to the callee/container.
                return True
            if isinstance(parent, ast.Return):
                return True
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                targets = (
                    parent.targets
                    if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                if all(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in targets
                ):
                    return True  # instance/container-managed handle
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                return bool(names) and all(n in released for n in names)
            if isinstance(parent, ast.Expr):
                return False  # bare-expression creation: dropped handle
            if isinstance(
                parent,
                (
                    ast.Tuple,
                    ast.List,
                    ast.IfExp,
                    ast.BinOp,
                    ast.BoolOp,
                    ast.Starred,
                    ast.keyword,
                    ast.Await,
                ),
            ):
                child = parent
                parent = parents.get(parent)
                continue
            return False  # unknown context: conservative flag
        return False
