"""RL004 — objects shipped to worker processes must be picklable.

The ``parallel`` backend (graph/parallel.py) ships work to a
``multiprocessing.Pool``.  Under the ``fork`` start method almost
anything appears to work; under ``spawn`` (Windows, macOS default) every
task function, initializer, and initarg travels by pickle — and lambdas,
functions nested inside other functions, and locally-defined classes do
not pickle.  Code that passes them runs fine on the dev box and raises
``PicklingError`` on the platforms the conformance matrix cannot reach.

RL004 flags, in any module that imports ``multiprocessing`` (or the
process pools of ``concurrent.futures``):

* lambdas or locally-defined functions/classes passed to pool dispatch
  methods (``map``/``imap``/``imap_unordered``/``starmap``/``apply``/
  ``apply_async``/``starmap_async``/``map_async``/``submit``);
* lambdas or local definitions as ``initializer=``, ``target=``, or
  inside ``initargs=``/``args=`` of pool/process constructors.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import FileContext, LintRule, RawFinding

__all__ = ["PicklabilityRule"]

_DISPATCH_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "map_async",
        "apply",
        "apply_async",
        "submit",
    }
)

_PAYLOAD_KEYWORDS = frozenset({"initializer", "target", "func"})
_PAYLOAD_TUPLE_KEYWORDS = frozenset({"initargs", "args"})

_MP_MODULES = ("multiprocessing", "concurrent.futures", "concurrent")


class PicklabilityRule(LintRule):
    """RL004: no lambdas/local defs in multiprocessing payloads."""

    code = "RL004"
    name = "unpicklable-worker-payload"
    rationale = (
        "under the spawn start method (Windows, macOS default) pool task "
        "functions, initializers and their arguments travel by pickle; "
        "lambdas, nested functions, and locally-defined classes do not "
        "pickle, so they work under fork on the dev box and raise "
        "PicklingError everywhere else — ship module-level functions and "
        "classes to workers"
    )

    def run(self, context: FileContext) -> list[RawFinding]:
        self._uses_multiprocessing = any(
            isinstance(stmt, (ast.Import, ast.ImportFrom))
            and self._imports_mp(stmt)
            for stmt in ast.walk(context.tree)
        )
        self._local_definitions: list[set[str]] = []
        return super().run(context)

    @staticmethod
    def _imports_mp(stmt: ast.Import | ast.ImportFrom) -> bool:
        if isinstance(stmt, ast.Import):
            return any(
                alias.name.split(".")[0] == "multiprocessing"
                or alias.name.startswith("concurrent")
                for alias in stmt.names
            )
        module = stmt.module or ""
        return module.split(".")[0] in ("multiprocessing", "concurrent")

    def _visit_any_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Names defined *inside* this function are process-local: they
        # cannot be imported by a worker, hence cannot unpickle.
        local = {
            stmt.name
            for stmt in ast.walk(node)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and stmt is not node
        }
        self._local_definitions.append(local)
        self._enter_function(node)
        self.generic_visit(node)
        self._scopes.pop()
        self._local_definitions.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_any_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_any_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._uses_multiprocessing:
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_METHODS
                and node.args
            ):
                self._check_payload(node.args[0], node.func.attr)
            for keyword in node.keywords:
                if keyword.arg in _PAYLOAD_KEYWORDS:
                    self._check_payload(keyword.value, keyword.arg + "=")
                elif keyword.arg in _PAYLOAD_TUPLE_KEYWORDS and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    for element in keyword.value.elts:
                        self._check_payload(element, keyword.arg + "=")
        self.generic_visit(node)

    def _check_payload(self, payload: ast.expr, where: str) -> None:
        if isinstance(payload, ast.Lambda):
            self.report(
                payload,
                f"lambda passed to a worker pool ({where}); lambdas do not "
                "pickle under spawn — use a module-level function",
            )
        elif isinstance(payload, ast.Name) and self._is_local(payload.id):
            self.report(
                payload,
                f"locally-defined {payload.id!r} passed to a worker pool "
                f"({where}); nested definitions do not pickle under spawn "
                "— move it to module level",
            )
        elif (
            isinstance(payload, ast.Call)
            and isinstance(payload.func, ast.Name)
            and self._is_local(payload.func.id)
        ):
            # An *instance* of a locally-defined class pickles by class
            # reference, which workers cannot import either.
            self.report(
                payload,
                f"instance of locally-defined {payload.func.id!r} passed to "
                f"a worker pool ({where}); local classes do not pickle under "
                "spawn — move the class to module level",
            )

    def _is_local(self, name: str) -> bool:
        return any(name in local for local in self._local_definitions)
