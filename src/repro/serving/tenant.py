"""Tenants: one StreamingSession per catalog, behind a single-writer actor.

A :class:`Tenant` pairs a :class:`~repro.streaming.StreamingSession` with
a bounded write queue and exactly one *writer task* — the only code that
ever mutates the session, which is how the serving layer satisfies the
session's single-writer contract (see
:class:`~repro.streaming.ConcurrentWriterError`) structurally rather
than by locking every call site.

Write path::

    submit() -> bounded asyncio.Queue -> writer task -> session.upsert()
       |                                     |
       overloaded when full                  batches up to serve_batch_size

``submit`` never waits: a full queue raises
:class:`TenantOverloadedError` immediately, which the server answers
with the ``overloaded`` error code — explicit backpressure instead of
unbounded memory growth.  The writer task drains the queue in batches of
at most ``serve_batch_size`` operations and yields the per-tenant lock
between batches, so a query never waits behind more than one batch even
under a write flood.

The :class:`TenantRegistry` maps tenant ids to resident tenants with an
LRU bound (``serve_resident_tenants``).  Tenants are opened lazily on
first touch, always through :meth:`StreamingSession.recover` — a cold
tenant with a snapshot and/or journal on disk is rebuilt to its exact
pre-shutdown (or pre-crash) state, a genuinely new tenant starts fresh
with its journal attached.  Evicted tenants are drained, snapshotted,
and closed; their counters survive in the registry and accumulate across
evict/reattach cycles.

Tenant lifecycle (see DESIGN.md "Serving layer" for the full state
machine)::

    cold --get()--> opening --recover()--> active --evict/shutdown--> draining
      ^                                                                  |
      +------------------- snapshot + close ----------------------------+
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from collections.abc import Callable
from pathlib import Path

from repro.core.config import BlastConfig
from repro.serving.metrics import ServerMetrics, TenantMetrics
from repro.serving.protocol import Request, validate_tenant_id
from repro.streaming.metablocker import Candidate
from repro.streaming.session import StreamingSession

__all__ = [
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "Tenant",
    "TenantClosedError",
    "TenantOverloadedError",
    "TenantRegistry",
]

#: On-disk layout of one tenant: ``<data_dir>/<tenant_id>/``.
SNAPSHOT_NAME = "snapshot.json.gz"
JOURNAL_NAME = "wal.jsonl"


class TenantOverloadedError(RuntimeError):
    """The tenant's write queue is full — the backpressure signal."""


class TenantClosedError(RuntimeError):
    """The tenant (or the whole server) is draining; no new work accepted."""


class Tenant:
    """One resident catalog: a session, its actor, and its bookkeeping.

    Do not construct directly — :meth:`TenantRegistry.get` owns creation,
    recovery, and eviction.  The writer task is started lazily on the
    first submit so a tenant opened only for queries costs no task.
    """

    def __init__(
        self,
        tenant_id: str,
        session: StreamingSession,
        metrics: TenantMetrics,
        *,
        snapshot_path: Path,
        max_queue: int,
        batch_size: int,
        snapshot_interval: int | None,
    ) -> None:
        self.tenant_id = tenant_id
        self.session = session
        self.metrics = metrics
        self.snapshot_path = snapshot_path
        self.batch_size = batch_size
        self.snapshot_interval = snapshot_interval
        #: Serializes the session between the writer task (per batch),
        #: queries (per query), and snapshots — the three legal accessors.
        self.lock = asyncio.Lock()
        self.queue: asyncio.Queue[tuple[Request, asyncio.Future, float]] = (
            asyncio.Queue(maxsize=max_queue)
        )
        self.closing = False
        #: Write operations applied since the last snapshot (dirtiness).
        self.ops_since_snapshot = 0
        self._writer_task: asyncio.Task | None = None

    # -- write path ----------------------------------------------------------

    def submit(self, request: Request) -> asyncio.Future:
        """Enqueue one write; resolves once the operation is applied.

        Raises :class:`TenantOverloadedError` when the queue is full and
        :class:`TenantClosedError` once the tenant started draining —
        both immediately, without blocking the caller.
        """
        if self.closing:
            raise TenantClosedError(
                f"tenant {self.tenant_id!r} is draining; retry later"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self.queue.put_nowait((request, future, time.perf_counter()))
        except asyncio.QueueFull:
            self.metrics.overloads += 1
            raise TenantOverloadedError(
                f"tenant {self.tenant_id!r} write queue is full "
                f"({self.queue.maxsize} pending); back off and retry"
            ) from None
        if self._writer_task is None:
            self._writer_task = asyncio.create_task(
                self._writer_loop(), name=f"tenant-writer:{self.tenant_id}"
            )
        return future

    async def _writer_loop(self) -> None:
        """The single writer: drain the queue forever, one batch at a time."""
        while True:
            batch = [await self.queue.get()]
            while len(batch) < self.batch_size:
                try:
                    batch.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            async with self.lock:
                for request, future, enqueued in batch:
                    try:
                        result = self._apply(request)
                    except Exception as exc:
                        if not future.done():
                            future.set_exception(exc)
                        else:  # client gone; surface the failure anyway
                            raise
                    else:
                        self.metrics.write_latency.record(
                            time.perf_counter() - enqueued
                        )
                        if not future.done():
                            future.set_result(result)
                    finally:
                        self.queue.task_done()
                self.metrics.batches += 1
                self.metrics.batched_ops += len(batch)
                if (
                    self.snapshot_interval is not None
                    and self.ops_since_snapshot >= self.snapshot_interval
                ):
                    await self._snapshot_locked()
            # The lock is released here: pending queries run before the
            # next batch is taken, bounding read latency by one batch.

    def _apply(self, request: Request) -> dict:
        """Apply one write to the session (writer task only)."""
        if request.verb == "upsert":
            assert request.profile is not None
            self.session.upsert(request.profile, request.source)
            self.metrics.upserts += 1
            self.ops_since_snapshot += 1
            return {"op": "upsert", "id": request.profile_id, "applied": True}
        assert request.verb == "delete"
        applied = self.session.delete(request.profile_id or "", request.source)
        self.metrics.deletes += 1
        if applied:
            self.ops_since_snapshot += 1
        return {"op": "delete", "id": request.profile_id, "applied": applied}

    # -- read path -----------------------------------------------------------

    async def query(
        self, profile_id: str, k: int | None, source: int
    ) -> list[Candidate]:
        """Arrival-time candidates, serialized with writes per tenant."""
        start = time.perf_counter()
        async with self.lock:
            result = self.session.candidates(profile_id, k=k, source=source)
        self.metrics.queries += 1
        self.metrics.query_latency.record(time.perf_counter() - start)
        return result

    # -- persistence ---------------------------------------------------------

    async def snapshot(self) -> None:
        """Write a snapshot now (takes the tenant lock)."""
        async with self.lock:
            await self._snapshot_locked()

    async def _snapshot_locked(self) -> None:
        # The blocking file write runs in a worker thread; the tenant
        # lock is held, so the actor cannot mutate the session meanwhile
        # and the event loop stays free for other tenants.
        await asyncio.to_thread(self.session.snapshot, self.snapshot_path)
        self.metrics.snapshots += 1
        self.ops_since_snapshot = 0

    async def close(self, *, snapshot: bool = True) -> None:
        """Drain pending writes, optionally snapshot, and close the session.

        Idempotent.  With ``snapshot=True`` (eviction, graceful shutdown)
        a dirty tenant is snapshotted after its queue drains, so the next
        attach restores instead of replaying a long journal tail.
        """
        if self.closing:
            return
        self.closing = True
        if self._writer_task is not None:
            await self.queue.join()
            # join() returns once the last batch is applied, which can be
            # *before* the writer finishes an interval snapshot it started
            # for that batch (task_done precedes the snapshot).  Take the
            # lock so a mid-flight snapshot completes instead of being
            # cancelled with its worker thread still writing the file.
            async with self.lock:
                self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
            self._writer_task = None
        if snapshot and self.ops_since_snapshot > 0:
            async with self.lock:
                await self._snapshot_locked()
        await asyncio.to_thread(self.session.close)

    @property
    def queue_depth(self) -> int:
        return self.queue.qsize()

    def stats(self) -> dict:
        return self.metrics.snapshot_dict(queue_depth=self.queue_depth)

    def __repr__(self) -> str:
        return (
            f"Tenant({self.tenant_id!r}, "
            f"profiles={self.session.index.num_profiles}, "
            f"queue={self.queue_depth})"
        )


class TenantRegistry:
    """Tenant id -> resident :class:`Tenant`, LRU-bounded, crash-recovering.

    Parameters
    ----------
    data_dir:
        Root of the per-tenant persistence layout
        (``<data_dir>/<tenant_id>/{snapshot.json.gz,wal.jsonl}``).
    config:
        Session tunables plus the ``serve_*`` knobs (queue bound, batch
        size, residency cap, snapshot interval).
    clean_clean:
        Whether *fresh* tenants index two-source streams.  Recovered
        tenants restore their kind from their own snapshot.
    session_factory:
        Override for building fresh (and journal-only-recovered)
        sessions; must **not** attach a journal — recovery attaches the
        tenant's journal itself.  Defaults to
        ``StreamingSession(config, clean_clean=clean_clean)``.
    """

    def __init__(
        self,
        data_dir: str | Path,
        config: BlastConfig | None = None,
        *,
        clean_clean: bool = False,
        session_factory: Callable[[], StreamingSession] | None = None,
        server_metrics: ServerMetrics | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.config = config or BlastConfig()
        self.clean_clean = clean_clean
        self._session_factory = session_factory
        self.server_metrics = server_metrics or ServerMetrics()
        self._tenants: OrderedDict[str, Tenant] = OrderedDict()
        #: Counters outlive residency: evict + reattach keeps accumulating.
        self._metrics: dict[str, TenantMetrics] = {}
        self._open_locks: dict[str, asyncio.Lock] = {}
        self.closing = False

    # -- paths ---------------------------------------------------------------

    def tenant_dir(self, tenant_id: str) -> Path:
        return self.data_dir / tenant_id

    def snapshot_path(self, tenant_id: str) -> Path:
        return self.tenant_dir(tenant_id) / SNAPSHOT_NAME

    def journal_path(self, tenant_id: str) -> Path:
        return self.tenant_dir(tenant_id) / JOURNAL_NAME

    # -- residency -----------------------------------------------------------

    @property
    def resident(self) -> list[str]:
        """Resident tenant ids, least recently used first."""
        return list(self._tenants)

    def known_tenants(self) -> list[str]:
        """Every tenant with on-disk state or residency, sorted."""
        on_disk = {
            path.name
            for path in self.data_dir.glob("*")
            if path.is_dir()
        }
        return sorted(on_disk | set(self._tenants))

    async def get(self, tenant_id: str) -> Tenant:
        """The tenant, opened (and crash-recovered) on first touch.

        Touching a tenant marks it most recently used; opening one past
        the residency cap evicts the least recently used resident first
        (drain -> snapshot -> close).
        """
        if self.closing:
            raise TenantClosedError("server is shutting down")
        tenant_id = validate_tenant_id(tenant_id)
        tenant = self._tenants.get(tenant_id)
        if tenant is not None and not tenant.closing:
            self._tenants.move_to_end(tenant_id)
            return tenant
        # One opener per tenant: concurrent first touches of the same id
        # must not race two recoveries over the same journal.
        open_lock = self._open_locks.setdefault(tenant_id, asyncio.Lock())
        async with open_lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is not None and not tenant.closing:
                self._tenants.move_to_end(tenant_id)
                return tenant
            tenant = await self._open(tenant_id)
            self._tenants[tenant_id] = tenant
        await self._enforce_residency()
        return tenant

    async def _open(self, tenant_id: str) -> Tenant:
        snap = self.snapshot_path(tenant_id)
        journal = self.journal_path(tenant_id)
        had_state = snap.exists() or (
            journal.exists() and journal.stat().st_size > 0
        )
        await asyncio.to_thread(
            self.tenant_dir(tenant_id).mkdir, parents=True, exist_ok=True
        )
        # recover() covers every attach uniformly: snapshot + journal
        # tail when state exists, a factory-fresh session (journal
        # attached, empty journal replayed) when it does not.
        session = await asyncio.to_thread(
            StreamingSession.recover,
            snap,
            journal,
            session_factory=self._fresh_session,
        )
        metrics = self._metrics.setdefault(tenant_id, TenantMetrics())
        if had_state:
            metrics.recoveries += 1
        return Tenant(
            tenant_id,
            session,
            metrics,
            snapshot_path=snap,
            max_queue=self.config.serve_max_queue,
            batch_size=self.config.serve_batch_size,
            snapshot_interval=self.config.serve_snapshot_interval,
        )

    def _fresh_session(self) -> StreamingSession:
        if self._session_factory is not None:
            return self._session_factory()
        return StreamingSession(self.config, clean_clean=self.clean_clean)

    async def _enforce_residency(self) -> None:
        while len(self._tenants) > self.config.serve_resident_tenants:
            victim_id, victim = next(iter(self._tenants.items()))
            del self._tenants[victim_id]
            await victim.close(snapshot=True)
            self.server_metrics.evictions += 1

    async def evict(self, tenant_id: str) -> bool:
        """Force one tenant back to cold storage; ``False`` if not resident."""
        tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            return False
        await tenant.close(snapshot=True)
        self.server_metrics.evictions += 1
        return True

    async def close_all(self, *, snapshot: bool = True) -> None:
        """Graceful shutdown: drain, snapshot, and close every resident.

        New :meth:`get` calls fail with :class:`TenantClosedError` from
        the moment this starts; each tenant's queued writes are applied
        (and journaled) before its final snapshot.  ``snapshot=False``
        skips the final snapshots — the journals alone then carry the
        tail, exactly as after a crash.
        """
        self.closing = True
        while self._tenants:
            _, tenant = self._tenants.popitem(last=False)
            await tenant.close(snapshot=snapshot)

    # -- observability -------------------------------------------------------

    def stats(self, tenant_id: str | None = None) -> dict:
        """The ``stats`` payload: one tenant's, or the global roll-up."""
        if tenant_id is not None:
            tenant = self._tenants.get(tenant_id)
            if tenant is not None:
                return {tenant_id: tenant.stats()}
            metrics = self._metrics.get(tenant_id)
            return {
                tenant_id: metrics.snapshot_dict() if metrics else {}
            }
        tenants = {
            tid: tenant.stats() for tid, tenant in self._tenants.items()
        }
        totals = {
            "tenants_resident": len(self._tenants),
            "tenants_known": len(self.known_tenants()),
            "upserts": sum(m.upserts for m in self._metrics.values()),
            "deletes": sum(m.deletes for m in self._metrics.values()),
            "queries": sum(m.queries for m in self._metrics.values()),
            "overloads": sum(m.overloads for m in self._metrics.values()),
            "recoveries": sum(m.recoveries for m in self._metrics.values()),
            "queue_depth": sum(t.queue_depth for t in self._tenants.values()),
        }
        return {
            "server": self.server_metrics.snapshot_dict(),
            "totals": totals,
            "tenants": tenants,
        }
