"""A minimal asyncio client for the serving protocol.

Used by the test suite, the load benchmark, and the worked example; it
is also the reference implementation of how to *speak* the protocol —
one JSON line per request, responses in request order, ``overloaded``
answered by backing off and retrying.
"""

from __future__ import annotations

import asyncio
import json

from repro.serving.protocol import MAX_LINE_BYTES

__all__ = ["ServingClient", "ServerError"]


class ServerError(RuntimeError):
    """A request the server refused; ``code`` is the protocol error code."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("message", "request failed"))
        self.code = response.get("error", "internal")
        self.response = response


class ServingClient:
    """One connection to a :class:`~repro.serving.ReproServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES + 2
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except OSError:
            pass

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- raw protocol --------------------------------------------------------

    async def request(self, record: dict) -> dict:
        """Send one request and await its response (raw — errors included)."""
        self._writer.write(json.dumps(record).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def pipeline(self, records: list[dict]) -> list[dict]:
        """Send every request before reading any response.

        Responses come back in request order, so ``result[i]`` answers
        ``records[i]``.  Pipelining is what lets the tenant actor batch:
        a sequential request/await loop caps batches at one operation.
        """
        payload = b"".join(
            json.dumps(record).encode("utf-8") + b"\n" for record in records
        )
        self._writer.write(payload)
        await self._writer.drain()
        responses = []
        for _ in records:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            responses.append(json.loads(line))
        return responses

    # -- convenience verbs (raise ServerError on refusal) --------------------

    async def _checked(self, record: dict) -> dict:
        response = await self.request(record)
        if not response.get("ok"):
            raise ServerError(response)
        return response

    async def upsert(
        self,
        tenant: str,
        profile_id: str,
        attributes: list,
        *,
        source: int = 0,
    ) -> dict:
        return await self._checked(
            {
                "v": "upsert",
                "tenant": tenant,
                "id": profile_id,
                "attributes": attributes,
                "source": source,
            }
        )

    async def delete(
        self, tenant: str, profile_id: str, *, source: int = 0
    ) -> dict:
        return await self._checked(
            {"v": "delete", "tenant": tenant, "id": profile_id, "source": source}
        )

    async def query(
        self,
        tenant: str,
        profile_id: str,
        *,
        k: int | None = None,
        source: int = 0,
    ) -> list[dict]:
        record: dict = {
            "v": "query",
            "tenant": tenant,
            "id": profile_id,
            "source": source,
        }
        if k is not None:
            record["k"] = k
        response = await self._checked(record)
        return response["candidates"]

    async def snapshot(self, tenant: str) -> dict:
        return await self._checked({"v": "snapshot", "tenant": tenant})

    async def stats(self, tenant: str | None = None) -> dict:
        record: dict = {"v": "stats"}
        if tenant is not None:
            record["tenant"] = tenant
        response = await self._checked(record)
        return response["stats"]

    async def ping(self) -> bool:
        response = await self._checked({"v": "ping"})
        return bool(response.get("pong"))

    async def shutdown(self) -> dict:
        return await self._checked({"v": "shutdown"})
