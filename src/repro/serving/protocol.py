"""The serving wire protocol: JSON lines over a byte stream.

One request per line, one response line per request, answered in request
order per connection (clients may pipeline).  A request is a JSON object
with a ``"v"`` verb and, for tenant-scoped verbs, a ``"tenant"`` id::

    {"v": "upsert",   "tenant": "catalog-a", "id": "p1",
     "attributes": [["name", "John Abram"]], "source": 0}
    {"v": "delete",   "tenant": "catalog-a", "id": "p1"}
    {"v": "query",    "tenant": "catalog-a", "id": "p2", "k": 10}
    {"v": "snapshot", "tenant": "catalog-a"}
    {"v": "stats"}                      # global; add "tenant" for one
    {"v": "ping"}
    {"v": "shutdown"}                   # graceful drain + snapshot + exit

Any request may carry a ``"req"`` field; it is echoed verbatim in the
response so pipelining clients can match acknowledgements to requests.
Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": CODE,
"message": ...}`` with the error codes of :data:`ERROR_CODES` — most
importantly ``overloaded``, the backpressure signal: the tenant's write
queue is full and the client should back off and retry.

The profile payload (``id``/``source``/``attributes``) is exactly the
stream-record format of :mod:`repro.streaming.session`, so any stream
file can be replayed against a server line by line.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.data.io import profile_from_record
from repro.data.profile import EntityProfile

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "TENANT_ID_RE",
    "VERBS",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
]

#: Verbs the server understands.
VERBS = frozenset(
    {"upsert", "delete", "query", "snapshot", "stats", "ping", "shutdown"}
)

#: Verbs that must name a tenant.
TENANT_VERBS = frozenset({"upsert", "delete", "query", "snapshot"})

#: Error codes a response may carry.
ERROR_CODES = frozenset(
    {
        "bad_request",  # malformed JSON, unknown verb, invalid fields
        "overloaded",  # tenant write queue full — back off and retry
        "not_found",  # query for a profile id the tenant never indexed
        "shutting_down",  # server is draining; no new work accepted
        "internal",  # unexpected server-side failure (logged)
    }
)

#: Longest accepted request line; longer lines are a protocol error
#: (and bound per-connection buffering).
MAX_LINE_BYTES = 1 << 20

#: Tenant ids are path components on the server (snapshot/journal
#: directories), so they are restricted to a filesystem-safe alphabet.
TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ProtocolError(ValueError):
    """A request the server cannot honor; ``code`` names the error class."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    verb: str
    tenant: str | None = None
    profile_id: str | None = None
    source: int = 0
    k: int | None = None
    profile: EntityProfile | None = None  # upserts only
    #: Client correlation token, echoed in the response.
    req: object = None
    raw: dict = field(default_factory=dict, repr=False)


def validate_tenant_id(tenant: object) -> str:
    """*tenant* as a safe tenant id, or :class:`ProtocolError`."""
    if not isinstance(tenant, str) or not TENANT_ID_RE.match(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}: expected 1-64 characters of "
            "[A-Za-z0-9._-] starting with a letter or digit"
        )
    return tenant


def parse_request(line: bytes | str) -> Request:
    """Decode one request line; raises :class:`ProtocolError` on any defect."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8 ({exc})") from exc
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON ({exc})") from exc
    if not isinstance(record, dict):
        raise ProtocolError("request must be a JSON object")
    verb = record.get("v")
    if verb not in VERBS:
        raise ProtocolError(
            f"unknown verb {verb!r}; valid: {', '.join(sorted(VERBS))}"
        )
    req = record.get("req")
    tenant = None
    if verb in TENANT_VERBS or (verb == "stats" and "tenant" in record):
        tenant = validate_tenant_id(record.get("tenant"))
    source = record.get("source", 0)
    if source not in (0, 1):
        raise ProtocolError(f"source must be 0 or 1, got {source!r}")

    if verb == "upsert":
        try:
            profile = profile_from_record(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad upsert payload: {exc}") from exc
        return Request(
            verb, tenant, profile.profile_id, source, None, profile, req, record
        )
    if verb in ("delete", "query"):
        profile_id = record.get("id")
        if not isinstance(profile_id, str) or not profile_id:
            raise ProtocolError(f"{verb} requires a non-empty string 'id'")
        k = record.get("k")
        if k is not None and (not isinstance(k, int) or k < 1):
            raise ProtocolError(f"k must be a positive integer, got {k!r}")
        return Request(verb, tenant, profile_id, source, k, None, req, record)
    return Request(verb, tenant, None, source, None, None, req, record)


def ok_response(request: Request | None = None, **payload: object) -> dict:
    """A success response, echoing the request's correlation token."""
    response: dict = {"ok": True, **payload}
    if request is not None and request.req is not None:
        response["req"] = request.req
    return response


def error_response(
    code: str,
    message: str,
    request: Request | None = None,
) -> dict:
    """A failure response; *code* must be one of :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    response: dict = {"ok": False, "error": code, "message": message}
    if request is not None and request.req is not None:
        response["req"] = request.req
    return response


def encode(response: dict) -> bytes:
    """Serialize one response as a newline-terminated JSON line."""
    return json.dumps(response, ensure_ascii=False).encode("utf-8") + b"\n"
