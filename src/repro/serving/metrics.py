"""Observability for the serving layer: counters and latency rings.

Every tenant actor owns a :class:`TenantMetrics`; the server owns a
:class:`ServerMetrics` that aggregates them on demand.  Latency is held
in fixed-size :class:`LatencyRing` buffers — O(1) per sample, bounded
memory, percentile snapshots over the most recent window — so the
``stats`` verb and the periodic log line always report *recent* tails
rather than a lifetime average that hides regressions.

Pure stdlib (the serving layer must not drag numpy into its hot path for
bookkeeping); percentiles use the nearest-rank method over a sorted copy
of the window, computed only when a snapshot is requested.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = ["LatencyRing", "ServerMetrics", "TenantMetrics"]

#: Default number of samples a latency ring retains (the percentile window).
RING_CAPACITY = 2048


class LatencyRing:
    """A fixed-capacity ring of latency samples (seconds).

    ``record`` is O(1); ``percentiles`` sorts the current window (at most
    ``capacity`` samples) and reports nearest-rank p50/p95/p99 plus the
    window maximum, in milliseconds.
    """

    __slots__ = ("_samples", "_capacity", "_next", "count")

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        #: Lifetime number of samples recorded (window-independent).
        self.count = 0

    def record(self, seconds: float) -> None:
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity
        self.count += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentiles(self) -> dict[str, float]:
        """Nearest-rank p50/p95/p99/max over the window, in milliseconds.

        An empty ring reports zeros (a tenant that never served a request
        has no tail to speak of).
        """
        if not self._samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        ordered = sorted(self._samples)
        n = len(ordered)

        def rank(q: float) -> float:
            # Nearest-rank: the ceil(q*n)-th smallest sample, 1-based.
            index = max(0, min(n - 1, math.ceil(q * n) - 1))
            return ordered[index]

        return {
            "p50": round(rank(0.50) * 1e3, 4),
            "p95": round(rank(0.95) * 1e3, 4),
            "p99": round(rank(0.99) * 1e3, 4),
            "max": round(ordered[-1] * 1e3, 4),
        }


@dataclass
class TenantMetrics:
    """Counters and latency windows of one tenant."""

    upserts: int = 0
    deletes: int = 0
    queries: int = 0
    #: Write requests refused because the tenant queue was full.
    overloads: int = 0
    #: Batches the actor applied, and the operations they contained —
    #: ``batched_ops / batches`` is the observed mean batch size.
    batches: int = 0
    batched_ops: int = 0
    snapshots: int = 0
    #: Crash recoveries performed on attach (snapshot + journal tail).
    recoveries: int = 0
    #: Queue-time + apply-time of acknowledged writes.
    write_latency: LatencyRing = field(default_factory=LatencyRing)
    #: Service time of queries.
    query_latency: LatencyRing = field(default_factory=LatencyRing)

    @property
    def writes(self) -> int:
        return self.upserts + self.deletes

    def snapshot_dict(self, *, queue_depth: int = 0) -> dict:
        """The ``stats`` verb's per-tenant payload."""
        return {
            "upserts": self.upserts,
            "deletes": self.deletes,
            "queries": self.queries,
            "overloads": self.overloads,
            "batches": self.batches,
            "mean_batch_size": round(
                self.batched_ops / self.batches if self.batches else 0.0, 3
            ),
            "snapshots": self.snapshots,
            "recoveries": self.recoveries,
            "queue_depth": queue_depth,
            "write_latency_ms": self.write_latency.percentiles(),
            "query_latency_ms": self.query_latency.percentiles(),
        }


@dataclass
class ServerMetrics:
    """Process-global counters of the serving layer."""

    started_at: float = field(default_factory=time.monotonic)
    connections: int = 0
    requests: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    evictions: int = 0

    def snapshot_dict(self) -> dict:
        uptime = time.monotonic() - self.started_at
        return {
            "uptime_seconds": round(uptime, 3),
            "connections": self.connections,
            "requests": self.requests,
            "requests_per_second": round(
                self.requests / uptime if uptime > 0 else 0.0, 1
            ),
            "bad_requests": self.bad_requests,
            "internal_errors": self.internal_errors,
            "evictions": self.evictions,
        }
