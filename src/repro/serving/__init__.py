"""Multi-tenant serving layer over :class:`~repro.streaming.StreamingSession`.

An asyncio TCP server fronting many concurrent streaming sessions:

* :class:`TenantRegistry` — tenant id -> session + snapshot/journal
  paths, opened lazily with crash recovery on first touch, LRU-bounded
  residency;
* :class:`Tenant` — the per-tenant single-writer actor: a bounded write
  queue with explicit ``overloaded`` backpressure, write batching, and
  queries serialized between batches;
* :class:`ReproServer` — the JSON-lines-over-TCP front end
  (``repro serve``), with per-tenant and global observability and
  graceful drain-snapshot-close shutdown;
* :class:`ServingClient` — the reference client used by tests, the load
  benchmark, and the worked example.

See DESIGN.md ("Serving layer") for the tenant lifecycle state machine,
the backpressure contract, and recovery-on-attach semantics;
``examples/serving_multi_tenant.py`` walks two tenants through
upsert/query/kill/recover.
"""

from repro.serving.client import ServerError, ServingClient
from repro.serving.metrics import LatencyRing, ServerMetrics, TenantMetrics
from repro.serving.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    VERBS,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.server import ReproServer
from repro.serving.tenant import (
    Tenant,
    TenantClosedError,
    TenantOverloadedError,
    TenantRegistry,
)

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "LatencyRing",
    "ProtocolError",
    "ReproServer",
    "Request",
    "ServerError",
    "ServerMetrics",
    "ServingClient",
    "Tenant",
    "TenantClosedError",
    "TenantMetrics",
    "TenantOverloadedError",
    "TenantRegistry",
    "VERBS",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
]
