"""The serving front end: JSON-lines-over-TCP in front of a TenantRegistry.

One :class:`ReproServer` accepts many connections; each connection may
pipeline requests and receives responses in request order.  Request
handling is concurrent *within* a connection — every line becomes a
dispatch task immediately, and a per-connection responder awaits the
tasks in order — so a pipelining client can fill a tenant's write queue
and the tenant actor can batch, while acknowledgements still line up
with requests.

Failure mapping is total: every way a request can go wrong becomes one
of the protocol error codes (``bad_request``, ``overloaded``,
``not_found``, ``shutting_down``, ``internal``) rather than a dropped
connection.  Graceful shutdown — the ``shutdown`` verb or
SIGINT/SIGTERM — stops accepting, drains every tenant queue, snapshots
dirty tenants, and closes their journals; an *ungraceful* death (kill
fault, power cut) is recovered on next attach from snapshot + journal
tail, which the kill tests assert bit-identically.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal

from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.tenant import (
    TenantClosedError,
    TenantOverloadedError,
    TenantRegistry,
)

__all__ = ["ReproServer"]

logger = logging.getLogger("repro.serving")

#: Pipelined-but-unanswered requests allowed per connection before the
#: read loop stops pulling new lines off the socket.
MAX_PIPELINE_DEPTH = 1024


class ReproServer:
    """Asyncio TCP server multiplexing tenants of a :class:`TenantRegistry`."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        log_interval: float | None = 30.0,
    ) -> None:
        self.registry = registry
        self.metrics = registry.server_metrics
        self.host = host
        self._requested_port = port
        self.log_interval = log_interval
        self._server: asyncio.Server | None = None
        self._log_task: asyncio.Task | None = None
        self._shutdown_event = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting; returns once listening."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES + 2,
        )
        if self.log_interval is not None:
            self._log_task = asyncio.create_task(
                self._log_loop(), name="serving-log"
            )
        logger.info("serving on %s:%d", self.host, self.port)

    async def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Run until ``shutdown`` (verb or signal), then drain gracefully."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(sig, self._shutdown_event.set)
        await self._shutdown_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Ask the server to drain and exit (thread/signal safe to call)."""
        self._shutdown_event.set()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, flush every tenant, close up.

        Ordering matters: the listener closes first (no new connections),
        then the registry drains every tenant queue and snapshots dirty
        tenants (so queued-and-acknowledged writes are all durable), and
        only then are lingering connections torn down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._log_task is not None:
            self._log_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._log_task
            self._log_task = None
        await self.registry.close_all()
        # Teardown order across sockets has no observable effect.
        for writer in list(self._connections):  # repro-lint: disable=RL001
            writer.close()
        logger.info(
            "shutdown complete: %d requests served, %d tenants on disk",
            self.metrics.requests,
            len(self.registry.known_tenants()),
        )

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.connections += 1
        self._connections.add(writer)
        pending: asyncio.Queue[asyncio.Task | None] = asyncio.Queue(
            maxsize=MAX_PIPELINE_DEPTH
        )
        responder = asyncio.create_task(self._respond_loop(pending, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the stream limit; the connection's
                    # framing is unrecoverable after this — answer and stop.
                    await pending.put(
                        asyncio.create_task(self._overlong_line())
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break  # EOF
                if line.strip() == b"":
                    continue
                await pending.put(
                    asyncio.create_task(self._dispatch_safe(line))
                )
        finally:
            await pending.put(None)
            await responder
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(OSError):
                await writer.wait_closed()

    async def _respond_loop(
        self,
        pending: asyncio.Queue[asyncio.Task | None],
        writer: asyncio.StreamWriter,
    ) -> None:
        """Await dispatch tasks in arrival order and write their responses.

        Keeps consuming even after the client goes away (writes are
        skipped once the socket breaks) so every dispatched task is
        awaited and the read loop's sentinel always gets through.
        """
        broken = False
        while True:
            task = await pending.get()
            if task is None:
                return
            response = await task
            if broken:
                continue
            try:
                writer.write(encode(response))
                await writer.drain()
            except OSError:
                broken = True

    async def _overlong_line(self) -> dict:
        self.metrics.bad_requests += 1
        return error_response(
            "bad_request",
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_safe(self, line: bytes) -> dict:
        """One request line -> one response dict; never raises."""
        self.metrics.requests += 1
        request: Request | None = None
        try:
            request = parse_request(line)
            return await self._dispatch(request)
        except ProtocolError as exc:
            self.metrics.bad_requests += 1
            return error_response(exc.code, str(exc), request)
        except TenantOverloadedError as exc:
            return error_response("overloaded", str(exc), request)
        except TenantClosedError as exc:
            return error_response("shutting_down", str(exc), request)
        except KeyError as exc:
            return error_response(
                "not_found", exc.args[0] if exc.args else str(exc), request
            )
        except Exception as exc:
            self.metrics.internal_errors += 1
            logger.exception("internal error handling %s", request or line[:200])
            return error_response(
                "internal", f"{type(exc).__name__}: {exc}", request
            )

    async def _dispatch(self, request: Request) -> dict:
        verb = request.verb
        if verb == "ping":
            return ok_response(request, pong=True)
        if verb == "shutdown":
            self._shutdown_event.set()
            return ok_response(request, draining=True)
        if verb == "stats":
            return ok_response(
                request, stats=self.registry.stats(request.tenant)
            )
        assert request.tenant is not None  # parse_request guarantees it
        tenant = await self.registry.get(request.tenant)
        if verb in ("upsert", "delete"):
            result = await tenant.submit(request)
            return ok_response(request, **result)
        if verb == "query":
            assert request.profile_id is not None
            found = await tenant.query(
                request.profile_id, request.k, request.source
            )
            return ok_response(
                request,
                id=request.profile_id,
                candidates=[
                    {
                        "id": cand.profile_id,
                        "source": cand.source,
                        "weight": round(cand.weight, 6),
                    }
                    for cand in found
                ],
            )
        assert verb == "snapshot"
        await tenant.snapshot()
        return ok_response(request, snapshot=str(tenant.snapshot_path))

    # -- observability -------------------------------------------------------

    async def _log_loop(self) -> None:
        """The periodic operational log line."""
        assert self.log_interval is not None
        while True:
            await asyncio.sleep(self.log_interval)
            stats = self.registry.stats()
            totals = stats["totals"]
            server = stats["server"]
            logger.info(
                "serving: %d req (%.1f/s) | tenants %d resident / %d known | "
                "writes %d, queries %d, overloads %d, recoveries %d | "
                "queue depth %d | evictions %d",
                server["requests"],
                server["requests_per_second"],
                totals["tenants_resident"],
                totals["tenants_known"],
                totals["upserts"] + totals["deletes"],
                totals["queries"],
                totals["overloads"],
                totals["recoveries"],
                totals["queue_depth"],
                server["evictions"],
            )
