"""Supervised meta-blocking [Papadakis et al., PVLDB 2014] — the paper's
supervised comparator ("sup. MB" rows of Tables 4 and 5)."""

from repro.supervised.features import EDGE_FEATURE_NAMES, edge_features
from repro.supervised.metablocking import SupervisedMetaBlocking
from repro.supervised.svm import LinearSVM

__all__ = [
    "edge_features",
    "EDGE_FEATURE_NAMES",
    "LinearSVM",
    "SupervisedMetaBlocking",
]
