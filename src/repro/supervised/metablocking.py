"""Supervised meta-blocking: classify edges, keep the predicted matches.

Protocol of [Papadakis et al., PVLDB 2014] as used in the paper's
experiments: 10% of the ground-truth matches label the positive training
edges; an equal number of non-matching edges are sampled as negatives; a
linear SVM is trained over the five schema-agnostic edge features; the
retained edges are those classified positive — a WEP-style global decision
(the paper notes WNP is incompatible with the supervised setting because
the classifier's threshold is global).
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection
from repro.data.dataset import ERDataset
from repro.graph.blocking_graph import BlockingGraph, Edge
from repro.graph.metablocking import blocks_from_edges
from repro.supervised.features import edge_features
from repro.supervised.svm import LinearSVM
from repro.utils.rng import make_rng

import numpy as np


class SupervisedMetaBlocking:
    """The "sup. MB" comparator of Tables 4, 5.

    Parameters
    ----------
    training_fraction:
        Fraction of ground-truth matches used as positive examples (the
        paper uses 10%).
    negative_ratio:
        Negatives sampled per positive (1.0 = balanced, the usual setting).
    seed:
        Seed controlling the training sample and the SVM shuffling.
    """

    def __init__(
        self,
        training_fraction: float = 0.1,
        negative_ratio: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < training_fraction <= 1.0:
            raise ValueError("training_fraction must be in (0, 1]")
        if negative_ratio <= 0:
            raise ValueError("negative_ratio must be positive")
        self.training_fraction = training_fraction
        self.negative_ratio = negative_ratio
        self.seed = seed

    def run(self, collection: BlockCollection, dataset: ERDataset) -> BlockCollection:
        """Restructure *collection* with the trained edge classifier."""
        graph = BlockingGraph(collection)
        edges = [edge for edge, _ in graph.edges()]
        if not edges:
            return blocks_from_edges([], collection.is_clean_clean)
        features = edge_features(graph, edges)

        rng = make_rng(self.seed)
        truth = dataset.truth_pairs
        positive_rows = [row for row, edge in enumerate(edges) if edge in truth]
        negative_rows = [row for row, edge in enumerate(edges) if edge not in truth]
        if not positive_rows or not negative_rows:
            # Degenerate graph (no matches survived blocking, or no
            # negatives at all): nothing to learn, keep everything.
            return blocks_from_edges(edges, collection.is_clean_clean)

        n_pos = max(1, round(self.training_fraction * len(positive_rows)))
        n_neg = min(len(negative_rows), max(1, round(self.negative_ratio * n_pos)))
        pos_sample = rng.choice(len(positive_rows), size=n_pos, replace=False)
        neg_sample = rng.choice(len(negative_rows), size=n_neg, replace=False)
        train_rows = [positive_rows[i] for i in pos_sample] + [
            negative_rows[i] for i in neg_sample
        ]
        labels = np.array([1.0] * n_pos + [-1.0] * n_neg, dtype=np.float64)

        svm = LinearSVM(seed=self.seed)
        svm.fit(features[train_rows], labels)
        retained: list[Edge] = [
            edge
            for edge, prediction in zip(edges, svm.predict(features))
            if prediction > 0
        ]
        return blocks_from_edges(retained, collection.is_clean_clean)
