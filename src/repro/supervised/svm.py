"""A from-scratch linear SVM (Pegasos stochastic sub-gradient descent).

The paper's supervised comparator uses a Support Vector Machine; no ML
library is available offline, so this module implements the same model
class — a linear max-margin classifier with hinge loss and L2
regularization — via the Pegasos algorithm [Shalev-Shwartz et al., 2011].
Features are standardized internally; training is deterministic given the
seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


class LinearSVM:
    """Binary linear SVM trained with Pegasos SGD.

    Parameters
    ----------
    regularization:
        The lambda of the hinge objective; smaller fits the training data
        harder.
    epochs:
        Full passes over the training set.
    seed:
        Seed for the per-epoch shuffling.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 20,
        seed: int | None = None,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on *features* (n x d) and *labels* in {-1, +1} or {0, 1}."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("features/labels shape mismatch")
        y = np.where(y > 0, 1.0, -1.0)
        if np.unique(y).size < 2:
            raise ValueError("training data must contain both classes")

        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        X = (X - self._mean) / self._std

        rng = make_rng(self.seed)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        lam = self.regularization
        step = 0
        for _ in range(self.epochs):
            for idx in rng.permutation(n):
                step += 1
                eta = 1.0 / (lam * step)
                margin = y[idx] * (X[idx] @ w + b)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    w += eta * y[idx] * X[idx]
                    b += eta * y[idx]
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margins; positive means the positive class."""
        if self.weights is None:
            raise RuntimeError("fit() must be called before prediction")
        X = (np.asarray(features, dtype=float) - self._mean) / self._std
        return X @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(features) >= 0.0, 1, -1)
