"""Schema-agnostic edge features for supervised meta-blocking.

[Papadakis et al., PVLDB 2014] casts edge retention as binary classification
over a small vector of schema-agnostic features per edge:

* ``CF-IBF`` — co-occurrence frequency scaled by inverse block frequency of
  both endpoints (the ECBS quantity);
* ``RACCB`` — reciprocal aggregate cardinality of common blocks (the ARCS
  quantity: comparisons in small shared blocks are stronger evidence);
* ``JS``   — Jaccard coefficient of the endpoints' block sets;
* ``ND_u``, ``ND_v`` — normalized node degrees of the two endpoints.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.blocking_graph import BlockingGraph, Edge

EDGE_FEATURE_NAMES = ("cf_ibf", "raccb", "js", "nd_u", "nd_v")


def edge_features(graph: BlockingGraph, edges: list[Edge]) -> np.ndarray:
    """Feature matrix of shape ``(len(edges), 5)`` in EDGE_FEATURE_NAMES order."""
    total_blocks = max(1, graph.num_blocks)
    num_nodes = max(1, graph.num_nodes)
    degrees = graph.degrees
    out = np.zeros((len(edges), len(EDGE_FEATURE_NAMES)), dtype=float)
    for row, edge in enumerate(edges):
        i, j = edge
        stats = graph.stats(edge)
        shared = stats.shared_blocks
        blocks_i = graph.node_blocks[i]
        blocks_j = graph.node_blocks[j]
        cf_ibf = (
            shared
            * _safe_log(total_blocks / blocks_i)
            * _safe_log(total_blocks / blocks_j)
        )
        js = shared / (blocks_i + blocks_j - shared)
        out[row, 0] = cf_ibf
        out[row, 1] = stats.arcs_mass
        out[row, 2] = js
        out[row, 3] = degrees[i] / num_nodes
        out[row, 4] = degrees[j] / num_nodes
    return out


def _safe_log(value: float) -> float:
    if value <= 1.0:
        return 0.0
    return math.log10(value)
