"""Deterministic randomness.

Every stochastic component in the library (dataset generators, MinHash
permutations, SVM shuffling) draws from a generator produced here, so the
whole benchmark suite regenerates identical tables run after run.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20160812  # the paper's publication month, for flavor


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    ``None`` falls back to :data:`DEFAULT_SEED` rather than OS entropy:
    reproducibility is the default, opting *into* nondeterminism requires
    passing an explicit varying seed.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh child seed, for handing to an independent component."""
    return int(rng.integers(0, 2**63 - 1))
