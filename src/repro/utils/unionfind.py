"""Disjoint-set (union-find) with path compression and union by size.

Used for the connected-components step of attribute-match induction
(Algorithm 1, line 17) and for grouping matched profiles into entities in
the matching substrate.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint sets over arbitrary hashable items.

    Items are added lazily by :meth:`find`/:meth:`union`.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register *item* as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Representative of *item*'s set (registering it if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> None:
        """Merge the sets containing *a* and *b*."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def connected(self, a: T, b: T) -> bool:
        """Whether *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def components(self) -> list[set[T]]:
        """All sets, each as a plain ``set``, in deterministic order."""
        by_root: dict[T, set[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [by_root[root] for root in sorted(by_root, key=repr)]
