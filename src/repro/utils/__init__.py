"""Shared utilities: text transformation, deterministic RNG, timing."""

from repro.utils.rng import make_rng
from repro.utils.timer import Timer
from repro.utils.tokenize import normalize, qgrams, tokenize

__all__ = ["make_rng", "Timer", "normalize", "qgrams", "tokenize"]
