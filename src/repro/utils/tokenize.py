"""Value transformation functions (the paper's tau, Section 2.1).

The paper treats each attribute value through a *value transformation
function* tau that maps raw strings to a set of terms.  Token Blocking uses
whitespace/punctuation tokenization; the q-grams blocking baseline uses
character q-grams.  All blocking keys flow through :func:`normalize` first so
that case and punctuation differences never split a block.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterable, Iterator

_TOKEN_RE = re.compile(r"[\W_]+", re.UNICODE)

#: Tokens shorter than this carry almost no discriminating power and are
#: dropped by default (single characters, stray punctuation remnants).
MIN_TOKEN_LENGTH = 2


def normalize(value: str) -> str:
    """NFKC-fold, lower-case, and collapse non-alphanumeric runs to spaces.

    Unicode NFKC compatibility normalization runs *before* casefolding so
    visually-identical spellings — full-width digits, ligatures, circled
    letters — land on the same blocking key instead of splitting a block.

    >>> normalize("Abram St. 30, NY ")
    'abram st 30 ny'
    >>> normalize("３０ Abram")  # full-width "30"
    '30 abram'
    """
    return _TOKEN_RE.sub(
        " ", unicodedata.normalize("NFKC", value).casefold()
    ).strip()


def tokenize(value: str, min_length: int = MIN_TOKEN_LENGTH) -> list[str]:
    """Split *value* into normalized tokens of at least *min_length* chars.

    This is the paper's default tau: plain tokenization.  Duplicate tokens
    within one value are preserved (entropy extraction needs frequencies);
    callers that need a set can wrap the result in ``set()``.

    >>> tokenize("Abram St. 30 NY")
    ['abram', 'st', '30', 'ny']
    """
    return [t for t in normalize(value).split() if len(t) >= min_length]


def token_set(values: Iterable[str], min_length: int = MIN_TOKEN_LENGTH) -> set[str]:
    """Union of tokens over several raw values."""
    out: set[str] = set()
    for value in values:
        out.update(tokenize(value, min_length))
    return out


def qgrams(value: str, q: int = 3) -> list[str]:
    """Character q-grams of the normalized *value* (q-grams blocking [9]).

    Values shorter than *q* yield the whole normalized string, so short but
    meaningful values (e.g. ``"ny"``) still produce one blocking key.

    >>> qgrams("abcd", q=3)
    ['abc', 'bcd']
    """
    if q < 1:
        raise ValueError(f"q must be positive, got {q}")
    text = normalize(value).replace(" ", "")
    if not text:
        return []
    if len(text) <= q:
        return [text]
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def suffixes(value: str, min_length: int = 4) -> Iterator[str]:
    """All suffixes of each token of *value* with at least *min_length* chars.

    Used by the suffix-array blocking baseline [7]: a token contributes every
    sufficiently long suffix as a blocking key, which tolerates prefix typos.
    """
    for token in tokenize(value, min_length=1):
        if len(token) < min_length:
            if token:
                yield token
            continue
        for start in range(len(token) - min_length + 1):
            yield token[start:]
