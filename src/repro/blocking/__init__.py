"""Redundancy-based blocking and block post-processing."""

from repro.blocking.base import Block, BlockCollection
from repro.blocking.canopy import CanopyBlocking
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.blocking.qgrams import QGramsBlocking
from repro.blocking.schema_aware import LooselySchemaAwareBlocking
from repro.blocking.standard import StandardBlocking
from repro.blocking.suffix_array import SuffixArrayBlocking
from repro.blocking.token import TokenBlocking

__all__ = [
    "Block",
    "BlockCollection",
    "TokenBlocking",
    "StandardBlocking",
    "QGramsBlocking",
    "SuffixArrayBlocking",
    "CanopyBlocking",
    "LooselySchemaAwareBlocking",
    "block_purging",
    "block_filtering",
]
