"""Token Blocking [Papadakis et al., TKDE 2013] — the paper's Section 3.2.

The most general schema-agnostic technique: every token appearing anywhere in
a profile's values is a blocking key, regardless of the attribute it appears
in.  High recall, low precision — exactly the redundancy the meta-blocking
phase is designed to exploit.

Keys are derived from the dataset's interned corpus by default (token-id
arrays, one shared tokenization pass); ``interned=False`` keeps the
string-era reference path, which the equivalence suite and the phase
benchmark compare against.
"""

from __future__ import annotations

from repro.blocking._interned import collection_from_assignments
from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.utils.tokenize import MIN_TOKEN_LENGTH


class TokenBlocking:
    """Schema-agnostic token blocking.

    Parameters
    ----------
    min_token_length:
        Tokens shorter than this are not used as blocking keys.
    interned:
        Derive keys from the dataset's :class:`~repro.data.InternedCorpus`
        (default) or re-tokenize through the legacy string path.
    """

    def __init__(self, min_token_length: int = 2, interned: bool = True) -> None:
        self.min_token_length = min_token_length
        self.interned = interned

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the token block collection."""
        if self.interned:
            return self._build_interned(dataset)
        if dataset.is_clean_clean:
            return self._build_clean_clean(dataset)
        return self._build_dirty(dataset)

    def _build_interned(self, dataset: ERDataset) -> BlockCollection:
        corpus = dataset.corpus
        # EntityProfile.tokens() applies the default length floor before a
        # blocker ever sees a token, so the effective floor is the max.
        rows, toks = corpus.distinct_profile_tokens(
            max(self.min_token_length, MIN_TOKEN_LENGTH)
        )
        return collection_from_assignments(
            rows,
            toks,
            key_of=corpus.dictionary.token_of,
            is_clean_clean=dataset.is_clean_clean,
            offset2=corpus.offset2,
        )

    def _tokens_of(self, dataset: ERDataset, global_index: int) -> set[str]:
        profile = dataset.profile(global_index)
        return {
            token
            for token in profile.tokens()
            if len(token) >= self.min_token_length
        }

    def _build_clean_clean(self, dataset: ERDataset) -> BlockCollection:
        keyed: dict[str, tuple[set[int], set[int]]] = {}
        for gidx, _ in dataset.iter_profiles():
            side = dataset.source_of(gidx)
            for token in self._tokens_of(dataset, gidx):
                entry = keyed.get(token)
                if entry is None:
                    entry = (set(), set())
                    keyed[token] = entry
                entry[side].add(gidx)
        return build_blocks(keyed, is_clean_clean=True)

    def _build_dirty(self, dataset: ERDataset) -> BlockCollection:
        keyed: dict[str, set[int]] = {}
        for gidx, _ in dataset.iter_profiles():
            for token in self._tokens_of(dataset, gidx):
                keyed.setdefault(token, set()).add(gidx)
        return build_blocks(keyed, is_clean_clean=False)
