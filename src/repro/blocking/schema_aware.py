"""Loosely schema-aware Token Blocking (the paper's Phase 2, Figure 2).

Identical to Token Blocking except that each blocking key is disambiguated by
the attribute cluster it originates from: token ``abram`` occurring in a
person-name attribute and in a street attribute yields the distinct keys
``abram#1`` and ``abram#2``, splitting the block and removing superfluous
cross-role comparisons before meta-blocking even starts.
"""

from __future__ import annotations

import numpy as np

from repro.blocking._interned import (
    collection_from_assignments,
    group_assignments,
    packed_key_of,
)
from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.data.profile import EntityProfile
from repro.schema.partition import AttributePartitioning
from repro.utils.tokenize import MIN_TOKEN_LENGTH

#: Separator between token and cluster id in disambiguated keys.  Chosen
#: outside the normalized-token alphabet so keys can be split back apart.
KEY_SEPARATOR = "#"


def profile_blocking_keys(
    profile: EntityProfile,
    source: int,
    partitioning: AttributePartitioning | None = None,
    min_token_length: int = 2,
    transformation: str = "token",
    q: int = 3,
) -> set[str]:
    """The blocking keys of one profile, batch- and stream-identical.

    With a *partitioning* this is the disambiguated key set of
    :class:`LooselySchemaAwareBlocking` (``token#cluster``); without one it
    degenerates to the schema-agnostic Token Blocking key set.  The
    streaming :class:`repro.streaming.IncrementalBlockIndex` calls this same
    function, so an incrementally built index agrees key-for-key with the
    batch blockers.
    """
    keys: set[str] = set()
    if partitioning is None:
        for token in profile.tokens():
            if len(token) < min_token_length:
                continue
            keys.update(_transform(token, transformation, q))
        return keys
    for attribute, tokens in profile.tokens_by_attribute().items():
        cluster = partitioning.cluster_of(source, attribute)
        if cluster is None:
            continue  # no glue cluster: attribute's tokens are dropped
        for token in tokens:
            if len(token) < min_token_length:
                continue
            for term in _transform(token, transformation, q):
                keys.add(f"{term}{KEY_SEPARATOR}{cluster}")
    return keys


def _transform(token: str, transformation: str, q: int) -> list[str]:
    if transformation == "token":
        return [token]
    from repro.utils.tokenize import qgrams

    return qgrams(token, q)


def split_key(key: str) -> tuple[str, int]:
    """Inverse of the key construction: ``"abram#2" -> ("abram", 2)``."""
    token, _, cluster = key.rpartition(KEY_SEPARATOR)
    return token, int(cluster)


def make_key_entropy(partitioning: AttributePartitioning):
    """Blocking-key -> aggregate-entropy function for the blocking graph.

    Maps each disambiguated key (``token#cluster``) to the aggregate entropy
    of its attribute cluster, i.e. the ``h(b_i)`` of Section 3.1.3.  Pass the
    result as ``key_entropy`` to :class:`repro.graph.BlockingGraph` or
    :class:`repro.graph.MetaBlocker`.
    """

    def key_entropy(key: str) -> float:
        _, cluster = split_key(key)
        return partitioning.entropy_of(cluster)

    return key_entropy


class LooselySchemaAwareBlocking:
    """Token Blocking with blocking keys disambiguated by attribute cluster.

    Parameters
    ----------
    partitioning:
        The attributes partitioning produced by LMI or Attribute Clustering.
        Attributes it does not cover fall into the glue cluster if the
        partitioning has one, otherwise their tokens are skipped (this is the
        no-glue mode the Figure 10 experiment relies on).
    min_token_length:
        Tokens shorter than this are not used as blocking keys.
    transformation:
        ``"token"`` (the paper's default) or ``"qgram"`` — Section 3.2 notes
        other key derivations, e.g. character q-grams, adapt to the same
        disambiguation scheme.
    q:
        Gram length when ``transformation="qgram"``.
    interned:
        Derive keys from the dataset's :class:`~repro.data.InternedCorpus`
        (default) or re-tokenize through the legacy string path.
    """

    def __init__(
        self,
        partitioning: AttributePartitioning,
        min_token_length: int = 2,
        transformation: str = "token",
        q: int = 3,
        interned: bool = True,
    ) -> None:
        if transformation not in ("token", "qgram"):
            raise ValueError(
                f"transformation must be 'token' or 'qgram', got {transformation!r}"
            )
        if q < 2:
            raise ValueError(f"q must be at least 2, got {q}")
        self.partitioning = partitioning
        self.min_token_length = min_token_length
        self.transformation = transformation
        self.q = q
        self.interned = interned

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the disambiguated block collection."""
        if self.interned:
            return self._build_interned(dataset)
        if dataset.is_clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for gidx, profile in dataset.iter_profiles():
                side = dataset.source_of(gidx)
                for key in self._keys_of(profile, side):
                    entry = keyed_cc.get(key)
                    if entry is None:
                        entry = (set(), set())
                        keyed_cc[key] = entry
                    entry[side].add(gidx)
            return build_blocks(keyed_cc, is_clean_clean=True)

        keyed: dict[str, set[int]] = {}
        for gidx, profile in dataset.iter_profiles():
            for key in self._keys_of(profile, 0):
                keyed.setdefault(key, set()).add(gidx)
        return build_blocks(keyed, is_clean_clean=False)

    def _keys_of(self, profile, source: int) -> set[str]:
        return profile_blocking_keys(
            profile,
            source,
            self.partitioning,
            min_token_length=self.min_token_length,
            transformation=self.transformation,
            q=self.q,
        )

    # -- interned (corpus) path ---------------------------------------------

    def _build_interned(self, dataset: ERDataset) -> BlockCollection:
        """Disambiguated keys as ``(term_id, cluster_id)`` pairs.

        Keys live as packed integer codes (``term * C + cluster``) through
        dedup/grouping and become ``token#cluster`` strings only once per
        distinct surviving key.
        """
        corpus = dataset.corpus
        partitioning = self.partitioning
        cluster_map = np.fromiter(
            (
                -1 if cluster is None else cluster
                for cluster in (
                    partitioning.cluster_of(source, name)
                    for source, name in corpus.attributes
                )
            ),
            dtype=np.int64,
            count=len(corpus.attributes),
        )
        num_codes = np.int64(
            max(partitioning.cluster_ids, default=0) + 1
        )

        clusters = (
            cluster_map[corpus.attr_ids]
            if corpus.attr_ids.size
            else np.zeros(0, dtype=np.int64)
        )
        floor = max(self.min_token_length, MIN_TOKEN_LENGTH)
        mask = (clusters >= 0) & (
            corpus.token_lengths[corpus.token_ids] >= floor
        )
        rows = corpus.occurrence_rows[mask]
        toks = corpus.token_ids[mask].astype(np.int64)
        clusters = clusters[mask]

        if self.transformation == "token":
            terms = corpus.dictionary
            codes = toks * num_codes + clusters
        else:
            # Deduplicate (row, token, cluster) before the q-gram
            # expansion so each distinct assignment expands once.
            group_codes, starts, sizes, members = group_assignments(
                rows, toks * num_codes + clusters
            )
            pair_codes = np.repeat(group_codes, sizes)
            table = corpus.qgram_table(self.q)
            rows, grams, positions = corpus.expand_tokens(
                members, pair_codes // num_codes, table
            )
            terms = table[0]
            codes = grams * num_codes + (pair_codes % num_codes)[positions]

        return collection_from_assignments(
            rows,
            codes,
            key_of=packed_key_of(terms.token_of, int(num_codes), KEY_SEPARATOR),
            is_clean_clean=dataset.is_clean_clean,
            offset2=corpus.offset2,
        )
