"""Block Filtering [Papadakis et al., EDBT 2016] — Section 4.1 of the paper.

A light-weight, schema-free pre-meta-blocking step: each profile stays only
in the most significant fraction of its blocks (the smallest ones, since
small blocks carry more discriminating keys).  The paper filters out the 20%
least significant blocks per profile (footnote 9).
"""

from __future__ import annotations

import math

from repro.blocking.base import Block, BlockCollection


def block_filtering(
    collection: BlockCollection, ratio: float = 0.8
) -> BlockCollection:
    """Retain each profile in the ``ceil(ratio * |B_i|)`` smallest of its blocks.

    Parameters
    ----------
    collection:
        The block collection to restructure.
    ratio:
        Fraction of blocks each profile is kept in (0 < ratio <= 1).  The
        paper's default keeps 80%.

    Returns
    -------
    BlockCollection
        A new collection in which every block retains only the memberships
        that survived filtering; blocks left without any comparison are
        dropped.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")

    # Rank each profile's blocks by ascending size (ties broken by position
    # for determinism) and mark the retained (profile, block) memberships.
    sizes = [block.size for block in collection]
    retained: dict[int, set[int]] = {}  # block position -> kept profiles
    for profile, positions in collection.profile_block_sets.items():
        ranked = sorted(positions, key=lambda pos: (sizes[pos], pos))
        keep = math.ceil(ratio * len(ranked))
        for pos in ranked[:keep]:
            retained.setdefault(pos, set()).add(profile)

    blocks: list[Block] = []
    for position, block in enumerate(collection):
        kept = retained.get(position)
        if not kept:
            continue
        if collection.is_clean_clean:
            left = frozenset(block.left & kept)
            right = frozenset((block.right or frozenset()) & kept)
            if left and right:
                blocks.append(Block(block.key, left, right))
        else:
            members = frozenset(block.left & kept)
            if len(members) >= 2:
                blocks.append(Block(block.key, members))
    return BlockCollection(blocks, collection.is_clean_clean)
