"""Schema-based Standard Blocking [Christen, TKDE 2012].

The classic comparator of Section 4.1 ("Blast vs. Schema-based Blocking"):
blocking keys are derived from *aligned* attributes, so it needs a schema
mapping between the two sources — exactly the manual effort BLAST's loose
attribute-match induction replaces.

Two key modes are provided:

* ``"value"`` — the whole normalized attribute value is the key (classic
  Standard Blocking);
* ``"token"`` — each token of the value is a key, disambiguated by the
  aligned attribute group.  Footnote 10 of the paper notes this variant is
  Token Blocking exploiting the schema mapping, and it is the one that makes
  Standard Blocking comparable with (and, on fully mappable data, identical
  to) BLAST's loosely schema-aware blocking.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.blocking._interned import collection_from_assignments, packed_key_of
from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.data.profile import EntityProfile
from repro.utils.tokenize import MIN_TOKEN_LENGTH, normalize, tokenize


class StandardBlocking:
    """Blocking on manually aligned attributes.

    Parameters
    ----------
    alignment:
        For clean-clean ER, a mapping ``attribute_in_E1 -> attribute_in_E2``.
        For dirty ER, pass the attributes to block on as a mapping of each
        attribute name to itself (or use :meth:`for_dirty`).
    key_mode:
        ``"value"`` or ``"token"`` (see module docstring).
    interned:
        ``"token"`` keys derive from the dataset's interned corpus by
        default; ``"value"`` keys are whole normalized values, which the
        token-level corpus cannot express, so that mode always takes the
        string path.
    """

    def __init__(
        self,
        alignment: Mapping[str, str],
        key_mode: str = "value",
        interned: bool = True,
    ) -> None:
        if key_mode not in ("value", "token"):
            raise ValueError(f"unknown key_mode {key_mode!r}")
        if not alignment:
            raise ValueError("alignment must map at least one attribute")
        self.alignment = dict(alignment)
        self.key_mode = key_mode
        self.interned = interned

    @classmethod
    def for_dirty(
        cls, attributes: Sequence[str], key_mode: str = "value"
    ) -> "StandardBlocking":
        """Convenience constructor for single-source (dirty) blocking."""
        return cls({name: name for name in attributes}, key_mode=key_mode)

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* on the aligned attributes."""
        if self.interned and self.key_mode == "token":
            return self._build_interned(dataset)
        if dataset.is_clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for gidx, profile in dataset.iter_profiles():
                side = dataset.source_of(gidx)
                for key in self._keys_of(profile, side):
                    entry = keyed_cc.get(key)
                    if entry is None:
                        entry = (set(), set())
                        keyed_cc[key] = entry
                    entry[side].add(gidx)
            return build_blocks(keyed_cc, is_clean_clean=True)

        keyed: dict[str, set[int]] = {}
        for gidx, profile in dataset.iter_profiles():
            for key in self._keys_of(profile, 0):
                keyed.setdefault(key, set()).add(gidx)
        return build_blocks(keyed, is_clean_clean=False)

    def _build_interned(self, dataset: ERDataset) -> BlockCollection:
        """Token-mode keys (``token@group``) from the interned corpus.

        Groups are walked one by one (alignments are tiny) because two
        alignment entries may legally share an attribute name, making the
        attribute -> group relation a multimap.
        """
        corpus = dataset.corpus
        lengths_ok = corpus.token_lengths[corpus.token_ids] >= MIN_TOKEN_LENGTH
        groups = sorted(self.alignment.items())
        num_groups = np.int64(len(groups))
        row_chunks: list[np.ndarray] = []
        code_chunks: list[np.ndarray] = []
        for group, (attr1, attr2) in enumerate(groups):
            wanted = {corpus.attr_id_of(0, attr1), corpus.attr_id_of(1, attr2)}
            wanted.discard(None)
            if not wanted:
                continue
            mask = np.isin(
                corpus.attr_ids, np.fromiter(sorted(wanted), dtype=np.int32)
            )
            mask &= lengths_ok
            row_chunks.append(corpus.occurrence_rows[mask])
            code_chunks.append(
                corpus.token_ids[mask].astype(np.int64) * num_groups + group
            )
        rows = (
            np.concatenate(row_chunks)
            if row_chunks
            else np.zeros(0, dtype=np.int64)
        )
        codes = (
            np.concatenate(code_chunks)
            if code_chunks
            else np.zeros(0, dtype=np.int64)
        )
        return collection_from_assignments(
            rows,
            codes,
            key_of=packed_key_of(
                corpus.dictionary.token_of, int(num_groups), "@"
            ),
            is_clean_clean=dataset.is_clean_clean,
            offset2=corpus.offset2,
        )

    def _keys_of(self, profile: EntityProfile, side: int) -> set[str]:
        keys: set[str] = set()
        for group, (attr1, attr2) in enumerate(sorted(self.alignment.items())):
            attribute = attr1 if side == 0 else attr2
            for value in profile.values(attribute):
                if self.key_mode == "value":
                    normalized = normalize(value)
                    if normalized:
                        keys.add(f"{normalized}@{group}")
                else:
                    for token in tokenize(value):
                        keys.add(f"{token}@{group}")
        return keys
