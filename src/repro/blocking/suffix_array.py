"""Suffix-array blocking [de Vries et al., TKDD 2011].

Related-work baseline (Section 5): each sufficiently long suffix of each
token is a blocking key, and oversized blocks — suffixes shared by too many
profiles — are discarded, which is the technique's built-in frequency
pruning.

The interned path expands each *distinct* token's suffixes exactly once
through the corpus suffix table and drops oversized groups array-side
before any block object is materialized.
"""

from __future__ import annotations

from repro.blocking._interned import collection_from_assignments
from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.utils.tokenize import suffixes


class SuffixArrayBlocking:
    """Blocking on token suffixes with a maximum block size.

    Parameters
    ----------
    min_suffix_length:
        Shortest suffix used as a key.
    max_block_size:
        Blocks with more member profiles than this are dropped (the
        suffix-array equivalent of purging stop-word keys).
    interned:
        Derive keys from the dataset's :class:`~repro.data.InternedCorpus`
        (default) or re-tokenize through the legacy string path.
    """

    def __init__(
        self,
        min_suffix_length: int = 4,
        max_block_size: int = 50,
        interned: bool = True,
    ) -> None:
        if min_suffix_length < 1:
            raise ValueError("min_suffix_length must be positive")
        if max_block_size < 2:
            raise ValueError("max_block_size must allow at least one pair")
        self.min_suffix_length = min_suffix_length
        self.max_block_size = max_block_size
        self.interned = interned

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the suffix block collection."""
        if self.interned:
            return self._build_interned(dataset)
        if dataset.is_clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for gidx, profile in dataset.iter_profiles():
                side = dataset.source_of(gidx)
                for key in self._keys_of(profile):
                    entry = keyed_cc.get(key)
                    if entry is None:
                        entry = (set(), set())
                        keyed_cc[key] = entry
                    entry[side].add(gidx)
            collection = build_blocks(keyed_cc, is_clean_clean=True)
        else:
            keyed: dict[str, set[int]] = {}
            for gidx, profile in dataset.iter_profiles():
                for key in self._keys_of(profile):
                    keyed.setdefault(key, set()).add(gidx)
            collection = build_blocks(keyed, is_clean_clean=False)
        return collection.filter_blocks(
            lambda block: block.size <= self.max_block_size
        )

    def _build_interned(self, dataset: ERDataset) -> BlockCollection:
        corpus = dataset.corpus
        # suffixes() tokenizes with min_length=1, so every token expands.
        rows, toks = corpus.distinct_profile_tokens(1)
        table = corpus.suffix_table(self.min_suffix_length)
        rows, suffix_ids, _ = corpus.expand_tokens(rows, toks, table)
        return collection_from_assignments(
            rows,
            suffix_ids,
            key_of=table[0].token_of,
            is_clean_clean=dataset.is_clean_clean,
            offset2=corpus.offset2,
            max_block_size=self.max_block_size,
        )

    def _keys_of(self, profile) -> set[str]:
        keys: set[str] = set()
        for _, value in profile.iter_pairs():
            keys.update(suffixes(value, self.min_suffix_length))
        return keys
