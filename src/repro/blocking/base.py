"""Blocks and block collections.

A *block* groups profiles that share a blocking key; a *block collection*
(the paper's ``B``) is the set of blocks a blocking technique emits.  Profiles
are referenced by their global indices (see :class:`repro.data.ERDataset`).

Clean-clean blocks keep the two sources separate (``left`` from E1, ``right``
from E2) because only cross-source pairs are comparisons; dirty blocks have a
single member set (``right is None``).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from functools import cached_property


@dataclass(frozen=True, slots=True)
class Block:
    """One block: a key and the member profiles it indexes.

    Attributes
    ----------
    key:
        The blocking key (token, q-gram, suffix, or ``token#cluster``).
    left:
        Global indices of the members from E1 (all members, for dirty ER).
    right:
        Global indices of the members from E2, or ``None`` for dirty ER.
    """

    key: str
    left: frozenset[int]
    right: frozenset[int] | None = None
    # Lazily-filled cache of the sorted member tuples (a block is
    # immutable, so iter_pairs would otherwise re-sort on every call —
    # a hot path when large blocks are enumerated repeatedly).  Excluded
    # from __eq__/__hash__/repr; written via object.__setattr__ because
    # the dataclass is frozen.
    _sorted_members: tuple[tuple[int, ...], tuple[int, ...] | None] | None = (
        field(default=None, init=False, repr=False, compare=False)
    )

    @property
    def is_clean_clean(self) -> bool:
        return self.right is not None

    @property
    def profiles(self) -> frozenset[int]:
        """All member profiles, regardless of source."""
        if self.right is None:
            return self.left
        return self.left | self.right

    @property
    def size(self) -> int:
        """Number of member profiles."""
        return len(self.left) + (len(self.right) if self.right else 0)

    @property
    def num_comparisons(self) -> int:
        """``||b||``: comparisons the block entails (Section 2)."""
        if self.right is not None:
            return len(self.left) * len(self.right)
        n = len(self.left)
        return n * (n - 1) // 2

    def _pair_order(self) -> tuple[tuple[int, ...], tuple[int, ...] | None]:
        """The member sets as sorted tuples, computed once per block."""
        cached = self._sorted_members
        if cached is None:
            cached = (
                tuple(sorted(self.left)),
                tuple(sorted(self.right)) if self.right is not None else None,
            )
            object.__setattr__(self, "_sorted_members", cached)
        return cached

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        """Yield the comparison pairs as canonical ``(i, j)`` with ``i < j``,
        in lexicographic order.

        For clean-clean blocks global indexing already guarantees every E1
        index is smaller than every E2 index.  Both member sets are sorted
        before iteration (RL001): frozenset order depends on insertion
        history, so yielding raw set order would stream the same block's
        pairs differently between equal collections built along different
        paths (e.g. batch vs snapshot-restored).  The sorted tuples are
        cached on the (immutable) block, so repeated enumeration pays the
        O(n log n) sort only once.
        """
        left, right = self._pair_order()
        if right is not None:
            for i in left:
                for j in right:
                    yield (i, j)
        else:
            yield from itertools.combinations(left, 2)


class BlockCollection(Sequence[Block]):
    """An ordered collection of blocks emitted by one blocking technique."""

    def __init__(self, blocks: Iterable[Block], is_clean_clean: bool) -> None:
        self.is_clean_clean = is_clean_clean
        self._blocks: list[Block] = []
        for block in blocks:
            if block.is_clean_clean != is_clean_clean:
                raise ValueError(
                    f"block {block.key!r} kind does not match the collection"
                )
            self._blocks.append(block)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index):  # type: ignore[override]
        return self._blocks[index]

    def __repr__(self) -> str:
        return (
            f"BlockCollection(blocks={len(self)}, "
            f"comparisons={self.aggregate_cardinality})"
        )

    @cached_property
    def aggregate_cardinality(self) -> int:
        """``||B||``: total comparisons across all blocks (with redundancy)."""
        return sum(block.num_comparisons for block in self._blocks)

    @cached_property
    def profile_block_sets(self) -> dict[int, frozenset[int]]:
        """``B_i`` for every profile: the set of block positions containing it."""
        mutable: dict[int, set[int]] = {}
        for position, block in enumerate(self._blocks):
            for profile in block.profiles:
                mutable.setdefault(profile, set()).add(position)
        return {profile: frozenset(s) for profile, s in mutable.items()}

    @property
    def num_indexed_profiles(self) -> int:
        """How many distinct profiles appear in at least one block."""
        return len(self.profile_block_sets)

    @cached_property
    def entity_index(self):
        """CSR array view of the collection (cached).

        The flat ``block_ptr``/``entity_ids``/cardinality arrays the
        vectorized meta-blocking backend and the pair-streaming helpers
        operate on; see :class:`repro.graph.entity_index.EntityIndex`.
        """
        from repro.graph.entity_index import EntityIndex

        return EntityIndex.from_collection(self)

    def iter_distinct_pairs(self) -> Iterator[tuple[int, int]]:
        """Stream the distinct comparison pairs in lexicographic order.

        Deduplication happens array-side when this method is *called*
        (one enumeration + sort, transiently O(||B||) array memory, a
        fraction of a Python set of tuples); the returned iterator then
        yields without further per-pair work.  Prefer this over
        :meth:`distinct_pairs` whenever a single pass is enough
        (matching, counting, writing pairs out).
        """
        src, dst = self.entity_index.distinct_pair_arrays()

        def generate() -> Iterator[tuple[int, int]]:
            chunk = 1 << 16
            for start in range(0, len(src), chunk):
                yield from zip(
                    src[start : start + chunk].tolist(),
                    dst[start : start + chunk].tolist(),
                )

        return generate()

    def count_distinct_pairs(self) -> int:
        """Number of distinct comparison pairs, without a Python pair set.

        Still enumerates every comparison array-side (transiently
        O(||B||) memory, like :meth:`iter_distinct_pairs`) — cheaper than
        a set of tuples by a large constant factor, not asymptotically.
        """
        return len(self.entity_index.distinct_pair_arrays()[0])

    def distinct_pairs(self) -> set[tuple[int, int]]:
        """All distinct comparison pairs implied by the collection.

        Materializes the pair set — only call when set semantics are
        actually needed; :meth:`iter_distinct_pairs` streams the same
        pairs and :meth:`count_distinct_pairs` counts them.
        """
        return set(self.iter_distinct_pairs())

    def filter_blocks(self, predicate: Callable[[Block], bool]) -> "BlockCollection":
        """A new collection keeping only blocks satisfying *predicate*."""
        return BlockCollection(
            (block for block in self._blocks if predicate(block)),
            self.is_clean_clean,
        )


def build_blocks(
    keyed_members: dict[str, tuple[set[int], set[int]]] | dict[str, set[int]],
    is_clean_clean: bool,
) -> BlockCollection:
    """Assemble a :class:`BlockCollection` from a key -> members mapping.

    Blocks that imply no comparison (single-member dirty blocks, clean-clean
    blocks missing one side) are dropped here, once, instead of in every
    blocker.  Keys are emitted in sorted order for determinism.
    """
    blocks: list[Block] = []
    for key in sorted(keyed_members):
        members = keyed_members[key]
        if is_clean_clean:
            left, right = members  # type: ignore[misc]
            if left and right:
                blocks.append(Block(key, frozenset(left), frozenset(right)))
        else:
            group = members  # type: ignore[assignment]
            if len(group) >= 2:
                blocks.append(Block(key, frozenset(group)))
    return BlockCollection(blocks, is_clean_clean)
