"""Block Purging [Papadakis et al., TKDE 2013] — Section 4.1 of the paper.

Discards blocks corresponding to extremely frequent blocking keys (stop
words and the like): the paper's formulation drops every block containing
more than half of the profiles in the collection.  An optional comparison
cap lets callers additionally bound per-block cost.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection


def block_purging(
    collection: BlockCollection,
    num_profiles: int,
    max_profile_ratio: float = 0.5,
    max_comparisons: int | None = None,
) -> BlockCollection:
    """Remove oversized blocks from *collection*.

    Parameters
    ----------
    collection:
        The block collection to purge.
    num_profiles:
        Total profiles in the underlying dataset (both sources).
    max_profile_ratio:
        Blocks whose member count exceeds ``ratio * num_profiles`` are
        dropped; the paper uses one half.
    max_comparisons:
        If given, blocks implying more comparisons than this are also
        dropped.

    Returns
    -------
    BlockCollection
        A new collection; the input is never mutated.
    """
    if not 0.0 < max_profile_ratio <= 1.0:
        raise ValueError(f"max_profile_ratio must be in (0, 1], got {max_profile_ratio}")
    if num_profiles <= 0:
        raise ValueError(f"num_profiles must be positive, got {num_profiles}")
    size_cap = max_profile_ratio * num_profiles

    def keep(block) -> bool:
        if block.size > size_cap:
            return False
        if max_comparisons is not None and block.num_comparisons > max_comparisons:
            return False
        return True

    return collection.filter_blocks(keep)
