"""Q-grams blocking [Gravano et al., VLDB 2001].

A schema-agnostic baseline from the paper's related work (Section 5): every
character q-gram of every token is a blocking key, trading more redundancy
(and typo tolerance) for larger blocks than Token Blocking.

The interned path grams each *distinct* token exactly once through the
corpus q-gram table instead of re-deriving grams per occurrence.
"""

from __future__ import annotations

from repro.blocking._interned import collection_from_assignments
from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.utils.tokenize import MIN_TOKEN_LENGTH, qgrams, tokenize


class QGramsBlocking:
    """Blocking on character q-grams of tokens.

    Parameters
    ----------
    q:
        The gram length; 3 (trigrams) is the customary default.
    interned:
        Derive keys from the dataset's :class:`~repro.data.InternedCorpus`
        (default) or re-tokenize through the legacy string path.
    """

    def __init__(self, q: int = 3, interned: bool = True) -> None:
        if q < 2:
            raise ValueError(f"q must be at least 2, got {q}")
        self.q = q
        self.interned = interned

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the q-gram block collection."""
        if self.interned:
            return self._build_interned(dataset)
        if dataset.is_clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for gidx, profile in dataset.iter_profiles():
                side = dataset.source_of(gidx)
                for key in self._keys_of(profile):
                    entry = keyed_cc.get(key)
                    if entry is None:
                        entry = (set(), set())
                        keyed_cc[key] = entry
                    entry[side].add(gidx)
            return build_blocks(keyed_cc, is_clean_clean=True)

        keyed: dict[str, set[int]] = {}
        for gidx, profile in dataset.iter_profiles():
            for key in self._keys_of(profile):
                keyed.setdefault(key, set()).add(gidx)
        return build_blocks(keyed, is_clean_clean=False)

    def _build_interned(self, dataset: ERDataset) -> BlockCollection:
        corpus = dataset.corpus
        rows, toks = corpus.distinct_profile_tokens(MIN_TOKEN_LENGTH)
        table = corpus.qgram_table(self.q)
        rows, grams, _ = corpus.expand_tokens(rows, toks, table)
        return collection_from_assignments(
            rows,
            grams,
            key_of=table[0].token_of,
            is_clean_clean=dataset.is_clean_clean,
            offset2=corpus.offset2,
        )

    def _keys_of(self, profile) -> set[str]:
        keys: set[str] = set()
        for _, value in profile.iter_pairs():
            for token in tokenize(value):
                keys.update(qgrams(token, self.q))
        return keys
