"""Q-grams blocking [Gravano et al., VLDB 2001].

A schema-agnostic baseline from the paper's related work (Section 5): every
character q-gram of every token is a blocking key, trading more redundancy
(and typo tolerance) for larger blocks than Token Blocking.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection, build_blocks
from repro.data.dataset import ERDataset
from repro.utils.tokenize import qgrams, tokenize


class QGramsBlocking:
    """Blocking on character q-grams of tokens.

    Parameters
    ----------
    q:
        The gram length; 3 (trigrams) is the customary default.
    """

    def __init__(self, q: int = 3) -> None:
        if q < 2:
            raise ValueError(f"q must be at least 2, got {q}")
        self.q = q

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the q-gram block collection."""
        if dataset.is_clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for gidx, profile in dataset.iter_profiles():
                side = dataset.source_of(gidx)
                for key in self._keys_of(profile):
                    entry = keyed_cc.get(key)
                    if entry is None:
                        entry = (set(), set())
                        keyed_cc[key] = entry
                    entry[side].add(gidx)
            return build_blocks(keyed_cc, is_clean_clean=True)

        keyed: dict[str, set[int]] = {}
        for gidx, profile in dataset.iter_profiles():
            for key in self._keys_of(profile):
                keyed.setdefault(key, set()).add(gidx)
        return build_blocks(keyed, is_clean_clean=False)

    def _keys_of(self, profile) -> set[str]:
        keys: set[str] = set()
        for _, value in profile.iter_pairs():
            for token in tokenize(value):
                keys.update(qgrams(token, self.q))
        return keys
