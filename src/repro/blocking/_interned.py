"""Array-side block assembly over the interned corpus.

Every token-derived blocker reduces to the same shape of work: produce
``(profile, key)`` assignments, deduplicate them, group by key, drop the
groups that imply no comparison, and emit the blocks in sorted-key order.
The legacy implementations did all of that through dicts of strings and
Python sets; the kernels here run the whole reduction in numpy over
interned ids and materialize strings exactly once per *distinct* key, at
the API boundary.

Because the grouping already produces the flat CSR member layout, the
:class:`~repro.graph.entity_index.EntityIndex` of the resulting collection
is built directly from the same arrays (via
:meth:`EntityIndex.from_arrays`) and attached to the collection's cache —
the vectorized meta-blocking backend then skips its dict-of-strings
lowering pass entirely.

The output is bit-for-bit identical to the string-era path: same keys,
same sorted-key block order, same member frozensets, same CSR arrays (the
equivalence property suite in ``tests/property/test_prop_corpus.py``
enforces this).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.blocking.base import Block, BlockCollection

#: Bits reserved for the row (profile) part of a packed (key, row) id.
_ROW_SHIFT = np.int64(31)
_ROW_MASK = np.int64((1 << 31) - 1)


def packed_key_of(
    token_of: Callable[[int], str], modulus: int, separator: str
) -> Callable[[int], str]:
    """Decoder for keys packed as ``term_id * modulus + suffix_id``.

    The disambiguated blockers (schema-aware ``token#cluster``, standard
    ``token@group``) pack their two-part keys into one integer code; this
    is the single inverse both use, so packing and decoding cannot drift
    apart per blocker.
    """

    def key_of(code: int) -> str:
        return f"{token_of(code // modulus)}{separator}{code % modulus}"

    return key_of


def group_assignments(
    rows: np.ndarray, codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate ``(row, code)`` assignments and group them by code.

    Returns ``(group_codes, starts, sizes, members)``: the distinct codes
    ascending, and for group *g* the member rows
    ``members[starts[g] : starts[g] + sizes[g]]``, sorted ascending.
    """
    if rows.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    codes = np.asarray(codes, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    # Compact arbitrary int64 key codes to dense indices so a single
    # (key, row) int64 pack both deduplicates and key-major sorts.
    group_codes, key_idx = np.unique(codes, return_inverse=True)
    packed = np.unique((key_idx.astype(np.int64) << _ROW_SHIFT) | rows)
    key_part = packed >> _ROW_SHIFT
    members = packed & _ROW_MASK
    starts = np.flatnonzero(np.r_[True, key_part[1:] != key_part[:-1]])
    sizes = np.diff(np.r_[starts, key_part.size])
    return group_codes, starts.astype(np.int64), sizes, members


def collection_from_assignments(
    rows: np.ndarray,
    codes: np.ndarray,
    key_of: Callable[[int], str],
    is_clean_clean: bool,
    offset2: int,
    max_block_size: int | None = None,
) -> BlockCollection:
    """Assemble a :class:`BlockCollection` from ``(profile, key-code)`` pairs.

    The exact array analogue of
    :func:`repro.blocking.base.build_blocks`: assignments are
    deduplicated, no-comparison groups (single-member dirty blocks,
    one-sided clean-clean blocks) are dropped, keys are materialized via
    *key_of* and emitted in sorted order.  *max_block_size* additionally
    drops oversized groups (the suffix-array purge).  The collection's
    ``entity_index`` cache is pre-populated from the group arrays.
    """
    group_codes, starts, sizes, members = group_assignments(rows, codes)

    if is_clean_clean:
        left_sizes = (
            np.add.reduceat((members < offset2).astype(np.int64), starts)
            if group_codes.size
            else np.zeros(0, dtype=np.int64)
        )
        right_sizes = sizes - left_sizes
        comparisons = left_sizes * right_sizes
        valid = (left_sizes > 0) & (right_sizes > 0)
    else:
        left_sizes = sizes
        comparisons = sizes * (sizes - 1) // 2
        valid = sizes >= 2
    if max_block_size is not None:
        valid &= sizes <= max_block_size

    keep = np.flatnonzero(valid)
    keys = [key_of(int(code)) for code in group_codes[keep]]
    order = sorted(range(len(keys)), key=keys.__getitem__)

    blocks: list[Block] = []
    id_chunks: list[np.ndarray] = []
    sizes_out = np.zeros(len(order), dtype=np.int32)
    lefts_out = np.zeros(len(order), dtype=np.int32)
    comps_out = np.zeros(len(order), dtype=np.int64)
    keys_out: list[str] = []
    members_list = members  # int64, ascending within each group
    for out_pos, key_pos in enumerate(order):
        g = int(keep[key_pos])
        group = members_list[starts[g] : starts[g] + sizes[g]]
        ln = int(left_sizes[g])
        if is_clean_clean:
            blocks.append(
                Block(
                    keys[key_pos],
                    frozenset(group[:ln].tolist()),
                    frozenset(group[ln:].tolist()),
                )
            )
        else:
            blocks.append(Block(keys[key_pos], frozenset(group.tolist())))
        keys_out.append(keys[key_pos])
        sizes_out[out_pos] = sizes[g]
        lefts_out[out_pos] = ln
        comps_out[out_pos] = comparisons[g]
        id_chunks.append(group)

    collection = BlockCollection(blocks, is_clean_clean)

    from repro.graph.entity_index import EntityIndex

    block_ptr = np.zeros(len(order) + 1, dtype=np.int32)
    np.cumsum(sizes_out, out=block_ptr[1:])
    entity_ids = (
        np.concatenate(id_chunks).astype(np.int32)
        if id_chunks
        else np.zeros(0, dtype=np.int32)
    )
    collection.__dict__["entity_index"] = EntityIndex.from_arrays(
        is_clean_clean=is_clean_clean,
        keys=tuple(keys_out),
        block_ptr=block_ptr,
        block_split=block_ptr[:-1] + lefts_out,
        entity_ids=entity_ids,
        block_comparisons=comps_out,
    )
    return collection
