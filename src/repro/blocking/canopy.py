"""Canopy Clustering blocking [McCallum et al., SIGKDD 2000].

A schema-based baseline from the paper's related work (Section 5): profiles
are grouped into overlapping *canopies* using a cheap similarity (token-set
Jaccard here).  Repeatedly pick a random seed profile; every profile within
``loose_threshold`` joins its canopy; those within ``tight_threshold`` are
removed from the candidate pool and can seed no further canopy.  Canopies
become blocks.
"""

from __future__ import annotations

from repro.blocking.base import Block, BlockCollection
from repro.data.dataset import ERDataset
from repro.schema.similarity import jaccard
from repro.utils.rng import make_rng


class CanopyBlocking:
    """Canopy clustering over profile token sets.

    Parameters
    ----------
    loose_threshold:
        Minimum similarity to join a canopy (T2 in the original paper).
    tight_threshold:
        Similarity at which a profile is removed from the seed pool
        (T1 >= T2).
    seed:
        Seed-order randomness; fixed for reproducibility.
    """

    def __init__(
        self,
        loose_threshold: float = 0.15,
        tight_threshold: float = 0.5,
        seed: int | None = None,
        interned: bool = True,
    ) -> None:
        if not 0.0 < loose_threshold <= tight_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < loose <= tight <= 1, got "
                f"loose={loose_threshold}, tight={tight_threshold}"
            )
        self.loose_threshold = loose_threshold
        self.tight_threshold = tight_threshold
        self.seed = seed
        self.interned = interned

    def build(self, dataset: ERDataset) -> BlockCollection:
        """Index *dataset* and return the canopy block collection."""
        if self.interned:
            # Jaccard over interned token-id sets equals Jaccard over the
            # token strings; the corpus sets skip the per-profile regex.
            from repro.utils.tokenize import MIN_TOKEN_LENGTH

            id_sets = dataset.corpus.profile_token_id_sets(MIN_TOKEN_LENGTH)
            tokens = dict(enumerate(id_sets))
        else:
            tokens = {
                gidx: frozenset(profile.tokens())
                for gidx, profile in dataset.iter_profiles()
            }
        rng = make_rng(self.seed)
        pool = list(tokens)
        order = [pool[i] for i in rng.permutation(len(pool))]
        available = set(pool)

        blocks: list[Block] = []
        serial = 0
        for seed_profile in order:
            if seed_profile not in available:
                continue
            available.discard(seed_profile)
            members = {seed_profile}
            seed_tokens = tokens[seed_profile]
            for other, other_tokens in tokens.items():
                if other == seed_profile:
                    continue
                similarity = jaccard(seed_tokens, other_tokens)
                if similarity >= self.loose_threshold:
                    members.add(other)
                    if similarity >= self.tight_threshold:
                        available.discard(other)
            block = self._to_block(f"canopy{serial}", members, dataset)
            if block is not None:
                blocks.append(block)
                serial += 1
        return BlockCollection(blocks, dataset.is_clean_clean)

    @staticmethod
    def _to_block(key: str, members: set[int], dataset: ERDataset) -> Block | None:
        if dataset.is_clean_clean:
            offset = dataset.offset2
            left = frozenset(m for m in members if m < offset)
            right = frozenset(m for m in members if m >= offset)
            if left and right:
                return Block(key, left, right)
            return None
        if len(members) >= 2:
            return Block(key, frozenset(members))
        return None
