"""Streaming / incremental entity resolution (query-time meta-blocking).

The batch pipeline needs every profile up front; this subsystem serves the
same meta-blocking decisions *as profiles arrive*:

* :class:`IncrementalBlockIndex` — a mutable, loosely schema-aware
  token -> posting-list index with ``upsert``/``delete``;
* :class:`StreamingMetaBlocker` — ``candidates(profile, k)`` via per-node
  edge weighting (CBS/ECBS/JS/ARCS/CHI_H) and node-centric pruning
  (BLAST/WNP/CNP), with batch-exact (``exact``) or incremental (``fast``)
  query views resolved through ``repro.core.registry.STREAM_VIEWS``;
* :class:`StreamingSession` — the facade adding stream replay and
  ``snapshot``/``restore`` persistence;
* :class:`StreamingStage` — the subsystem as a pipeline stage, for
  validating streaming results against the batch pipeline.

See DESIGN.md ("Streaming & serving") for the consistency model and
``examples/streaming_session.py`` for a worked example.
"""

from repro.streaming.index import IncrementalBlockIndex, PostingList
from repro.streaming.metablocker import Candidate, StreamingMetaBlocker
from repro.streaming.session import (
    ConcurrentWriterError,
    ReplayEvent,
    SnapshotCorruptionError,
    StreamingSession,
    StreamRecord,
    iter_stream,
    parse_stream_record,
)
from repro.streaming.stage import STREAMING_SESSION, StreamingStage
from repro.streaming.views import ExactStreamView, FastStreamView, NeighborStats

__all__ = [
    "Candidate",
    "ConcurrentWriterError",
    "ExactStreamView",
    "FastStreamView",
    "IncrementalBlockIndex",
    "NeighborStats",
    "PostingList",
    "ReplayEvent",
    "STREAMING_SESSION",
    "SnapshotCorruptionError",
    "StreamRecord",
    "StreamingMetaBlocker",
    "StreamingSession",
    "StreamingStage",
    "iter_stream",
    "parse_stream_record",
]
