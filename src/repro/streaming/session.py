"""The streaming facade: one object from arriving profile to candidates.

A :class:`StreamingSession` bundles an
:class:`~repro.streaming.index.IncrementalBlockIndex` and a
:class:`~repro.streaming.metablocker.StreamingMetaBlocker` behind the
four verbs of incremental ER — ``upsert``, ``delete``, ``candidates``,
``replay`` — plus ``snapshot``/``restore`` persistence so a warmed index
survives restarts.

The JSON-lines *stream format* extends the collection format of
``repro.data.io`` with an optional ``"source"`` (0/1, clean-clean only)
and an optional ``"op"`` (``"upsert"`` default, or ``"delete"``)::

    {"id": "p1", "attributes": [["name", "John Abram Jr"]]}
    {"id": "p7", "source": 1, "attributes": [["full name", "Ellen Smith"]]}
    {"op": "delete", "id": "p1"}

``repro stream`` replays such a file (``.gz`` transparently) and emits
each arrival's retained candidates as they are computed.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import BlastConfig
from repro.data.corpus import TokenDictionary
from repro.data.dataset import ERDataset
from repro.data.io import iter_json_records, open_text, profile_from_record
from repro.data.profile import EntityProfile
from repro.graph.pruning import (
    BlastPruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightNodePruning,
)
from repro.graph.weights import WeightingScheme
from repro.schema.partition import AttributePartitioning
from repro.streaming.index import IncrementalBlockIndex
from repro.streaming.metablocker import Candidate, StreamingMetaBlocker

__all__ = [
    "SNAPSHOT_FORMAT",
    "StreamRecord",
    "ReplayEvent",
    "StreamingSession",
    "iter_stream",
    "parse_stream_record",
]

#: Version stamp of the snapshot file layout.
SNAPSHOT_FORMAT = 1


@dataclass(frozen=True)
class StreamRecord:
    """One parsed line of a profile stream."""

    op: str  # "upsert" | "delete"
    profile_id: str
    source: int
    profile: EntityProfile | None  # None for deletes


@dataclass(frozen=True)
class ReplayEvent:
    """The outcome of applying one stream record.

    ``candidates`` carries the arrival-time query result for upserts and
    ``None`` for deletes; ``applied`` is ``False`` for deletes of unknown
    profiles.
    """

    record: StreamRecord
    candidates: list[Candidate] | None
    applied: bool = True


def parse_stream_record(record: dict) -> StreamRecord:
    """Decode one stream line (see the module docstring for the format)."""
    op = str(record.get("op", "upsert"))
    source = int(record.get("source", 0))
    if op == "delete":
        return StreamRecord(op, str(record["id"]), source, None)
    if op != "upsert":
        raise ValueError(f"unknown stream op {op!r}")
    profile = profile_from_record(record)
    return StreamRecord(op, profile.profile_id, source, profile)


def iter_stream(path: str | Path) -> Iterator[StreamRecord]:
    """Stream the records of a JSON-lines file, lazily, ``.gz`` aware."""
    return iter_json_records(path, parse_stream_record)


class StreamingSession:
    """Incremental ER over a stream of entity profiles.

    Parameters
    ----------
    config:
        Pipeline tunables (token length, purging/filtering ratios,
        weighting, BLAST pruning constants, ``stream_consistency``,
        ``backend``); defaults to :class:`BlastConfig`'s paper defaults.
    clean_clean:
        Two-source (every record carries ``source`` 0/1) or dirty.
    partitioning:
        Optional loose schema for attribute-cluster-disambiguated keys and
        entropy-aware weighting — e.g. extracted from a warm-up batch via
        :meth:`from_dataset`.
    pruning:
        Node-centric pruning override; defaults to BLAST's rule with the
        config's ``pruning_c``/``pruning_d``.
    weighting / consistency / backend:
        Per-parameter overrides of the config values.

    Example
    -------
    >>> from repro.streaming import StreamingSession
    >>> from repro.data import EntityProfile
    >>> session = StreamingSession()
    >>> for pid, name in [("a", "John Abram"), ("b", "John Abram"),
    ...                   ("c", "Ellen Smith"), ("d", "Ellen Smith")]:
    ...     _ = session.upsert(EntityProfile.from_dict(pid, {"name": name}))
    >>> [c.profile_id for c in session.candidates("a")]
    ['b']
    """

    def __init__(
        self,
        config: BlastConfig | None = None,
        *,
        clean_clean: bool = False,
        partitioning: AttributePartitioning | None = None,
        pruning: PruningScheme | None = None,
        weighting: WeightingScheme | str | None = None,
        consistency: str | None = None,
        backend: str | None = None,
    ) -> None:
        config = config or BlastConfig()
        self.config = config
        if partitioning is not None and not config.use_entropy:
            # Keys stay disambiguated but every cluster weighs 1.0 (the
            # "chi" ablation): drop only the entropy lookup, not the schema.
            partitioning = partitioning.with_entropies({})
        self.index = IncrementalBlockIndex(
            clean_clean=clean_clean,
            partitioning=partitioning,
            min_token_length=config.min_token_length,
            purging_ratio=config.purging_ratio,
            filtering_ratio=config.filtering_ratio,
        )
        self.metablocker = StreamingMetaBlocker(
            self.index,
            weighting=weighting if weighting is not None else config.weighting,
            pruning=(
                pruning
                if pruning is not None
                else BlastPruning(c=config.pruning_c, d=config.pruning_d)
            ),
            entropy_boost=config.entropy_boost,
            consistency=(
                consistency
                if consistency is not None
                else config.stream_consistency
            ),
            backend=backend if backend is not None else config.backend,
        )
        self.default_k = config.stream_query_k

    @classmethod
    def from_dataset(
        cls,
        dataset: ERDataset,
        config: BlastConfig | None = None,
        *,
        extract_schema: bool = True,
        **overrides,
    ) -> "StreamingSession":
        """A warmed session: loose schema from *dataset*, profiles upserted.

        The batch Phase 1 (LMI/AC + entropy extraction) runs once over the
        dataset when *extract_schema* is set; the profiles are then
        replayed in dataset order, so the session's canonical ids equal
        the batch global indices.
        """
        config = config or BlastConfig()
        partitioning = None
        if extract_schema:
            from repro.core.stages import SchemaExtraction

            partitioning = SchemaExtraction(config).extract(dataset)
        session = cls(
            config,
            clean_clean=dataset.is_clean_clean,
            partitioning=partitioning,
            **overrides,
        )
        for gidx, profile in dataset.iter_profiles():
            session.upsert(profile, source=dataset.source_of(gidx))
        return session

    # -- the four verbs ------------------------------------------------------

    def upsert(self, profile: EntityProfile, source: int = 0) -> int:
        """Insert or replace a profile; returns its stable node id."""
        return self.index.upsert(profile, source)

    def delete(self, profile_id: str, source: int = 0) -> bool:
        """Remove a profile; ``False`` when it was not in the index."""
        return self.index.delete(profile_id, source)

    def candidates(
        self, ref, k: int | None = None, source: int = 0
    ) -> list[Candidate]:
        """The retained comparison partners of an indexed profile."""
        return self.metablocker.candidates(
            ref, k=k if k is not None else self.default_k, source=source
        )

    def neighborhood(self, ref, source: int = 0) -> list[Candidate]:
        """All co-occurring profiles with weights (unpruned)."""
        return self.metablocker.neighborhood(ref, source=source)

    def replay(
        self,
        records: Iterable[StreamRecord | EntityProfile],
        k: int | None = None,
        query: bool = True,
    ) -> Iterator[ReplayEvent]:
        """Apply a record stream, yielding each arrival's candidates.

        Bare :class:`EntityProfile` items are treated as source-0 upserts.
        With ``query=False`` the index is only built (bulk loading).
        """
        for item in records:
            if isinstance(item, EntityProfile):
                item = StreamRecord("upsert", item.profile_id, 0, item)
            if item.op == "delete":
                applied = self.delete(item.profile_id, item.source)
                yield ReplayEvent(item, None, applied)
                continue
            assert item.profile is not None
            self.upsert(item.profile, item.source)
            result = (
                self.candidates(item.profile_id, k=k, source=item.source)
                if query
                else None
            )
            yield ReplayEvent(item, result)

    # -- persistence ---------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist the warmed session as one JSON document (``.gz`` aware).

        The snapshot carries the session configuration, the loose schema,
        and every live profile in node-id order, so :meth:`restore`
        rebuilds an equivalent session (identical canonical ids, identical
        query results) without re-running schema extraction.
        """
        index = self.index
        payload = {
            "format": SNAPSHOT_FORMAT,
            "kind": "clean-clean" if index.clean_clean else "dirty",
            "index": {
                "min_token_length": index.min_token_length,
                "transformation": index.transformation,
                "q": index.q,
                "purging_ratio": index.purging_ratio,
                "max_comparisons": index.max_comparisons,
                "filtering_ratio": index.filtering_ratio,
            },
            "metablocker": {
                "weighting": self.metablocker.weighting.value,
                "entropy_boost": self.metablocker.entropy_boost,
                "consistency": self.metablocker.consistency,
                "backend": self.metablocker.backend,
                "pruning": _pruning_to_payload(self.metablocker.pruning),
            },
            "default_k": self.default_k,
            # The interned key dictionary, in id order: restore pre-seeds
            # it so posting-list key ids survive the round trip even
            # through upsert -> delete -> upsert histories.
            "dictionary": index.key_dictionary.to_payload(),
            "partitioning": (
                index.partitioning.to_dict()
                if index.partitioning is not None
                else None
            ),
            "profiles": [
                {
                    "id": index.profile_of(node).profile_id,
                    "source": index.source_of(node),
                    "attributes": [
                        list(pair)
                        for pair in index.profile_of(node).attributes
                    ],
                }
                for node in index.live_nodes()
            ],
        }
        with open_text(path, "w") as handle:
            json.dump(payload, handle, ensure_ascii=False)
            handle.write("\n")

    @classmethod
    def restore(cls, path: str | Path) -> "StreamingSession":
        """Rebuild a session from a :meth:`snapshot` file."""
        with open_text(path) as handle:
            payload = json.load(handle)
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"{path}: unsupported snapshot format {payload.get('format')!r}"
            )
        meta = payload["metablocker"]
        session = cls.__new__(cls)
        partitioning = (
            AttributePartitioning.from_dict(payload["partitioning"])
            if payload["partitioning"] is not None
            else None
        )
        index_cfg = payload["index"]
        pruning = _pruning_from_payload(meta["pruning"])
        # Reconstruct the public config attribute so restored sessions are
        # indistinguishable from freshly built ones to config consumers.
        session.config = BlastConfig(
            min_token_length=index_cfg["min_token_length"],
            purging_ratio=index_cfg["purging_ratio"],
            filtering_ratio=index_cfg["filtering_ratio"],
            weighting=meta["weighting"],
            entropy_boost=meta["entropy_boost"],
            pruning_c=getattr(pruning, "c", 2.0),
            pruning_d=getattr(pruning, "d", 2.0),
            backend=meta["backend"],
            stream_consistency=meta["consistency"],
            stream_query_k=payload.get("default_k"),
        )
        session.index = IncrementalBlockIndex(
            clean_clean=payload["kind"] == "clean-clean",
            partitioning=partitioning,
            min_token_length=index_cfg["min_token_length"],
            transformation=index_cfg["transformation"],
            q=index_cfg["q"],
            purging_ratio=index_cfg["purging_ratio"],
            max_comparisons=index_cfg["max_comparisons"],
            filtering_ratio=index_cfg["filtering_ratio"],
            key_dictionary=TokenDictionary.from_payload(
                payload.get("dictionary") or ()
            ),
        )
        session.metablocker = StreamingMetaBlocker(
            session.index,
            weighting=meta["weighting"],
            pruning=pruning,
            entropy_boost=meta["entropy_boost"],
            consistency=meta["consistency"],
            backend=meta["backend"],
        )
        session.default_k = payload.get("default_k")
        for record in payload["profiles"]:
            session.upsert(
                profile_from_record(record), source=int(record.get("source", 0))
            )
        return session

    def __repr__(self) -> str:
        return (
            f"StreamingSession(profiles={self.index.num_profiles}, "
            f"keys={self.index.num_blocks}, "
            f"consistency={self.metablocker.consistency!r})"
        )


# -- pruning (de)serialization -----------------------------------------------
# Only the node-centric schemes a StreamingMetaBlocker accepts can ever
# reach a snapshot, so only those are encoded.

def _pruning_to_payload(pruning: PruningScheme) -> dict:
    """Serialize a built-in node-centric pruning scheme."""
    kind = type(pruning)
    if kind is BlastPruning:
        return {"type": "blast", "c": pruning.c, "d": pruning.d}
    if kind is WeightNodePruning:
        return {"type": "wnp", "reciprocal": pruning.reciprocal}
    if kind is CardinalityNodePruning:
        return {"type": "cnp", "reciprocal": pruning.reciprocal, "k": pruning.k}
    raise ValueError(
        f"cannot snapshot custom pruning scheme {kind.__name__}"
    )


def _pruning_from_payload(payload: dict) -> PruningScheme:
    kind = payload["type"]
    if kind == "blast":
        return BlastPruning(c=payload["c"], d=payload["d"])
    if kind == "wnp":
        return WeightNodePruning(reciprocal=payload["reciprocal"])
    if kind == "cnp":
        return CardinalityNodePruning(
            reciprocal=payload["reciprocal"], k=payload["k"]
        )
    raise ValueError(f"unknown pruning payload type {kind!r}")
