"""The streaming facade: one object from arriving profile to candidates.

A :class:`StreamingSession` bundles an
:class:`~repro.streaming.index.IncrementalBlockIndex` and a
:class:`~repro.streaming.metablocker.StreamingMetaBlocker` behind the
four verbs of incremental ER — ``upsert``, ``delete``, ``candidates``,
``replay`` — plus ``snapshot``/``restore`` persistence so a warmed index
survives restarts.

The JSON-lines *stream format* extends the collection format of
``repro.data.io`` with an optional ``"source"`` (0/1, clean-clean only)
and an optional ``"op"`` (``"upsert"`` default, or ``"delete"``)::

    {"id": "p1", "attributes": [["name", "John Abram Jr"]]}
    {"id": "p7", "source": 1, "attributes": [["full name", "Ellen Smith"]]}
    {"op": "delete", "id": "p1"}

``repro stream`` replays such a file (``.gz`` transparently) and emits
each arrival's retained candidates as they are computed.

Sessions are **single-writer**: ``upsert``/``delete``/``snapshot`` guard
themselves with a non-blocking tripwire lock and raise
:class:`ConcurrentWriterError` when two writers interleave — the index
and the journal have no internal locking, so concurrent mutation would
corrupt them silently otherwise.  ``repro.serving`` satisfies the
contract by giving every tenant session exactly one actor task.

Crash safety (see DESIGN.md "Reliability & recovery"): snapshots are
written atomically (same-directory temp file + ``fsync`` + ``os.replace``)
and carry a CRC32 checksum verified on :meth:`StreamingSession.restore` —
a truncated, bit-flipped, or future-format snapshot raises
:class:`SnapshotCorruptionError` naming the file and the reason.  With
``journal=`` set, every ``upsert``/``delete`` is appended to a JSON-lines
write-ahead journal *before* it is applied, and
:meth:`StreamingSession.recover` rebuilds the exact pre-crash state from
the last snapshot plus the journal tail.
"""

from __future__ import annotations

import gzip
import itertools
import json
import os
import threading
import zlib
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.core.config import BlastConfig
from repro.data.corpus import TokenDictionary
from repro.data.dataset import ERDataset
from repro.data.io import IngestReport, iter_json_records, profile_from_record
from repro.data.profile import EntityProfile
from repro.graph.pruning import (
    BlastPruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightNodePruning,
)
from repro.graph.weights import WeightingScheme
from repro.reliability import FAULTS
from repro.schema.partition import AttributePartitioning
from repro.streaming.index import IncrementalBlockIndex
from repro.streaming.metablocker import Candidate, StreamingMetaBlocker

__all__ = [
    "SNAPSHOT_FORMAT",
    "ConcurrentWriterError",
    "SnapshotCorruptionError",
    "StreamRecord",
    "ReplayEvent",
    "StreamingSession",
    "iter_stream",
    "parse_stream_record",
]

#: Version stamp of the snapshot file layout.  Format 2 wraps the payload
#: in a ``{"format", "checksum", "payload"}`` envelope whose CRC32 is
#: verified on restore; format-1 snapshots (no envelope, no checksum)
#: still restore.
SNAPSHOT_FORMAT = 2

#: Disambiguates concurrent same-process snapshot temp files (e.g. an
#: interval snapshot orphaned by task cancellation racing the close-time
#: snapshot); the pid alone only covers cross-process races.
_SNAPSHOT_TMP_IDS = itertools.count()


class SnapshotCorruptionError(ValueError):
    """A snapshot (or its journal) cannot be trusted: truncated gzip,
    checksum mismatch, undecodable JSON, or a format newer than this
    library understands.  The message always names the file and reason."""


class ConcurrentWriterError(RuntimeError):
    """Two writers touched a :class:`StreamingSession` at the same time.

    A session is **single-writer**: ``upsert``, ``delete``, and
    ``snapshot`` mutate (or serialize a consistent view of) the posting
    lists, node maps, and write-ahead journal with no internal locking,
    so two concurrent writers would silently corrupt the index and
    interleave journal lines.  The serving layer (``repro.serving``)
    enforces the contract structurally — one actor task owns each
    session — and this error makes any other concurrent use fail loudly
    instead.  Wrap a session in your own mutex if you must share it
    across threads.
    """


@dataclass(frozen=True)
class StreamRecord:
    """One parsed line of a profile stream."""

    op: str  # "upsert" | "delete"
    profile_id: str
    source: int
    profile: EntityProfile | None  # None for deletes


@dataclass(frozen=True)
class ReplayEvent:
    """The outcome of applying one stream record.

    ``candidates`` carries the arrival-time query result for upserts and
    ``None`` for deletes; ``applied`` is ``False`` for deletes of unknown
    profiles.
    """

    record: StreamRecord
    candidates: list[Candidate] | None
    applied: bool = True


def parse_stream_record(record: dict) -> StreamRecord:
    """Decode one stream line (see the module docstring for the format)."""
    op = str(record.get("op", "upsert"))
    source = int(record.get("source", 0))
    if op == "delete":
        return StreamRecord(op, str(record["id"]), source, None)
    if op != "upsert":
        raise ValueError(f"unknown stream op {op!r}")
    profile = profile_from_record(record)
    return StreamRecord(op, profile.profile_id, source, profile)


def iter_stream(
    path: str | Path,
    *,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> Iterator[StreamRecord]:
    """Stream the records of a JSON-lines file, lazily, ``.gz`` aware.

    ``on_error``/``report`` quarantine malformed lines instead of
    aborting the replay — see :func:`repro.data.io.iter_json_records`.
    """
    return iter_json_records(
        path, parse_stream_record, on_error=on_error, report=report
    )


class StreamingSession:
    """Incremental ER over a stream of entity profiles.

    Parameters
    ----------
    config:
        Pipeline tunables (token length, purging/filtering ratios,
        weighting, BLAST pruning constants, ``stream_consistency``,
        ``backend``); defaults to :class:`BlastConfig`'s paper defaults.
    clean_clean:
        Two-source (every record carries ``source`` 0/1) or dirty.
    partitioning:
        Optional loose schema for attribute-cluster-disambiguated keys and
        entropy-aware weighting — e.g. extracted from a warm-up batch via
        :meth:`from_dataset`.
    pruning:
        Node-centric pruning override; defaults to BLAST's rule with the
        config's ``pruning_c``/``pruning_d``.
    weighting / consistency / backend:
        Per-parameter overrides of the config values.
    journal:
        Optional path of an append-only JSON-lines write-ahead journal.
        Every ``upsert``/``delete`` is appended (and flushed) *before* it
        is applied, so a crash at any point loses at most the one
        operation whose journal line never became durable;
        :meth:`recover` replays the tail on top of the last snapshot.

    Example
    -------
    >>> from repro.streaming import StreamingSession
    >>> from repro.data import EntityProfile
    >>> session = StreamingSession()
    >>> for pid, name in [("a", "John Abram"), ("b", "John Abram"),
    ...                   ("c", "Ellen Smith"), ("d", "Ellen Smith")]:
    ...     _ = session.upsert(EntityProfile.from_dict(pid, {"name": name}))
    >>> [c.profile_id for c in session.candidates("a")]
    ['b']
    """

    def __init__(
        self,
        config: BlastConfig | None = None,
        *,
        clean_clean: bool = False,
        partitioning: AttributePartitioning | None = None,
        pruning: PruningScheme | None = None,
        weighting: WeightingScheme | str | None = None,
        consistency: str | None = None,
        backend: str | None = None,
        journal: str | Path | None = None,
    ) -> None:
        config = config or BlastConfig()
        self.config = config
        if partitioning is not None and not config.use_entropy:
            # Keys stay disambiguated but every cluster weighs 1.0 (the
            # "chi" ablation): drop only the entropy lookup, not the schema.
            partitioning = partitioning.with_entropies({})
        self.index = IncrementalBlockIndex(
            clean_clean=clean_clean,
            partitioning=partitioning,
            min_token_length=config.min_token_length,
            purging_ratio=config.purging_ratio,
            filtering_ratio=config.filtering_ratio,
        )
        self.metablocker = StreamingMetaBlocker(
            self.index,
            weighting=weighting if weighting is not None else config.weighting,
            pruning=(
                pruning
                if pruning is not None
                else BlastPruning(c=config.pruning_c, d=config.pruning_d)
            ),
            entropy_boost=config.entropy_boost,
            consistency=(
                consistency
                if consistency is not None
                else config.stream_consistency
            ),
            backend=backend if backend is not None else config.backend,
        )
        self.default_k = config.stream_query_k
        self._writer_lock = threading.Lock()
        self._journal_path: Path | None = None
        self._journal_handle: IO[str] | None = None
        self._journal_seq = 0
        if journal is not None:
            journal = Path(journal)
            if journal.exists() and journal.stat().st_size > 0:
                # Appending seq 1.. on top of an earlier history would
                # corrupt the journal and silently orphan the records a
                # crashed session already committed.
                raise ValueError(
                    f"journal {journal} already contains records; resume "
                    "it with StreamingSession.recover(snapshot, journal) "
                    "or remove the file to start a new history"
                )
            self._attach_journal(journal)

    @classmethod
    def from_dataset(
        cls,
        dataset: ERDataset,
        config: BlastConfig | None = None,
        *,
        extract_schema: bool = True,
        **overrides,
    ) -> "StreamingSession":
        """A warmed session: loose schema from *dataset*, profiles upserted.

        The batch Phase 1 (LMI/AC + entropy extraction) runs once over the
        dataset when *extract_schema* is set; the profiles are then
        replayed in dataset order, so the session's canonical ids equal
        the batch global indices.
        """
        config = config or BlastConfig()
        partitioning = None
        if extract_schema:
            from repro.core.stages import SchemaExtraction

            partitioning = SchemaExtraction(config).extract(dataset)
        session = cls(
            config,
            clean_clean=dataset.is_clean_clean,
            partitioning=partitioning,
            **overrides,
        )
        for gidx, profile in dataset.iter_profiles():
            session.upsert(profile, source=dataset.source_of(gidx))
        return session

    # -- the single-writer contract ------------------------------------------

    @contextmanager
    def _exclusive(self, verb: str) -> Iterator[None]:
        """Hold the writer lock for one mutating verb; never blocks.

        The lock is a *tripwire*, not a synchronization primitive: a
        second writer arriving while one is inside a verb indicates a
        broken single-writer contract (see :class:`ConcurrentWriterError`)
        and fails immediately rather than waiting its turn over a
        possibly half-mutated index.
        """
        if not self._writer_lock.acquire(blocking=False):
            raise ConcurrentWriterError(
                f"StreamingSession.{verb}() entered while another writer "
                "holds the session; sessions are single-writer — route "
                "all mutations through one owner (e.g. the repro.serving "
                "tenant actor) or add external locking"
            )
        try:
            yield
        finally:
            self._writer_lock.release()

    # -- the four verbs ------------------------------------------------------

    def upsert(self, profile: EntityProfile, source: int = 0) -> int:
        """Insert or replace a profile; returns its stable node id."""
        with self._exclusive("upsert"):
            self._journal_write(
                {
                    "op": "upsert",
                    "id": profile.profile_id,
                    "source": source,
                    "attributes": [list(pair) for pair in profile.attributes],
                }
            )
            return self._apply_upsert(profile, source)

    def delete(self, profile_id: str, source: int = 0) -> bool:
        """Remove a profile; ``False`` when it was not in the index."""
        with self._exclusive("delete"):
            self._journal_write(
                {"op": "delete", "id": profile_id, "source": source}
            )
            return self._apply_delete(profile_id, source)

    # The non-journaling halves of the verbs: restore/recover replay
    # through these so rebuilding state never re-appends to the journal.

    def _apply_upsert(self, profile: EntityProfile, source: int = 0) -> int:
        return self.index.upsert(profile, source)

    def _apply_delete(self, profile_id: str, source: int = 0) -> bool:
        return self.index.delete(profile_id, source)

    def candidates(
        self, ref, k: int | None = None, source: int = 0
    ) -> list[Candidate]:
        """The retained comparison partners of an indexed profile."""
        return self.metablocker.candidates(
            ref, k=k if k is not None else self.default_k, source=source
        )

    def neighborhood(self, ref, source: int = 0) -> list[Candidate]:
        """All co-occurring profiles with weights (unpruned)."""
        return self.metablocker.neighborhood(ref, source=source)

    def replay(
        self,
        records: Iterable[StreamRecord | EntityProfile],
        k: int | None = None,
        query: bool = True,
    ) -> Iterator[ReplayEvent]:
        """Apply a record stream, yielding each arrival's candidates.

        Bare :class:`EntityProfile` items are treated as source-0 upserts.
        With ``query=False`` the index is only built (bulk loading).
        """
        for item in records:
            if isinstance(item, EntityProfile):
                item = StreamRecord("upsert", item.profile_id, 0, item)
            if item.op == "delete":
                applied = self.delete(item.profile_id, item.source)
                yield ReplayEvent(item, None, applied)
                continue
            assert item.profile is not None
            self.upsert(item.profile, item.source)
            result = (
                self.candidates(item.profile_id, k=k, source=item.source)
                if query
                else None
            )
            yield ReplayEvent(item, result)

    # -- persistence ---------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist the warmed session as one JSON document (``.gz`` aware).

        The snapshot carries the session configuration, the loose schema,
        and every live profile in node-id order, so :meth:`restore`
        rebuilds an equivalent session (identical canonical ids, identical
        query results) without re-running schema extraction.

        The write is atomic: the document goes to a same-directory temp
        file that is fsynced and then :func:`os.replace`d over *path*, so
        a crash mid-write leaves the previous snapshot intact.  The
        payload's CRC32 travels in the envelope and is verified on
        :meth:`restore`.
        """
        path = Path(path)
        with self._exclusive("snapshot"):
            payload = self._snapshot_payload()
        body = _canonical_payload_bytes(payload)
        document = {
            "format": SNAPSHOT_FORMAT,
            "checksum": zlib.crc32(body),
            "payload": payload,
        }
        data = json.dumps(document, ensure_ascii=False).encode("utf-8") + b"\n"
        if path.suffix == ".gz":
            # mtime=0 keeps the compressed bytes deterministic.
            data = gzip.compress(data, mtime=0)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_SNAPSHOT_TMP_IDS)}.tmp"
        )
        try:
            with tmp.open("wb") as handle:
                handle.write(data)
                handle.flush()
                FAULTS.fire("snapshot.write", path=tmp)
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _snapshot_payload(self) -> dict:
        index = self.index
        return {
            "kind": "clean-clean" if index.clean_clean else "dirty",
            "index": {
                "min_token_length": index.min_token_length,
                "transformation": index.transformation,
                "q": index.q,
                "purging_ratio": index.purging_ratio,
                "max_comparisons": index.max_comparisons,
                "filtering_ratio": index.filtering_ratio,
            },
            "metablocker": {
                "weighting": self.metablocker.weighting.value,
                "entropy_boost": self.metablocker.entropy_boost,
                "consistency": self.metablocker.consistency,
                "backend": self.metablocker.backend,
                "pruning": _pruning_to_payload(self.metablocker.pruning),
            },
            "default_k": self.default_k,
            # The interned key dictionary, in id order: restore pre-seeds
            # it so posting-list key ids survive the round trip even
            # through upsert -> delete -> upsert histories.
            "dictionary": index.key_dictionary.to_payload(),
            # Every (source, id) -> node assignment ever made, tombstones
            # included: restore pre-seeds it so node ids — and with them
            # the equal-weight neighbor ordering — survive upsert ->
            # delete -> upsert histories.
            "nodes": index.node_map_payload(),
            "partitioning": (
                index.partitioning.to_dict()
                if index.partitioning is not None
                else None
            ),
            "profiles": [
                {
                    "id": index.profile_of(node).profile_id,
                    "source": index.source_of(node),
                    "attributes": [
                        list(pair)
                        for pair in index.profile_of(node).attributes
                    ],
                }
                for node in index.live_nodes()
            ],
            # The journal position this state already reflects: recover()
            # replays only lines with a greater sequence number.
            "journal_seq": self._journal_seq,
        }

    @classmethod
    def restore(cls, path: str | Path) -> "StreamingSession":
        """Rebuild a session from a :meth:`snapshot` file.

        Raises :class:`SnapshotCorruptionError` when the file is
        truncated, fails its checksum, is not decodable JSON, or claims a
        format this library does not understand.
        """
        return cls._from_payload(_read_snapshot(path))

    @classmethod
    def _from_payload(cls, payload: dict) -> "StreamingSession":
        meta = payload["metablocker"]
        session = cls.__new__(cls)
        partitioning = (
            AttributePartitioning.from_dict(payload["partitioning"])
            if payload["partitioning"] is not None
            else None
        )
        index_cfg = payload["index"]
        pruning = _pruning_from_payload(meta["pruning"])
        # Reconstruct the public config attribute so restored sessions are
        # indistinguishable from freshly built ones to config consumers.
        session.config = BlastConfig(
            min_token_length=index_cfg["min_token_length"],
            purging_ratio=index_cfg["purging_ratio"],
            filtering_ratio=index_cfg["filtering_ratio"],
            weighting=meta["weighting"],
            entropy_boost=meta["entropy_boost"],
            pruning_c=getattr(pruning, "c", 2.0),
            pruning_d=getattr(pruning, "d", 2.0),
            backend=meta["backend"],
            stream_consistency=meta["consistency"],
            stream_query_k=payload.get("default_k"),
        )
        session.index = IncrementalBlockIndex(
            clean_clean=payload["kind"] == "clean-clean",
            partitioning=partitioning,
            min_token_length=index_cfg["min_token_length"],
            transformation=index_cfg["transformation"],
            q=index_cfg["q"],
            purging_ratio=index_cfg["purging_ratio"],
            max_comparisons=index_cfg["max_comparisons"],
            filtering_ratio=index_cfg["filtering_ratio"],
            key_dictionary=TokenDictionary.from_payload(
                payload.get("dictionary") or ()
            ),
        )
        session.metablocker = StreamingMetaBlocker(
            session.index,
            weighting=meta["weighting"],
            pruning=pruning,
            entropy_boost=meta["entropy_boost"],
            consistency=meta["consistency"],
            backend=meta["backend"],
        )
        session.index.seed_node_map(payload.get("nodes") or ())
        session.default_k = payload.get("default_k")
        session._writer_lock = threading.Lock()
        session._journal_path = None
        session._journal_handle = None
        session._journal_seq = int(payload.get("journal_seq", 0))
        for record in payload["profiles"]:
            session._apply_upsert(
                profile_from_record(record), source=int(record.get("source", 0))
            )
        return session

    @classmethod
    def recover(
        cls,
        snapshot: str | Path | None,
        journal: str | Path,
        *,
        session_factory: Callable[[], "StreamingSession"] | None = None,
    ) -> "StreamingSession":
        """Rebuild the exact pre-crash session: snapshot + journal tail.

        Restores *snapshot*, then replays every journal line whose
        sequence number the snapshot does not already cover.  A torn
        final line (no trailing newline — the crash interrupted the
        append) is discarded and truncated away; a *committed*
        (newline-terminated) but undecodable line means real corruption
        and raises :class:`SnapshotCorruptionError`, as does a journal
        that ends before the snapshot's recorded position.

        When the crash predated the first snapshot, *snapshot* may be
        ``None`` or name a file that does not exist yet: recovery then
        starts from a fresh session built by *session_factory* (the
        caller supplies the configuration the snapshot would otherwise
        carry; the factory must not attach a journal itself) and replays
        the whole journal.

        The returned session has the journal re-attached in append mode,
        so it continues exactly like a session that never crashed —
        neighborhoods, candidates, and future snapshots are bit-for-bit
        identical.
        """
        journal = Path(journal)
        if snapshot is not None and Path(snapshot).exists():
            session = cls._from_payload(_read_snapshot(snapshot))
        elif session_factory is not None:
            session = session_factory()
            if session.journal_path is not None:
                raise ValueError(
                    "session_factory must build an unjournaled session; "
                    "recover() attaches the journal itself"
                )
        elif snapshot is None:
            raise TypeError(
                "recover() without a snapshot path requires session_factory="
            )
        else:
            # A named-but-missing snapshot and no fallback factory: let
            # the read raise the usual FileNotFoundError.
            session = cls._from_payload(_read_snapshot(snapshot))
        base_seq = session._journal_seq
        applied_seq = base_seq
        max_seen = 0
        for record in _read_journal(journal):
            seq = int(record.get("seq", 0))
            max_seen = max(max_seen, seq)
            if seq <= base_seq:
                continue
            if seq != applied_seq + 1:
                raise SnapshotCorruptionError(
                    f"{journal}: journal jumps from seq {applied_seq} to "
                    f"{seq}; records are missing"
                )
            if record.get("op") == "delete":
                session._apply_delete(
                    str(record["id"]), int(record.get("source", 0))
                )
            else:
                session._apply_upsert(
                    profile_from_record(record), int(record.get("source", 0))
                )
            applied_seq = seq
        if max_seen < base_seq:
            raise SnapshotCorruptionError(
                f"{journal}: journal ends at seq {max_seen} but the snapshot "
                f"already reflects seq {base_seq}; wrong or truncated journal"
            )
        session._journal_seq = applied_seq
        session._attach_journal(journal)
        return session

    # -- journal --------------------------------------------------------------

    @property
    def journal_path(self) -> Path | None:
        """The attached write-ahead journal, or ``None``."""
        return self._journal_path

    def _attach_journal(self, path: str | Path) -> None:
        self._journal_path = Path(path)
        self._journal_handle = self._journal_path.open(
            "a", encoding="utf-8", newline="\n"
        )

    def _journal_write(self, record: dict) -> None:
        if self._journal_handle is None:
            return
        self._journal_seq += 1
        record = {"seq": self._journal_seq, **record}
        # WAL contract: the line is appended and flushed *before* the
        # operation is applied; a record is committed once its newline
        # reaches the OS.  The two fault sites bracket the commit point.
        FAULTS.fire("journal.append", path=self._journal_path)
        self._journal_handle.write(
            json.dumps(record, ensure_ascii=False) + "\n"
        )
        self._journal_handle.flush()
        FAULTS.fire("journal.apply", path=self._journal_path)

    def close(self) -> None:
        """Flush and close the journal (idempotent; no-op when unjournaled)."""
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StreamingSession(profiles={self.index.num_profiles}, "
            f"keys={self.index.num_blocks}, "
            f"consistency={self.metablocker.consistency!r})"
        )


# -- snapshot & journal files -------------------------------------------------

def _canonical_payload_bytes(payload: dict) -> bytes:
    """The byte string the snapshot checksum is computed over.

    Canonical JSON (sorted keys, no whitespace) so the checksum depends
    only on the payload's *content*, not on serializer formatting.
    """
    return json.dumps(
        payload, ensure_ascii=False, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _read_snapshot(path: str | Path) -> dict:
    """Read, verify, and unwrap a snapshot file; returns the payload.

    Understands the format-2 checksum envelope and bare format-1
    documents.  Every way the file can be untrustworthy — truncated gzip
    stream, undecodable JSON, checksum mismatch, future format — raises
    :class:`SnapshotCorruptionError` naming the path and the reason.
    """
    path = Path(path)
    raw = path.read_bytes()
    if path.suffix == ".gz":
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError, zlib.error) as exc:
            raise SnapshotCorruptionError(
                f"{path}: truncated or corrupt gzip stream ({exc})"
            ) from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"{path}: snapshot is not decodable JSON ({exc})"
        ) from exc
    if not isinstance(document, dict):
        raise SnapshotCorruptionError(
            f"{path}: snapshot is not a JSON object"
        )
    version = document.get("format")
    if version == 1:
        # Pre-envelope layout: the document *is* the payload, unchecked.
        return document
    if version != SNAPSHOT_FORMAT:
        raise SnapshotCorruptionError(
            f"{path}: unsupported snapshot format {version!r} "
            f"(this library reads formats 1..{SNAPSHOT_FORMAT})"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise SnapshotCorruptionError(
            f"{path}: format-2 snapshot has no payload object"
        )
    expected = document.get("checksum")
    actual = zlib.crc32(_canonical_payload_bytes(payload))
    if expected != actual:
        raise SnapshotCorruptionError(
            f"{path}: checksum mismatch (stored {expected!r}, "
            f"computed {actual}); the snapshot is corrupt"
        )
    return payload


def _read_journal(path: Path) -> Iterator[dict]:
    """Yield the committed records of a write-ahead journal.

    A record is committed once its trailing newline is on disk; a torn
    final line (the crash interrupted the append) is dropped and
    truncated away so the journal is clean for re-attachment.  A
    *committed* line that does not decode is real corruption and raises
    :class:`SnapshotCorruptionError`.  A missing file reads as empty
    (the crash predated the first append).
    """
    if not path.exists():
        return
    raw = path.read_bytes()
    committed, _, torn = raw.rpartition(b"\n")
    if torn:
        with path.open("r+b") as handle:
            handle.truncate(len(raw) - len(torn))
    if not committed:
        return
    for line_no, line in enumerate(committed.split(b"\n"), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotCorruptionError(
                f"{path}:{line_no}: committed journal line is not "
                f"decodable JSON ({exc})"
            ) from exc
        if not isinstance(record, dict):
            raise SnapshotCorruptionError(
                f"{path}:{line_no}: journal line is not a JSON object"
            )
        yield record


# -- pruning (de)serialization -----------------------------------------------
# Only the node-centric schemes a StreamingMetaBlocker accepts can ever
# reach a snapshot, so only those are encoded.

def _pruning_to_payload(pruning: PruningScheme) -> dict:
    """Serialize a built-in node-centric pruning scheme."""
    kind = type(pruning)
    if kind is BlastPruning:
        return {"type": "blast", "c": pruning.c, "d": pruning.d}
    if kind is WeightNodePruning:
        return {"type": "wnp", "reciprocal": pruning.reciprocal}
    if kind is CardinalityNodePruning:
        return {"type": "cnp", "reciprocal": pruning.reciprocal, "k": pruning.k}
    raise ValueError(
        f"cannot snapshot custom pruning scheme {kind.__name__}"
    )


def _pruning_from_payload(payload: dict) -> PruningScheme:
    kind = payload["type"]
    if kind == "blast":
        return BlastPruning(c=payload["c"], d=payload["d"])
    if kind == "wnp":
        return WeightNodePruning(reciprocal=payload["reciprocal"])
    if kind == "cnp":
        return CardinalityNodePruning(
            reciprocal=payload["reciprocal"], k=payload["k"]
        )
    raise ValueError(f"unknown pruning payload type {kind!r}")
