"""Query-time views over a live block index.

A *view* is the bridge between the mutable
:class:`~repro.streaming.index.IncrementalBlockIndex` and the per-node
meta-blocking kernels: it decides how Block Purging / Block Filtering and
the graph statistics (``|B_i|``, ``|B|``, per-block entropy) are evaluated
at query time.  Two built-ins are registered under
:data:`repro.core.registry.STREAM_VIEWS`:

``exact``
    Lazily materializes the *batch* semantics: on first query after a
    mutation the live postings are lowered to a
    :class:`~repro.blocking.base.BlockCollection`, run through the very
    same :func:`~repro.blocking.purging.block_purging` and
    :func:`~repro.blocking.filtering.block_filtering` code the batch
    pipeline executes, and cached (with the CSR
    :class:`~repro.graph.entity_index.EntityIndex`) until the next
    mutation.  Queries against a frozen index reproduce the batch blocking
    graph statistic-for-statistic — this is the mode the stream-vs-batch
    equivalence property is proven against.

``fast``
    Reads the live structures directly with incrementally maintained
    statistics: purging is a per-key size check against the live profile
    count, filtering keeps only the *query* profile in its smallest key
    fraction (co-occurring profiles are not re-filtered), and ``|B_i|`` is
    the raw per-node key count.  O(neighbourhood) per query with zero
    rebuild cost per mutation — the arrival-time serving mode — at the
    price of approximating the batch restructurings.

Both views hand the kernels the same :class:`NeighborStats` arrays, so the
weighting code upstream is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.blocking.base import build_blocks
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.streaming.index import IncrementalBlockIndex

__all__ = ["NeighborStats", "ExactStreamView", "FastStreamView"]


@dataclass(frozen=True)
class NeighborStats:
    """Per-neighbor co-occurrence statistics of one query node.

    ``neighbors`` holds *canonical* ids (view-dependent space), strictly
    ascending; the parallel arrays accumulate, over the shared blocks in
    block order, exactly what :class:`repro.graph.blocking_graph.EdgeStats`
    accumulates edge-wide.
    """

    neighbors: np.ndarray
    shared: np.ndarray
    arcs_mass: np.ndarray
    entropy_mass: np.ndarray

    @property
    def degree(self) -> int:
        return int(self.neighbors.size)


_EMPTY_STATS = NeighborStats(
    neighbors=np.zeros(0, dtype=np.int64),
    shared=np.zeros(0, dtype=np.int64),
    arcs_mass=np.zeros(0, dtype=np.float64),
    entropy_mass=np.zeros(0, dtype=np.float64),
)


def _aggregate(
    members: np.ndarray,
    arcs_share: np.ndarray,
    entropies: np.ndarray,
) -> NeighborStats:
    """Deduplicate co-occurring members into :class:`NeighborStats`.

    ``members`` lists one entry per (block, co-member) incidence in block
    order; ``bincount`` over the ``unique`` inverse accumulates each
    neighbor's float masses in that original order, matching the reference
    path's sequential ``stats.x += ...`` rounding.
    """
    if members.size == 0:
        return _EMPTY_STATS
    neighbors, inverse = np.unique(members, return_inverse=True)
    shared = np.bincount(inverse, minlength=neighbors.size)
    arcs = np.bincount(inverse, weights=arcs_share, minlength=neighbors.size)
    entropy = np.bincount(inverse, weights=entropies, minlength=neighbors.size)
    return NeighborStats(
        neighbors=neighbors.astype(np.int64),
        shared=shared.astype(np.int64),
        arcs_mass=arcs,
        entropy_mass=entropy,
    )


class ExactStreamView:
    """Batch-faithful view: lazily purged + filtered snapshot of the index.

    Canonical ids follow the batch global-indexing convention: source-0
    nodes (in node-id order, i.e. first-upsert order) occupy ``[0, n1)``,
    source-1 nodes ``[n1, n1 + n2)``.  Replaying a dataset in its profile
    order therefore assigns every profile its batch global index.
    """

    name = "exact"
    #: Exact views answer neighbor-side thresholds, enabling the full
    #: two-endpoint node-centric pruning rules.
    supports_neighbor_thresholds = True

    def __init__(self, index: IncrementalBlockIndex) -> None:
        self.index = index
        self.version = index.version

        live = index.live_nodes()
        if index.clean_clean:
            live.sort(key=lambda node: (index.source_of(node), node))
            self.offset2 = sum(
                1 for node in live if index.source_of(node) == 0
            )
        else:
            self.offset2 = len(live)
        self._nodes = live  # canonical id -> index node id
        gidx = {node: position for position, node in enumerate(live)}
        self._canonical = gidx  # index node id -> canonical id

        key_string = index.key_string
        if index.clean_clean:
            keyed_cc: dict[str, tuple[set[int], set[int]]] = {}
            for kid in index.key_ids():
                posting = index.posting_by_id(kid)
                keyed_cc[key_string(kid)] = (
                    {gidx[n] for n in posting.left},
                    {gidx[n] for n in posting.right or ()},
                )
            collection = build_blocks(keyed_cc, is_clean_clean=True)
        else:
            keyed: dict[str, set[int]] = {}
            for kid in index.key_ids():
                keyed[key_string(kid)] = {
                    gidx[n] for n in index.posting_by_id(kid).left
                }
            collection = build_blocks(keyed, is_clean_clean=False)

        if len(collection) and index.num_profiles:
            collection = block_purging(
                collection,
                index.num_profiles,
                max_profile_ratio=index.purging_ratio,
                max_comparisons=index.max_comparisons,
            )
            collection = block_filtering(collection, ratio=index.filtering_ratio)
        self.collection = collection

        ei = collection.entity_index
        self._entity_index = ei
        self.total_blocks = len(collection)
        self._node_blocks = ei.node_block_counts
        self._block_ptr = ei.block_ptr.astype(np.int64)
        self._block_split = ei.block_split.astype(np.int64)
        self._entity_ids = ei.entity_ids.astype(np.int64)
        comparisons = ei.block_comparisons
        self._arcs_share = np.zeros(len(collection), dtype=np.float64)
        np.divide(
            1.0, comparisons, out=self._arcs_share, where=comparisons > 0
        )
        self._entropies = ei.block_entropies(
            index.key_entropy if index.partitioning is not None else None
        )

    # -- id mapping ----------------------------------------------------------

    def canonical_of(self, node: int) -> int:
        """Canonical (batch global) id of an index node id."""
        try:
            return self._canonical[node]
        except KeyError:
            raise KeyError(f"node {node} is not live") from None

    def nodes_of(self, canonical: np.ndarray) -> list[int]:
        """Map canonical ids back to index node ids."""
        nodes = self._nodes
        return [nodes[c] for c in canonical.tolist()]

    # -- graph statistics ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Profiles appearing in at least one (surviving) block."""
        return self._entity_index.num_indexed_profiles

    @property
    def total_assignments(self) -> int:
        """``sum_i |B_i|`` over the purged + filtered collection."""
        return int(self._node_blocks.sum())

    def node_blocks(self, canonical: np.ndarray) -> np.ndarray:
        """``|B_i|`` (filtered) for an array of canonical ids."""
        return self._node_blocks[canonical]

    def node_blocks_scalar(self, canonical: int) -> int:
        if not 0 <= canonical < self._node_blocks.size:
            return 0
        return int(self._node_blocks[canonical])

    def gather(self, canonical: int) -> NeighborStats:
        """Co-occurrence statistics of one canonical node."""
        blocks = self._entity_index.blocks_of(canonical)
        if blocks.size == 0:
            return _EMPTY_STATS
        if self.index.clean_clean:
            if canonical < self.offset2:  # query node on the E1 side
                starts = self._block_split[blocks]
                ends = self._block_ptr[blocks + 1]
            else:
                starts = self._block_ptr[blocks]
                ends = self._block_split[blocks]
        else:
            starts = self._block_ptr[blocks]
            ends = self._block_ptr[blocks + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return _EMPTY_STATS
        offsets = np.zeros(blocks.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        flat = np.repeat(starts - offsets, lengths) + np.arange(
            total, dtype=np.int64
        )
        members = self._entity_ids[flat]
        block_rep = np.repeat(blocks, lengths)
        if not self.index.clean_clean:
            mask = members != canonical
            members = members[mask]
            block_rep = block_rep[mask]
        return _aggregate(
            members,
            self._arcs_share[block_rep],
            self._entropies[block_rep],
        )


class FastStreamView:
    """Read-through view with incremental statistics (serving mode).

    Canonical ids are the index node ids themselves.  Purging is evaluated
    per key against the live profile count; filtering restricts only the
    query node to its smallest-key fraction (ties broken by key, matching
    the batch position order of key-sorted collections); ``|B_i|`` is the
    raw live key count per node.  The batch restructurings are therefore
    approximated, not reproduced — use the ``exact`` view when batch
    parity matters more than arrival-time latency.
    """

    name = "fast"
    supports_neighbor_thresholds = False

    def __init__(self, index: IncrementalBlockIndex) -> None:
        self.index = index
        self.version = index.version

    # -- id mapping ----------------------------------------------------------

    def canonical_of(self, node: int) -> int:
        self.index.profile_of(node)  # KeyError for dead nodes
        return node

    def nodes_of(self, canonical: np.ndarray) -> list[int]:
        return canonical.tolist()

    # -- graph statistics ----------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return self.index.num_blocks

    @property
    def num_nodes(self) -> int:
        return self.index.num_profiles

    @property
    def total_assignments(self) -> int:
        return self.index.total_block_assignments

    def node_blocks(self, canonical: np.ndarray) -> np.ndarray:
        index = self.index
        return np.fromiter(
            (index.node_block_count(n) for n in canonical.tolist()),
            dtype=np.int64,
            count=canonical.size,
        )

    def node_blocks_scalar(self, canonical: int) -> int:
        return self.index.node_block_count(canonical)

    def surviving_keys(self, node: int) -> list[str]:
        """The query node's keys after lazy purging + query-side filtering."""
        index = self.index
        return [index.key_string(kid) for kid in self._surviving_key_ids(node)]

    def _surviving_key_ids(self, node: int) -> list[int]:
        """Interned-id form of :meth:`surviving_keys` (same order).

        Filtering ties on equal posting sizes break by key *string* — the
        batch position order of key-sorted collections — so the sort key
        materializes the string while the result stays in id space.
        """
        index = self.index
        size_cap = index.purging_ratio * index.num_profiles
        max_comparisons = index.max_comparisons
        key_string = index.key_string
        active: list[tuple[int, str, int]] = []
        # Append order is erased by the total-order active.sort() below:
        # the (size, key string, kid) sort key has no ties.
        # repro-lint: disable-next=RL001
        for kid in index.key_ids_of(node):
            posting = index.posting_by_id(kid)
            if posting.num_comparisons == 0:
                continue
            if posting.size > size_cap:
                continue
            if (
                max_comparisons is not None
                and posting.num_comparisons > max_comparisons
            ):
                continue
            active.append((posting.size, key_string(kid), kid))
        if not active:
            return []
        active.sort()
        keep = ceil(index.filtering_ratio * len(active))
        return [kid for _, _, kid in active[:keep]]

    def gather(self, canonical: int) -> NeighborStats:
        index = self.index
        key_ids = self._surviving_key_ids(canonical)
        if not key_ids:
            return _EMPTY_STATS
        source = index.source_of(canonical)
        member_chunks: list[np.ndarray] = []
        arcs_chunks: list[np.ndarray] = []
        entropy_chunks: list[np.ndarray] = []
        for kid in key_ids:
            posting = index.posting_by_id(kid)
            left, right = posting.arrays()
            if index.clean_clean:
                others = right if source == 0 else left
            else:
                others = left[left != canonical]
            if others.size == 0:
                continue
            member_chunks.append(others)
            arcs_chunks.append(
                np.full(others.size, 1.0 / posting.num_comparisons)
            )
            entropy_chunks.append(
                np.full(others.size, index.key_entropy_by_id(kid))
            )
        if not member_chunks:
            return _EMPTY_STATS
        return _aggregate(
            np.concatenate(member_chunks),
            np.concatenate(arcs_chunks),
            np.concatenate(entropy_chunks),
        )
