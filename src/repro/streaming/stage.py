"""The streaming subsystem as a pipeline stage.

:class:`StreamingStage` replays the context's dataset through a
:class:`~repro.streaming.session.StreamingSession` — upserting every
profile, then querying each one — and materializes the union of retained
neighbourhoods as the context's block collection (one comparison per
block, like the batch meta-blocking stage).

With the default ``exact`` consistency the stage is result-equivalent to
``blocking -> purging -> filtering -> meta-blocking`` for the node-centric
pruning schemes: querying every node and taking the union of kept edges is
precisely the redefined node-centric retention rule (and the reciprocal
variants agree because each query already applies the two-endpoint test).
It exists so a streaming deployment can be validated against the batch
pipeline inside the same instrumented :class:`~repro.core.stages.Pipeline`
machinery::

    >>> from repro.core.stages import Pipeline, SchemaExtraction
    >>> from repro.streaming import StreamingStage
    >>> pipeline = Pipeline([SchemaExtraction(), StreamingStage()])
"""

from __future__ import annotations

from repro.core.config import BlastConfig
from repro.core.stages import BaseStage, PipelineContext
from repro.graph.metablocking import blocks_from_edges
from repro.graph.pruning import PruningScheme
from repro.streaming.session import StreamingSession

__all__ = ["STREAMING_SESSION", "StreamingStage"]

#: Artifact key under which the stage leaves its warmed session.
STREAMING_SESSION = "streaming_session"


class StreamingStage(BaseStage):
    """Blocking + meta-blocking via stream replay and per-node queries.

    Parameters
    ----------
    config:
        Session tunables (weighting, BLAST pruning constants, ratios,
        ``stream_consistency``, ``backend``).
    pruning:
        Optional node-centric pruning override.

    The stage reads ``context.partitioning`` when a schema stage ran
    before it (loosely schema-aware streaming) and works schema-agnostic
    otherwise; the warmed session is preserved under
    ``context.artifacts["streaming_session"]`` for interactive use after
    the pipeline returns.
    """

    name = "streaming-replay"
    phase = "metablocking"

    def __init__(
        self,
        config: BlastConfig | None = None,
        pruning: PruningScheme | None = None,
    ) -> None:
        self.config = config or BlastConfig()
        self.pruning = pruning

    def apply(self, context: PipelineContext) -> None:
        dataset = context.dataset
        session = StreamingSession(
            self.config,
            clean_clean=dataset.is_clean_clean,
            partitioning=context.partitioning,
            pruning=self.pruning,
        )
        for gidx, profile in dataset.iter_profiles():
            session.upsert(profile, source=dataset.source_of(gidx))

        offset2 = dataset.offset2 if dataset.is_clean_clean else None
        pairs: set[tuple[int, int]] = set()
        for gidx, profile in dataset.iter_profiles():
            source = dataset.source_of(gidx)
            # Query through the metablocker directly: the session would
            # apply config.stream_query_k, a *serving* cap that must not
            # truncate the batch-equivalent retained neighbourhoods.
            for candidate in session.metablocker.candidates(
                profile.profile_id, k=None, source=source
            ):
                if candidate.source == 0:
                    other = dataset.collection1.index_of(candidate.profile_id)
                else:
                    other = offset2 + dataset.collection2.index_of(
                        candidate.profile_id
                    )
                pairs.add((gidx, other) if gidx < other else (other, gidx))

        context.artifacts[STREAMING_SESSION] = session
        context.blocks = blocks_from_edges(
            sorted(pairs), dataset.is_clean_clean, presorted=True
        )
