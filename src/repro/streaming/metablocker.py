"""Query-time meta-blocking: per-node weighting + node-centric pruning.

Where the batch :class:`~repro.graph.metablocking.MetaBlocker` weights and
prunes the *whole* blocking graph, a :class:`StreamingMetaBlocker` answers
``candidates(profile, k)`` by computing edge weights for just the query
node against the live index and applying a node-centric pruning scheme to
that neighbourhood.

Weighting supports CBS, ECBS, JS, ARCS and BLAST's CHI_H (EJS needs the
global degree distribution and is rejected).  The arithmetic deliberately
mirrors the batch implementations operation-for-operation — shared-block
masses are accumulated in block order, ECBS log factors and the
chi-squared contingency cells are evaluated in the canonical ``(i, j)``
endpoint order — so that, over the ``exact`` view of a frozen index, a
query reproduces the batch edge weights *bit for bit* and the retained
neighbourhood equals the batch pruning output (the property suite in
``tests/property/test_prop_streaming.py`` enforces this).

Pruning supports the node-centric schemes: BLAST's max-based rule, WNP and
CNP (redefined and reciprocal).  On views that can answer neighbor-side
thresholds (``exact``), the full two-endpoint rules run, with per-node
threshold summaries cached per index version; on one-sided views
(``fast``) only the query node's local threshold applies.  The
edge-centric WEP/CEP have no per-node formulation and are rejected.

Two arithmetic backends exist, mirroring the batch registry names:
``vectorized`` evaluates a neighbourhood with numpy kernels,
``python`` with the reference scalar formulas — both produce identical
results and the python path doubles as the test oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.contingency import chi_squared
from repro.graph.pruning import (
    BlastPruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightNodePruning,
)
from repro.graph.vectorized import (
    _chi_squared,
    _clears as _clears_arr,
    _safe_log as _safe_log_arr,
    _sequential_sum,
)
from repro.graph.weights import WeightingScheme, _safe_log
from repro.streaming.index import IncrementalBlockIndex
from repro.streaming.views import NeighborStats

__all__ = ["Candidate", "StreamingMetaBlocker"]

#: Pruning schemes with a per-node (node-centric) formulation.
_NODE_CENTRIC = (BlastPruning, WeightNodePruning, CardinalityNodePruning)

#: Streaming query backends (arithmetic paths, result-identical).
_BACKENDS = ("vectorized", "python")


@dataclass(frozen=True)
class Candidate:
    """One retained comparison partner of a query profile."""

    profile_id: str
    source: int
    weight: float


@dataclass
class _NodeSummary:
    """Cached per-node threshold statistics (one index version)."""

    max_weight: float
    mean_weight: float
    #: Sort key ``(-w, i, j)`` of the node's (k+1)-th best incident edge,
    #: or ``None`` when the node has at most k incident edges (CNP keeps
    #: an edge iff its key sorts strictly before this cutoff).
    cnp_cutoff: tuple[float, int, int] | None


class StreamingMetaBlocker:
    """Per-node meta-blocking over an :class:`IncrementalBlockIndex`.

    Parameters
    ----------
    index:
        The live block index queries run against.
    weighting:
        A :class:`~repro.graph.weights.WeightingScheme` or its string name.
        ``EJS`` and custom weighting callables are rejected — both need
        whole-graph statistics a per-node query cannot see.
    pruning:
        A node-centric pruning scheme (BLAST's max-based rule by default,
        or WNP / CNP in either variant).  WEP/CEP raise.
    entropy_boost:
        Multiply traditional weights by ``h(B_uv)`` (the ``wsh`` ablation).
    consistency:
        Name of the query view, resolved through
        :data:`repro.core.registry.STREAM_VIEWS` (``"exact"`` or
        ``"fast"`` built in).
    backend:
        ``"vectorized"`` (numpy kernels) or ``"python"`` (reference scalar
        arithmetic); result-identical.
    """

    def __init__(
        self,
        index: IncrementalBlockIndex,
        *,
        weighting: WeightingScheme | str = WeightingScheme.CHI_H,
        pruning: PruningScheme | None = None,
        entropy_boost: bool = False,
        consistency: str = "exact",
        backend: str = "vectorized",
    ) -> None:
        if callable(weighting) and not isinstance(weighting, (str, WeightingScheme)):
            raise TypeError(
                "streaming queries need a named WeightingScheme; custom "
                "weighting callables see the whole graph and cannot be "
                "evaluated per node"
            )
        weighting = WeightingScheme(weighting)
        if weighting is WeightingScheme.EJS:
            raise ValueError(
                "EJS weighting needs the global node-degree distribution "
                "and is not available at query time; use cbs/ecbs/js/arcs/chi_h"
            )
        pruning = pruning if pruning is not None else BlastPruning()
        if type(pruning) not in _NODE_CENTRIC:
            raise ValueError(
                f"{type(pruning).__name__} is not node-centric; streaming "
                "pruning must be one of BlastPruning, WeightNodePruning, "
                "CardinalityNodePruning"
            )
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown streaming backend {backend!r}; "
                f"choose from {', '.join(_BACKENDS)}"
            )
        self.index = index
        self.weighting = weighting
        self.pruning = pruning
        self.entropy_boost = entropy_boost
        self.consistency = consistency
        self.backend = backend
        self._view = None
        self._view_version: int | None = None
        self._summaries: dict[int, _NodeSummary] = {}
        self._cnp_k_value: tuple[object, int] | None = None

    # -- view management -----------------------------------------------------

    def view(self):
        """The current query view, rebuilt lazily after index mutations."""
        if self._view is None or self._view_version != self.index.version:
            from repro.core.registry import STREAM_VIEWS

            self._view = STREAM_VIEWS.get(self.consistency)(self.index)
            self._view_version = self.index.version
            self._summaries.clear()
        return self._view

    # -- public queries ------------------------------------------------------

    def neighborhood(self, ref, source: int = 0) -> list[Candidate]:
        """All co-occurring profiles of *ref* with their edge weights.

        *ref* is a profile id or an (already upserted)
        :class:`~repro.data.profile.EntityProfile`; the result is sorted by
        descending weight (ties by id) and is *unpruned*.
        """
        view, canonical = self._resolve(ref, source)
        stats = view.gather(canonical)
        weights = self._weights(stats, canonical, view)
        return self._to_candidates(
            stats.neighbors, weights, np.ones(weights.size, dtype=bool), view
        )

    def candidates(
        self, ref, k: int | None = None, source: int = 0
    ) -> list[Candidate]:
        """The retained comparison partners of *ref* after pruning.

        ``k`` optionally caps the result to the top-k by weight (applied
        after pruning; it does not alter the pruning decision itself).
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be positive, got {k}")
        view, canonical = self._resolve(ref, source)
        stats = view.gather(canonical)
        weights = self._weights(stats, canonical, view)
        mask = self._retained_mask(canonical, stats.neighbors, weights, view)
        out = self._to_candidates(stats.neighbors, weights, mask, view)
        return out if k is None else out[:k]

    # -- weighting kernels ---------------------------------------------------

    def _resolve(self, ref, source: int):
        profile_id = getattr(ref, "profile_id", ref)
        node = self.index.node_of(profile_id, source)
        view = self.view()
        return view, view.canonical_of(node)

    def _to_candidates(
        self,
        neighbors: np.ndarray,
        weights: np.ndarray,
        mask: np.ndarray,
        view,
    ) -> list[Candidate]:
        kept = neighbors[mask]
        kept_weights = weights[mask]
        order = np.lexsort((kept, -kept_weights))
        nodes = view.nodes_of(kept[order])
        index = self.index
        return [
            Candidate(
                profile_id=index.profile_of(node).profile_id,
                source=index.source_of(node),
                weight=weight,
            )
            for node, weight in zip(nodes, kept_weights[order].tolist())
        ]

    def _weights(
        self, stats: NeighborStats, canonical: int, view
    ) -> np.ndarray:
        if stats.degree == 0:
            return np.zeros(0, dtype=np.float64)
        if self.backend == "python":
            return self._weights_python(stats, canonical, view)
        return self._weights_vectorized(stats, canonical, view)

    def _weights_vectorized(
        self, stats: NeighborStats, q: int, view
    ) -> np.ndarray:
        scheme = self.weighting
        shared = stats.shared
        total = view.total_blocks
        blocks_q = view.node_blocks_scalar(q)
        blocks_n = view.node_blocks(stats.neighbors)
        # Canonical endpoint order (i < j): arithmetic below evaluates the
        # i-side factor first, exactly like the batch loop, so rounding
        # agrees whether the query node is the smaller or larger endpoint.
        n_is_lower = stats.neighbors < q
        blocks_i = np.where(n_is_lower, blocks_n, blocks_q)
        blocks_j = np.where(n_is_lower, blocks_q, blocks_n)

        if scheme is WeightingScheme.CBS:
            weights = shared.astype(np.float64)
        elif scheme is WeightingScheme.ECBS:
            log_n = _safe_log_arr(total, blocks_n)
            ratio = total / blocks_q if blocks_q else 0.0
            log_q = math.log10(ratio) if ratio > 1.0 else 0.0
            log_i = np.where(n_is_lower, log_n, log_q)
            log_j = np.where(n_is_lower, log_q, log_n)
            weights = shared * log_i * log_j
        elif scheme is WeightingScheme.JS:
            weights = shared / (blocks_i + blocks_j - shared)
        elif scheme is WeightingScheme.ARCS:
            weights = stats.arcs_mass.copy()
        else:  # CHI_H
            expected = blocks_i * blocks_j / total
            chi = _chi_squared(shared, blocks_i, blocks_j, total)
            weights = np.where(
                shared <= expected,
                0.0,
                chi * (stats.entropy_mass / shared),
            )
        if self.entropy_boost and scheme is not WeightingScheme.CHI_H:
            weights = weights * (stats.entropy_mass / shared)
        return weights

    def _weights_python(
        self, stats: NeighborStats, q: int, view
    ) -> np.ndarray:
        scheme = self.weighting
        total = view.total_blocks
        blocks_q = view.node_blocks_scalar(q)
        blocks_n = view.node_blocks(stats.neighbors).tolist()
        out = np.zeros(stats.degree, dtype=np.float64)
        for position, neighbor in enumerate(stats.neighbors.tolist()):
            shared = int(stats.shared[position])
            b_n = blocks_n[position]
            b_i, b_j = (b_n, blocks_q) if neighbor < q else (blocks_q, b_n)
            if scheme is WeightingScheme.CBS:
                weight = float(shared)
            elif scheme is WeightingScheme.ECBS:
                weight = (
                    shared
                    * _safe_log(total / b_i)
                    * _safe_log(total / b_j)
                )
            elif scheme is WeightingScheme.JS:
                weight = shared / (b_i + b_j - shared)
            elif scheme is WeightingScheme.ARCS:
                weight = float(stats.arcs_mass[position])
            else:  # CHI_H
                expected = b_i * b_j / total
                if shared <= expected:
                    weight = 0.0
                else:
                    weight = chi_squared(shared, b_i, b_j, total) * (
                        float(stats.entropy_mass[position]) / shared
                    )
            if self.entropy_boost and scheme is not WeightingScheme.CHI_H:
                weight *= float(stats.entropy_mass[position]) / shared
            out[position] = weight
        return out

    # -- node-centric pruning ------------------------------------------------

    def _summary(self, canonical: int, view) -> _NodeSummary:
        """Threshold statistics of one node, cached per index version."""
        summary = self._summaries.get(canonical)
        if summary is None:
            stats = view.gather(canonical)
            weights = self._weights(stats, canonical, view)
            summary = self._summarize(canonical, stats.neighbors, weights)
            self._summaries[canonical] = summary
        return summary

    def _summarize(
        self, canonical: int, neighbors: np.ndarray, weights: np.ndarray
    ) -> _NodeSummary:
        if weights.size == 0:
            return _NodeSummary(0.0, 0.0, None)
        # Neighbors arrive ascending, so the sequential sum reproduces the
        # batch per-node accumulation order (edges in lexicographic order).
        mean = _sequential_sum(weights) / weights.size
        maximum = max(0.0, float(weights.max()))
        cutoff = None
        k = self._cnp_k(None)
        if k is not None and weights.size > k:
            ranked = sorted(
                self._edge_sort_keys(canonical, neighbors, weights)
            )
            cutoff = ranked[k]
        return _NodeSummary(maximum, mean, cutoff)

    @staticmethod
    def _edge_sort_keys(
        canonical: int, neighbors: np.ndarray, weights: np.ndarray
    ) -> list[tuple[float, int, int]]:
        """Batch CNP ranking keys ``(-w, i, j)`` for one node's edges."""
        return [
            (-w, min(canonical, n), max(canonical, n))
            for n, w in zip(neighbors.tolist(), weights.tolist())
        ]

    def _cnp_k(self, view) -> int | None:
        """The CNP per-node k, or ``None`` when pruning is not CNP.

        Lazily resolved from the view-global block statistics exactly as
        the batch default does (``ceil(sum_i |B_i| / |V|)``); cached per
        view build via :attr:`_cnp_k_cache`.
        """
        if not isinstance(self.pruning, CardinalityNodePruning):
            return None
        if self.pruning.k is not None:
            return self.pruning.k
        cached = self._cnp_k_value
        if cached is not None and cached[0] is self._view:
            return cached[1]
        view = view if view is not None else self.view()
        k = max(
            1, math.ceil(view.total_assignments / max(1, view.num_nodes))
        )
        self._cnp_k_value = (self._view, k)
        return k

    def _retained_mask(
        self,
        q: int,
        neighbors: np.ndarray,
        weights: np.ndarray,
        view,
    ) -> np.ndarray:
        if weights.size == 0:
            return np.zeros(0, dtype=bool)
        pruning = self.pruning
        two_hop = view.supports_neighbor_thresholds

        if isinstance(pruning, BlastPruning):
            theta_q = max(0.0, float(weights.max())) / pruning.c
            if two_hop:
                theta_n = np.fromiter(
                    (
                        self._summary(n, view).max_weight / pruning.c
                        for n in neighbors.tolist()
                    ),
                    dtype=np.float64,
                    count=neighbors.size,
                )
            else:
                theta_n = np.full(neighbors.size, theta_q)
            thresholds = (theta_q + theta_n) / pruning.d
            return (weights > 0.0) & _clears_arr(weights, thresholds)

        if isinstance(pruning, WeightNodePruning):
            theta_q = _sequential_sum(weights) / weights.size
            above_q = _clears_arr(weights, np.full(neighbors.size, theta_q))
            if not two_hop:
                return above_q
            theta_n = np.fromiter(
                (
                    self._summary(n, view).mean_weight
                    for n in neighbors.tolist()
                ),
                dtype=np.float64,
                count=neighbors.size,
            )
            above_n = _clears_arr(weights, theta_n)
            return (above_q & above_n) if pruning.reciprocal else (above_q | above_n)

        # CardinalityNodePruning
        k = self._cnp_k(view)
        keys = self._edge_sort_keys(q, neighbors, weights)
        order = sorted(range(len(keys)), key=keys.__getitem__)
        in_top_q = np.zeros(neighbors.size, dtype=bool)
        in_top_q[order[:k]] = True
        if not two_hop:
            return in_top_q
        in_top_n = np.zeros(neighbors.size, dtype=bool)
        for position, neighbor in enumerate(neighbors.tolist()):
            cutoff = self._summary(neighbor, view).cnp_cutoff
            in_top_n[position] = cutoff is None or keys[position] < cutoff
        return (in_top_q & in_top_n) if pruning.reciprocal else (in_top_q | in_top_n)

    def __repr__(self) -> str:
        return (
            f"StreamingMetaBlocker(weighting={self.weighting.value}, "
            f"pruning={type(self.pruning).__name__}, "
            f"consistency={self.consistency!r}, backend={self.backend!r})"
        )
