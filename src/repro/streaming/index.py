"""The live block index: mutable token -> posting-list blocking.

Batch BLAST indexes a frozen dataset once; this module keeps the same
blocking structure *mutable*.  An :class:`IncrementalBlockIndex` maps every
blocking key (plain token, or attribute-cluster-disambiguated
``token#cluster`` when a loose schema is supplied) to a
:class:`PostingList` of the live profiles containing it, and supports
``upsert``/``delete`` in time proportional to one profile's key set.

Consistency with the batch pipeline is by construction: keys are derived
through :func:`repro.blocking.schema_aware.profile_blocking_keys` — the
same function the batch blockers call — and the expensive restructurings
(Block Purging, Block Filtering) are *not* applied on mutation.  They are
evaluated lazily at query time by the views of ``repro.streaming.views``,
so every write stays cheap and every read can still reproduce batch
semantics exactly.

Node identity is stable: a ``(source, profile_id)`` pair keeps its integer
node id across upsert -> delete -> upsert cycles, which makes the index
state after such a cycle identical to the state after a single upsert.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.blocking.schema_aware import profile_blocking_keys, split_key
from repro.data.profile import EntityProfile
from repro.schema.partition import AttributePartitioning


class PostingList:
    """The live members of one blocking key.

    Mutation happens on plain Python sets; :meth:`arrays` lowers the sets
    to sorted int64 numpy arrays on demand and caches them until the next
    mutation, so the vectorized query kernels always gather from
    array-backed postings.
    """

    __slots__ = ("left", "right", "_arrays")

    def __init__(self, clean_clean: bool) -> None:
        self.left: set[int] = set()
        self.right: set[int] | None = set() if clean_clean else None
        self._arrays: tuple[np.ndarray, np.ndarray | None] | None = None

    @property
    def is_clean_clean(self) -> bool:
        return self.right is not None

    @property
    def size(self) -> int:
        """Number of member profiles (both sources)."""
        return len(self.left) + (len(self.right) if self.right else 0)

    @property
    def num_comparisons(self) -> int:
        """``||b||`` of the block this posting list denotes."""
        if self.right is not None:
            return len(self.left) * len(self.right)
        n = len(self.left)
        return n * (n - 1) // 2

    def add(self, node: int, side: int) -> None:
        (self.left if side == 0 else self.right).add(node)
        self._arrays = None

    def discard(self, node: int, side: int) -> None:
        (self.left if side == 0 else self.right).discard(node)
        self._arrays = None

    def side(self, side: int) -> set[int]:
        """The member set of one source (``left`` for dirty indexes)."""
        return self.left if side == 0 else (self.right or set())

    def arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Sorted ``(left, right)`` member arrays (cached until mutated)."""
        if self._arrays is None:
            left = np.fromiter(
                sorted(self.left), dtype=np.int64, count=len(self.left)
            )
            right = None
            if self.right is not None:
                right = np.fromiter(
                    sorted(self.right), dtype=np.int64, count=len(self.right)
                )
            self._arrays = (left, right)
        return self._arrays

    def __repr__(self) -> str:
        return f"PostingList(size={self.size})"


class IncrementalBlockIndex:
    """A mutable, loosely schema-aware token -> posting-list block index.

    Parameters
    ----------
    clean_clean:
        Two-source (clean-clean) or single-source (dirty) indexing.  For
        clean-clean indexes every operation takes a ``source`` of 0 or 1;
        dirty indexes accept only source 0.
    partitioning:
        Optional loose schema.  When given, blocking keys are disambiguated
        by attribute cluster (``token#cluster``) exactly as in the batch
        Phase 2, and :meth:`key_entropy` resolves each key to its cluster's
        aggregate entropy.
    min_token_length / transformation / q:
        Key-derivation tunables, forwarded verbatim to
        :func:`repro.blocking.schema_aware.profile_blocking_keys`.
    purging_ratio / max_comparisons / filtering_ratio:
        Block Purging and Block Filtering parameters.  They are *stored*
        here but applied lazily by the query-time views, never on mutation.
    """

    def __init__(
        self,
        *,
        clean_clean: bool = False,
        partitioning: AttributePartitioning | None = None,
        min_token_length: int = 2,
        transformation: str = "token",
        q: int = 3,
        purging_ratio: float = 0.5,
        max_comparisons: int | None = None,
        filtering_ratio: float = 0.8,
    ) -> None:
        if not 0.0 < purging_ratio <= 1.0:
            raise ValueError(f"purging_ratio must be in (0, 1], got {purging_ratio}")
        if not 0.0 < filtering_ratio <= 1.0:
            raise ValueError(
                f"filtering_ratio must be in (0, 1], got {filtering_ratio}"
            )
        self.clean_clean = clean_clean
        self.partitioning = partitioning
        self.min_token_length = min_token_length
        self.transformation = transformation
        self.q = q
        self.purging_ratio = purging_ratio
        self.max_comparisons = max_comparisons
        self.filtering_ratio = filtering_ratio

        self._postings: dict[str, PostingList] = {}
        self._ids: dict[tuple[int, str], int] = {}  # stable, never removed
        self._profiles: dict[int, EntityProfile] = {}  # live nodes only
        self._sources: dict[int, int] = {}
        self._keys: dict[int, frozenset[str]] = {}
        self._next_id = 0
        self._version = 0
        self._total_assignments = 0  # sum over live nodes of |keys|

    # -- introspection -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter; query views cache against it."""
        return self._version

    @property
    def num_profiles(self) -> int:
        """Live (non-deleted) profiles, indexed or not."""
        return len(self._profiles)

    @property
    def num_blocks(self) -> int:
        """Distinct blocking keys with at least one live member."""
        return len(self._postings)

    @property
    def total_block_assignments(self) -> int:
        """``sum_i |B_i|`` over live nodes (incrementally maintained)."""
        return self._total_assignments

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, key: object) -> bool:
        return key in self._postings

    def posting(self, key: str) -> PostingList:
        """The posting list of *key* (KeyError when no live member has it)."""
        return self._postings[key]

    def keys(self) -> Iterator[str]:
        """Iterate over the live blocking keys (arbitrary order)."""
        return iter(self._postings)

    def live_nodes(self) -> list[int]:
        """All live node ids, ascending (== arrival order of first upsert)."""
        return sorted(self._profiles)

    def node_of(self, profile_id: str, source: int = 0) -> int:
        """The live node id of ``(source, profile_id)`` (KeyError if absent)."""
        node = self._ids.get((source, str(profile_id)))
        if node is None or node not in self._profiles:
            raise KeyError(
                f"profile {profile_id!r} (source {source}) is not in the index"
            )
        return node

    def profile_of(self, node: int) -> EntityProfile:
        return self._profiles[node]

    def source_of(self, node: int) -> int:
        return self._sources[node]

    def keys_of(self, node: int) -> frozenset[str]:
        """The blocking keys of a live node."""
        return self._keys[node]

    def node_block_count(self, node: int) -> int:
        """Raw ``|B_i|`` of a live node (purging/filtering not applied)."""
        return len(self._keys[node])

    def key_entropy(self, key: str) -> float:
        """Aggregate entropy of *key*'s attribute cluster (1.0 without schema)."""
        if self.partitioning is None:
            return 1.0
        _, cluster = split_key(key)
        return self.partitioning.entropy_of(cluster)

    def derive_keys(self, profile: EntityProfile, source: int = 0) -> set[str]:
        """The blocking keys *profile* would be indexed under."""
        return profile_blocking_keys(
            profile,
            source,
            self.partitioning,
            min_token_length=self.min_token_length,
            transformation=self.transformation,
            q=self.q,
        )

    # -- mutation ------------------------------------------------------------

    def _check_source(self, source: int) -> None:
        if self.clean_clean:
            if source not in (0, 1):
                raise ValueError(f"source must be 0 or 1, got {source}")
        elif source != 0:
            raise ValueError(f"a dirty index has a single source, got {source}")

    def upsert(self, profile: EntityProfile, source: int = 0) -> int:
        """Insert or replace *profile*; returns its (stable) node id.

        Re-upserting an identical live profile is a no-op (the version does
        not move, so cached query views stay valid).
        """
        self._check_source(source)
        ref = (source, profile.profile_id)
        node = self._ids.get(ref)
        if node is not None and self._profiles.get(node) == profile:
            return node
        if node is None:
            node = self._next_id
            self._next_id += 1
            self._ids[ref] = node

        new_keys = frozenset(self.derive_keys(profile, source))
        old_keys = self._keys.get(node, frozenset())
        for key in old_keys - new_keys:
            self._remove_membership(key, node, source)
        for key in new_keys - old_keys:
            posting = self._postings.get(key)
            if posting is None:
                posting = PostingList(self.clean_clean)
                self._postings[key] = posting
            posting.add(node, source)

        self._profiles[node] = profile
        self._sources[node] = source
        self._keys[node] = new_keys
        self._total_assignments += len(new_keys) - len(old_keys)
        self._version += 1
        return node

    def delete(self, profile_id: str, source: int = 0) -> bool:
        """Remove a live profile; returns whether anything was deleted.

        The ``(source, profile_id) -> node`` mapping is kept, so a later
        re-upsert revives the same node id.
        """
        self._check_source(source)
        node = self._ids.get((source, str(profile_id)))
        if node is None or node not in self._profiles:
            return False
        for key in self._keys[node]:
            self._remove_membership(key, node, source)
        self._total_assignments -= len(self._keys[node])
        del self._profiles[node]
        del self._sources[node]
        del self._keys[node]
        self._version += 1
        return True

    def _remove_membership(self, key: str, node: int, source: int) -> None:
        posting = self._postings.get(key)
        if posting is None:
            return
        posting.discard(node, source)
        if posting.size == 0:
            del self._postings[key]

    def __repr__(self) -> str:
        kind = "clean-clean" if self.clean_clean else "dirty"
        return (
            f"IncrementalBlockIndex(kind={kind}, profiles={self.num_profiles}, "
            f"keys={self.num_blocks}, version={self.version})"
        )
