"""The live block index: mutable interned-key -> posting-list blocking.

Batch BLAST indexes a frozen dataset once; this module keeps the same
blocking structure *mutable*.  An :class:`IncrementalBlockIndex` maps every
blocking key (plain token, or attribute-cluster-disambiguated
``token#cluster`` when a loose schema is supplied) to a
:class:`PostingList` of the live profiles containing it, and supports
``upsert``/``delete`` in time proportional to one profile's key set.

Keys are *interned*: a :class:`~repro.data.corpus.TokenDictionary` maps
each key string to a stable ``int32`` id on first sight, posting lists and
per-node key sets are held in id space, and strings are materialized only
at the public API boundary.  The dictionary grows incrementally — ids are
never reused or dropped, even when a key's last live member disappears —
and is serialized into session snapshots so posting-list identity survives
a :meth:`~repro.streaming.session.StreamingSession.snapshot`/
``restore`` round trip bit for bit.

Consistency with the batch pipeline is by construction: keys are derived
through :func:`repro.blocking.schema_aware.profile_blocking_keys` — the
same function the batch blockers call — and the expensive restructurings
(Block Purging, Block Filtering) are *not* applied on mutation.  They are
evaluated lazily at query time by the views of ``repro.streaming.views``,
so every write stays cheap and every read can still reproduce batch
semantics exactly.

Node identity is stable: a ``(source, profile_id)`` pair keeps its integer
node id across upsert -> delete -> upsert cycles, which makes the index
state after such a cycle identical to the state after a single upsert.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.blocking.schema_aware import profile_blocking_keys, split_key
from repro.data.corpus import TokenDictionary
from repro.data.profile import EntityProfile
from repro.schema.partition import AttributePartitioning


class PostingList:
    """The live members of one blocking key.

    Mutation happens on plain Python sets; :meth:`arrays` lowers the sets
    to sorted int64 numpy arrays on demand and caches them until the next
    mutation, so the vectorized query kernels always gather from
    array-backed postings.
    """

    __slots__ = ("left", "right", "_arrays")

    def __init__(self, clean_clean: bool) -> None:
        self.left: set[int] = set()
        self.right: set[int] | None = set() if clean_clean else None
        self._arrays: tuple[np.ndarray, np.ndarray | None] | None = None

    @property
    def is_clean_clean(self) -> bool:
        return self.right is not None

    @property
    def size(self) -> int:
        """Number of member profiles (both sources)."""
        return len(self.left) + (len(self.right) if self.right else 0)

    @property
    def num_comparisons(self) -> int:
        """``||b||`` of the block this posting list denotes."""
        if self.right is not None:
            return len(self.left) * len(self.right)
        n = len(self.left)
        return n * (n - 1) // 2

    def add(self, node: int, side: int) -> None:
        (self.left if side == 0 else self.right).add(node)
        self._arrays = None

    def discard(self, node: int, side: int) -> None:
        (self.left if side == 0 else self.right).discard(node)
        self._arrays = None

    def side(self, side: int) -> set[int]:
        """The member set of one source (``left`` for dirty indexes)."""
        return self.left if side == 0 else (self.right or set())

    def arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Sorted ``(left, right)`` member arrays (cached until mutated)."""
        if self._arrays is None:
            left = np.fromiter(
                sorted(self.left), dtype=np.int64, count=len(self.left)
            )
            right = None
            if self.right is not None:
                right = np.fromiter(
                    sorted(self.right), dtype=np.int64, count=len(self.right)
                )
            self._arrays = (left, right)
        return self._arrays

    def __repr__(self) -> str:
        return f"PostingList(size={self.size})"


class IncrementalBlockIndex:
    """A mutable, loosely schema-aware token -> posting-list block index.

    Parameters
    ----------
    clean_clean:
        Two-source (clean-clean) or single-source (dirty) indexing.  For
        clean-clean indexes every operation takes a ``source`` of 0 or 1;
        dirty indexes accept only source 0.
    partitioning:
        Optional loose schema.  When given, blocking keys are disambiguated
        by attribute cluster (``token#cluster``) exactly as in the batch
        Phase 2, and :meth:`key_entropy` resolves each key to its cluster's
        aggregate entropy.
    min_token_length / transformation / q:
        Key-derivation tunables, forwarded verbatim to
        :func:`repro.blocking.schema_aware.profile_blocking_keys`.
    purging_ratio / max_comparisons / filtering_ratio:
        Block Purging and Block Filtering parameters.  They are *stored*
        here but applied lazily by the query-time views, never on mutation.
    key_dictionary:
        Pre-seeded key interning (a snapshot restore passes the serialized
        dictionary here so key ids survive the round trip).  A fresh
        dictionary is created when omitted.
    """

    def __init__(
        self,
        *,
        clean_clean: bool = False,
        partitioning: AttributePartitioning | None = None,
        min_token_length: int = 2,
        transformation: str = "token",
        q: int = 3,
        purging_ratio: float = 0.5,
        max_comparisons: int | None = None,
        filtering_ratio: float = 0.8,
        key_dictionary: TokenDictionary | None = None,
    ) -> None:
        if not 0.0 < purging_ratio <= 1.0:
            raise ValueError(f"purging_ratio must be in (0, 1], got {purging_ratio}")
        if not 0.0 < filtering_ratio <= 1.0:
            raise ValueError(
                f"filtering_ratio must be in (0, 1], got {filtering_ratio}"
            )
        self.clean_clean = clean_clean
        # key id -> h, lazy; created before the partitioning setter runs,
        # which clears it on every schema (re)assignment.
        self._entropies: dict[int, float] = {}
        self.partitioning = partitioning
        self.min_token_length = min_token_length
        self.transformation = transformation
        self.q = q
        self.purging_ratio = purging_ratio
        self.max_comparisons = max_comparisons
        self.filtering_ratio = filtering_ratio

        self.key_dictionary = key_dictionary or TokenDictionary()
        self._postings: dict[int, PostingList] = {}  # key id -> posting
        self._ids: dict[tuple[int, str], int] = {}  # stable, never removed
        self._profiles: dict[int, EntityProfile] = {}  # live nodes only
        self._sources: dict[int, int] = {}
        self._keys: dict[int, frozenset[int]] = {}  # node -> key ids
        self._next_id = 0
        self._version = 0
        self._total_assignments = 0  # sum over live nodes of |keys|

    # -- introspection -------------------------------------------------------

    @property
    def partitioning(self) -> AttributePartitioning | None:
        """The loose schema keys are disambiguated and weighted against."""
        return self._partitioning

    @partitioning.setter
    def partitioning(self, value: AttributePartitioning | None) -> None:
        # Swapping the schema invalidates every cached per-key entropy;
        # without this, keys queried before the swap would keep entropies
        # from the previous partitioning generation.
        self._partitioning = value
        self._entropies.clear()

    @property
    def version(self) -> int:
        """Monotonic mutation counter; query views cache against it."""
        return self._version

    @property
    def num_profiles(self) -> int:
        """Live (non-deleted) profiles, indexed or not."""
        return len(self._profiles)

    @property
    def num_blocks(self) -> int:
        """Distinct blocking keys with at least one live member."""
        return len(self._postings)

    @property
    def total_block_assignments(self) -> int:
        """``sum_i |B_i|`` over live nodes (incrementally maintained)."""
        return self._total_assignments

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, key: object) -> bool:
        kid = self.key_dictionary.get(key) if isinstance(key, str) else None
        return kid is not None and kid in self._postings

    def posting(self, key: str) -> PostingList:
        """The posting list of *key* (KeyError when no live member has it)."""
        kid = self.key_dictionary.get(key)
        if kid is None or kid not in self._postings:
            raise KeyError(key)
        return self._postings[kid]

    def posting_by_id(self, kid: int) -> PostingList:
        """The posting list of an interned key id (KeyError when dead)."""
        return self._postings[kid]

    def keys(self) -> Iterator[str]:
        """Iterate over the live blocking keys (arbitrary order)."""
        token_of = self.key_dictionary.token_of
        return (token_of(kid) for kid in self._postings)

    def key_ids(self) -> Iterator[int]:
        """Iterate over the live interned key ids (arbitrary order)."""
        return iter(self._postings)

    def key_string(self, kid: int) -> str:
        """The key string an interned id stands for (live or not)."""
        return self.key_dictionary.token_of(kid)

    def live_nodes(self) -> list[int]:
        """All live node ids, ascending (== arrival order of first upsert)."""
        return sorted(self._profiles)

    def node_map_payload(self) -> list[list]:
        """Every ``(source, profile_id) -> node`` assignment, in node order.

        Tombstoned profiles are included: the map is what keeps node ids
        stable across upsert -> delete -> upsert cycles, so a snapshot
        round trip must carry all of it for the restored index to assign
        the same ids — and therefore the same equal-weight neighbor
        ordering — as the index that never restarted.
        """
        return [
            [source, profile_id, node]
            for (source, profile_id), node in sorted(
                self._ids.items(), key=lambda item: item[1]
            )
        ]

    def seed_node_map(self, entries: Iterable[Sequence]) -> None:
        """Pre-seed the node-id map from :meth:`node_map_payload` output.

        Restore-time only: the index must still be empty.
        """
        if self._ids:
            raise ValueError(
                "the node map can only be seeded into an empty index"
            )
        for source, profile_id, node in entries:
            self._ids[(int(source), str(profile_id))] = int(node)
        if self._ids:
            self._next_id = max(self._ids.values()) + 1

    def node_of(self, profile_id: str, source: int = 0) -> int:
        """The live node id of ``(source, profile_id)`` (KeyError if absent)."""
        node = self._ids.get((source, str(profile_id)))
        if node is None or node not in self._profiles:
            raise KeyError(
                f"profile {profile_id!r} (source {source}) is not in the index"
            )
        return node

    def profile_of(self, node: int) -> EntityProfile:
        return self._profiles[node]

    def source_of(self, node: int) -> int:
        return self._sources[node]

    def keys_of(self, node: int) -> frozenset[str]:
        """The blocking keys of a live node, as strings."""
        token_of = self.key_dictionary.token_of
        return frozenset(token_of(kid) for kid in self._keys[node])

    def key_ids_of(self, node: int) -> frozenset[int]:
        """The interned blocking-key ids of a live node."""
        return self._keys[node]

    def node_block_count(self, node: int) -> int:
        """Raw ``|B_i|`` of a live node (purging/filtering not applied)."""
        return len(self._keys[node])

    def key_entropy(self, key: str) -> float:
        """Aggregate entropy of *key*'s attribute cluster (1.0 without schema)."""
        if self.partitioning is None:
            return 1.0
        kid = self.key_dictionary.get(key)
        if kid is not None:
            return self.key_entropy_by_id(kid)
        _, cluster = split_key(key)
        return self.partitioning.entropy_of(cluster)

    def key_entropy_by_id(self, kid: int) -> float:
        """:meth:`key_entropy` for an interned key id (cached per id)."""
        if self.partitioning is None:
            return 1.0
        entropy = self._entropies.get(kid)
        if entropy is None:
            _, cluster = split_key(self.key_dictionary.token_of(kid))
            entropy = self.partitioning.entropy_of(cluster)
            self._entropies[kid] = entropy
        return entropy

    def derive_keys(self, profile: EntityProfile, source: int = 0) -> set[str]:
        """The blocking keys *profile* would be indexed under."""
        return profile_blocking_keys(
            profile,
            source,
            self.partitioning,
            min_token_length=self.min_token_length,
            transformation=self.transformation,
            q=self.q,
        )

    # -- mutation ------------------------------------------------------------

    def _check_source(self, source: int) -> None:
        if self.clean_clean:
            if source not in (0, 1):
                raise ValueError(f"source must be 0 or 1, got {source}")
        elif source != 0:
            raise ValueError(f"a dirty index has a single source, got {source}")

    def upsert(self, profile: EntityProfile, source: int = 0) -> int:
        """Insert or replace *profile*; returns its (stable) node id.

        Re-upserting an identical live profile is a no-op (the version does
        not move, so cached query views stay valid).
        """
        self._check_source(source)
        ref = (source, profile.profile_id)
        node = self._ids.get(ref)
        if node is not None and self._profiles.get(node) == profile:
            return node
        if node is None:
            node = self._next_id
            self._next_id += 1
            self._ids[ref] = node

        # Interning in sorted key order keeps id assignment deterministic
        # (set iteration order is not) — fresh ids depend only on the
        # sequence of profiles, never on string hashing.
        intern = self.key_dictionary.intern
        new_keys = frozenset(
            intern(key) for key in sorted(self.derive_keys(profile, source))
        )
        old_keys = self._keys.get(node, frozenset())
        for kid in old_keys - new_keys:
            self._remove_membership(kid, node, source)
        for kid in new_keys - old_keys:
            posting = self._postings.get(kid)
            if posting is None:
                posting = PostingList(self.clean_clean)
                self._postings[kid] = posting
            posting.add(node, source)

        self._profiles[node] = profile
        self._sources[node] = source
        self._keys[node] = new_keys
        self._total_assignments += len(new_keys) - len(old_keys)
        self._version += 1
        return node

    def delete(self, profile_id: str, source: int = 0) -> bool:
        """Remove a live profile; returns whether anything was deleted.

        The ``(source, profile_id) -> node`` mapping (and every interned
        key id) is kept, so a later re-upsert revives the same node id and
        the same posting-list keys.
        """
        self._check_source(source)
        node = self._ids.get((source, str(profile_id)))
        if node is None or node not in self._profiles:
            return False
        for kid in self._keys[node]:
            self._remove_membership(kid, node, source)
        self._total_assignments -= len(self._keys[node])
        del self._profiles[node]
        del self._sources[node]
        del self._keys[node]
        self._version += 1
        return True

    def _remove_membership(self, kid: int, node: int, source: int) -> None:
        posting = self._postings.get(kid)
        if posting is None:
            return
        posting.discard(node, source)
        if posting.size == 0:
            del self._postings[kid]

    def __repr__(self) -> str:
        kind = "clean-clean" if self.clean_clean else "dirty"
        return (
            f"IncrementalBlockIndex(kind={kind}, profiles={self.num_profiles}, "
            f"keys={self.num_blocks}, version={self.version})"
        )
