"""Block-collection quality metrics and descriptive statistics."""

from repro.metrics.block_stats import BlockCollectionStats, block_collection_stats
from repro.metrics.quality import (
    BlockingQuality,
    delta_pc,
    delta_pq,
    evaluate_blocks,
    f1_score,
)

__all__ = [
    "BlockingQuality",
    "evaluate_blocks",
    "f1_score",
    "delta_pc",
    "delta_pq",
    "BlockCollectionStats",
    "block_collection_stats",
]
