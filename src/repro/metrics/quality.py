"""Pair Completeness, Pair Quality, F1 (paper Section 2, "Metrics").

* ``PC(B) = |D_B| / |D_E|`` — fraction of ground-truth duplicates that share
  at least one block (recall surrogate).
* ``PQ(B) = |D_B| / ||B||`` — detected duplicates per executed comparison
  (precision surrogate; the denominator counts *every* comparison the
  collection entails, redundant ones included).
* ``F1`` — their harmonic mean.

The Section 4 comparisons also use relative deltas: ``dPC(B, B') =
(PC(B') - PC(B)) / PC(B)`` and the analogous ``dPQ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.base import BlockCollection
from repro.data.dataset import ERDataset


@dataclass(frozen=True, slots=True)
class BlockingQuality:
    """Quality figures of one block collection against a ground truth."""

    pair_completeness: float
    pair_quality: float
    detected_duplicates: int
    total_duplicates: int
    comparisons: int
    num_blocks: int

    @property
    def f1(self) -> float:
        """Harmonic mean of PC and PQ (0 when both are 0)."""
        return f1_score(self.pair_completeness, self.pair_quality)

    def __str__(self) -> str:
        return (
            f"PC={self.pair_completeness:.2%} PQ={self.pair_quality:.4%} "
            f"F1={self.f1:.3f} comparisons={self.comparisons:.3g} "
            f"blocks={self.num_blocks}"
        )


def f1_score(pc: float, pq: float) -> float:
    """Harmonic mean of PC and PQ; 0.0 when both are zero."""
    if pc <= 0.0 and pq <= 0.0:
        return 0.0
    return 2.0 * pc * pq / (pc + pq)


def detected_duplicates(collection: BlockCollection, dataset: ERDataset) -> int:
    """|D_B|: ground-truth pairs co-occurring in at least one block."""
    block_sets = collection.profile_block_sets
    empty: frozenset[int] = frozenset()
    count = 0
    for i, j in dataset.truth_pairs:
        if not block_sets.get(i, empty).isdisjoint(block_sets.get(j, empty)):
            count += 1
    return count


def evaluate_blocks(collection: BlockCollection, dataset: ERDataset) -> BlockingQuality:
    """Compute PC, PQ and supporting counts for *collection* on *dataset*."""
    found = detected_duplicates(collection, dataset)
    total = dataset.num_duplicates
    comparisons = collection.aggregate_cardinality
    pc = found / total if total else 0.0
    pq = found / comparisons if comparisons else 0.0
    return BlockingQuality(
        pair_completeness=pc,
        pair_quality=pq,
        detected_duplicates=found,
        total_duplicates=total,
        comparisons=comparisons,
        num_blocks=len(collection),
    )


def delta_pc(baseline: BlockingQuality, other: BlockingQuality) -> float:
    """Relative PC change from *baseline* to *other* (paper Section 4)."""
    if baseline.pair_completeness == 0.0:
        raise ValueError("baseline PC is zero; delta undefined")
    return (
        other.pair_completeness - baseline.pair_completeness
    ) / baseline.pair_completeness


def delta_pq(baseline: BlockingQuality, other: BlockingQuality) -> float:
    """Relative PQ change from *baseline* to *other* (paper Section 4)."""
    if baseline.pair_quality == 0.0:
        raise ValueError("baseline PQ is zero; delta undefined")
    return (other.pair_quality - baseline.pair_quality) / baseline.pair_quality
