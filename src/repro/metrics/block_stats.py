"""Descriptive statistics of block collections.

The paper's Table 3 commentary reasons about block size distributions,
redundancy, and comparisons per profile; this module makes those
quantities first-class so users can diagnose *why* a collection has the
PQ it has before reaching for meta-blocking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.base import BlockCollection


@dataclass(frozen=True, slots=True)
class BlockCollectionStats:
    """Structure of one block collection.

    Attributes
    ----------
    num_blocks:
        Number of blocks.
    num_profiles:
        Distinct profiles indexed by at least one block.
    aggregate_cardinality:
        Total comparisons including redundancy (``||B||``).
    distinct_comparisons:
        Comparisons after deduplication across blocks.
    redundancy_ratio:
        ``aggregate / distinct`` — 1.0 means redundancy-free (the guarantee
        of meta-blocking output).
    min_block_size / median_block_size / max_block_size:
        Profile counts per block.
    mean_blocks_per_profile:
        Average ``|B_i|`` — the indexing redundancy of each profile.
    comparisons_per_profile:
        Average distinct comparisons each profile participates in.
    """

    num_blocks: int
    num_profiles: int
    aggregate_cardinality: int
    distinct_comparisons: int
    redundancy_ratio: float
    min_block_size: int
    median_block_size: float
    max_block_size: int
    mean_blocks_per_profile: float
    comparisons_per_profile: float

    def __str__(self) -> str:
        return (
            f"blocks={self.num_blocks} profiles={self.num_profiles} "
            f"||B||={self.aggregate_cardinality:,} "
            f"distinct={self.distinct_comparisons:,} "
            f"redundancy={self.redundancy_ratio:.2f}x "
            f"block-size[min/med/max]={self.min_block_size}/"
            f"{self.median_block_size:.1f}/{self.max_block_size} "
            f"blocks-per-profile={self.mean_blocks_per_profile:.1f}"
        )


def block_collection_stats(collection: BlockCollection) -> BlockCollectionStats:
    """Compute :class:`BlockCollectionStats` for *collection*.

    Distinct pairs are counted array-side (never materialized as a
    Python set of tuples), which lowers the memory constant by an order
    of magnitude — but the count still transiently enumerates all
    ``||B||`` comparisons, so raw web-scale token blocking remains out
    of scope.
    """
    sizes = sorted(block.size for block in collection)
    num_blocks = len(sizes)
    aggregate = collection.aggregate_cardinality
    distinct = collection.count_distinct_pairs()
    block_sets = collection.profile_block_sets
    num_profiles = len(block_sets)
    if num_blocks == 0:
        return BlockCollectionStats(0, 0, 0, 0, 1.0, 0, 0.0, 0, 0.0, 0.0)
    middle = num_blocks // 2
    median = (
        float(sizes[middle])
        if num_blocks % 2
        else (sizes[middle - 1] + sizes[middle]) / 2
    )
    return BlockCollectionStats(
        num_blocks=num_blocks,
        num_profiles=num_profiles,
        aggregate_cardinality=aggregate,
        distinct_comparisons=distinct,
        redundancy_ratio=aggregate / distinct if distinct else 1.0,
        min_block_size=sizes[0],
        median_block_size=median,
        max_block_size=sizes[-1],
        mean_blocks_per_profile=(
            sum(len(positions) for positions in block_sets.values()) / num_profiles
            if num_profiles
            else 0.0
        ),
        comparisons_per_profile=(
            2 * distinct / num_profiles if num_profiles else 0.0
        ),
    )
