"""Configuration of the BLAST pipeline."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields

from repro.graph.weights import WeightingScheme

#: Built-in backends that run serially and take no execution knobs;
#: ``workers``/``shard_size`` are rejected for these (and forwarded to
#: every other backend via :meth:`BlastConfig.backend_options`).
_SERIAL_BACKENDS = frozenset({"python", "vectorized"})


@dataclass(frozen=True)
class BlastConfig:
    """All tunables of the three-phase pipeline, with the paper's defaults.

    Phase 1 — loose schema information extraction
    ----------------------------------------------
    induction:
        ``"lmi"`` (the paper's Algorithm 1) or ``"ac"`` (the Attribute
        Clustering baseline of [18]).
    representation:
        Attribute representation model: ``"binary"`` (token presence +
        Jaccard, the paper's choice) or ``"tfidf"`` (TF-IDF + cosine, the
        alternative Section 2.1 describes).  TF-IDF is incompatible with
        the LSH step (MinHash estimates Jaccard only).
    alpha:
        LMI's "nearly similar" candidate factor.
    glue_cluster:
        Gather unclustered attributes in the glue cluster; disabling it
        drops their blocking keys (Figure 10's configuration).
    use_lsh:
        Enable the MinHash/banding pre-processing step.
    lsh_threshold:
        Target Jaccard threshold of the banding (its S-curve inflection).
    lsh_num_hashes:
        MinHash signature length.

    Phase 2 — loosely schema-aware blocking
    ----------------------------------------
    min_token_length:
        Shortest token used as a blocking key.
    purging_ratio:
        Block Purging drops blocks covering more than this fraction of all
        profiles.
    filtering_ratio:
        Block Filtering keeps each profile in this fraction of its smallest
        blocks.

    Phase 3 — loosely schema-aware meta-blocking
    ---------------------------------------------
    weighting:
        Edge weighting scheme (chi-squared x entropy by default).
    use_entropy:
        Feed cluster entropies into the blocking graph; switching this off
        is the ``chi`` ablation of Figure 8.
    entropy_boost:
        For traditional weighting schemes only: multiply by h(B_uv) (the
        ``wsh`` ablation of Figure 8).
    pruning_c / pruning_d:
        The constants of BLAST's pruning rule ``theta_i = M_i / c``,
        ``theta_ij = (theta_i + theta_j) / d``.
    backend:
        Meta-blocking execution backend: ``"vectorized"`` (array-backed
        numpy hot path, the default), ``"parallel"`` (the same arrays
        sharded across worker processes) or ``"python"`` (the pure-Python
        reference) — any name registered in
        ``repro.core.registry.BACKENDS``.  All built-ins produce the
        identical retained edge set.
    workers:
        Worker processes of the ``parallel`` backend; ``None`` (the
        default) uses the machine's cpu count, ``1`` runs the shards
        sequentially in-process.  Rejected with the serial built-ins
        (where it would be silently meaningless); forwarded to custom
        registered backends.
    shard_size:
        Cap on the comparisons enumerated per shard of the ``parallel``
        backend (the chunked low-memory knob — peak per-shard edge-array
        bytes scale with it; only a single entity owning more than the
        cap may exceed it); ``None`` splits into one balanced shard per
        worker.  Rejected with the serial built-ins, forwarded to custom
        backends.
    task_timeout:
        Seconds one shard task of the ``parallel`` backend may take
        before it is declared lost and retried (``None`` waits forever);
        the only way a killed or hung worker is detected.  Rejected with
        the serial built-ins, forwarded to custom backends.
    max_retries:
        Fresh-pool retries of the ``parallel`` backend after shard tasks
        fail or time out (default 2 when unset; shards still unfinished
        after the retries degrade to serial in-process execution, so
        results are bit-identical either way).  Rejected with the serial
        built-ins, forwarded to custom backends.
    pool:
        Worker-pool lifecycle of the ``parallel`` backend:
        ``"per-run"`` (backend default when unset) builds and tears down
        a pool per call, ``"persistent"`` reuses the process-wide pool
        with the CSR arrays published once through shared memory — the
        amortized mode for pipelines that meta-block repeatedly.
        Rejected with the serial built-ins, forwarded to custom
        backends.
    spill_dir / spill_threshold_mb:
        Out-of-core tier of the ``parallel`` backend: set together (and
        only together) to stream shard and merged edge arrays above the
        megabyte budget to atomic ``.npy`` files under a private
        subdirectory of ``spill_dir`` (removed on every exit path),
        bounding peak RSS with bit-identical results.  Rejected with the
        serial built-ins, forwarded to custom backends.
    seed:
        Seed for the LSH hash functions.

    Streaming (the query-time subsystem, see DESIGN.md)
    ----------------------------------------------------
    stream_consistency:
        Query view of the streaming subsystem: ``"exact"`` reproduces the
        batch purging/filtering/graph semantics lazily per index version,
        ``"fast"`` reads incrementally maintained statistics — any name
        registered in ``repro.core.registry.STREAM_VIEWS``.
    stream_query_k:
        Default per-query candidate cap of ``StreamingSession.candidates``
        (``None`` returns every retained neighbor).

    Serving (the multi-tenant async server, see DESIGN.md "Serving layer")
    ----------------------------------------------------------------------
    serve_max_queue:
        Bound of each tenant's write queue.  When a tenant's queue is
        full, further ``upsert``/``delete`` requests are answered
        ``overloaded`` immediately (explicit backpressure) instead of
        growing memory without bound.
    serve_batch_size:
        Most write operations one tenant actor applies per batch; between
        batches the event loop runs queries, so read latency under a
        write flood is bounded by one batch, not the whole queue.  Must
        not exceed ``serve_max_queue`` (a batch larger than the queue
        could never fill).
    serve_resident_tenants:
        Most tenant sessions kept open concurrently.  The least recently
        used tenant beyond the cap is drained, snapshotted, and closed
        back to cold storage; the next touch recovers it from its
        snapshot + journal.
    serve_snapshot_interval:
        Write operations between automatic per-tenant snapshots
        (``None`` snapshots only on eviction and graceful shutdown; the
        write-ahead journal covers crashes either way — the interval
        only bounds recovery replay length).
    """

    # Phase 1
    induction: str = "lmi"
    representation: str = "binary"
    alpha: float = 0.9
    glue_cluster: bool = True
    use_lsh: bool = False
    lsh_threshold: float = 0.4
    lsh_num_hashes: int = 150
    # Phase 2
    min_token_length: int = 2
    purging_ratio: float = 0.5
    filtering_ratio: float = 0.8
    # Phase 3
    weighting: WeightingScheme | str = WeightingScheme.CHI_H
    use_entropy: bool = True
    entropy_boost: bool = False
    pruning_c: float = 2.0
    pruning_d: float = 2.0
    backend: str = "vectorized"
    workers: int | None = None
    shard_size: int | None = None
    task_timeout: float | None = None
    max_retries: int | None = None
    pool: str | None = None
    spill_dir: str | None = None
    spill_threshold_mb: float | None = None
    seed: int | None = None
    # Streaming
    stream_consistency: str = "exact"
    stream_query_k: int | None = None
    # Serving
    serve_max_queue: int = 256
    serve_batch_size: int = 32
    serve_resident_tenants: int = 64
    serve_snapshot_interval: int | None = None

    def __post_init__(self) -> None:
        # Accept registry names ("cbs", "chi_h", ...) wherever a scheme is
        # expected, so configs built from CLI flags or files stay plain.
        if not isinstance(self.weighting, WeightingScheme):
            try:
                object.__setattr__(
                    self, "weighting", WeightingScheme(self.weighting)
                )
            except ValueError:
                valid = ", ".join(s.value for s in WeightingScheme)
                raise ValueError(
                    f"unknown weighting {self.weighting!r}; valid: {valid}"
                ) from None
        if self.induction not in ("lmi", "ac"):
            raise ValueError(f"induction must be 'lmi' or 'ac', got {self.induction!r}")
        if self.representation not in ("binary", "tfidf"):
            raise ValueError(
                f"representation must be 'binary' or 'tfidf', "
                f"got {self.representation!r}"
            )
        if self.representation == "tfidf" and self.use_lsh:
            raise ValueError(
                "the LSH step estimates Jaccard similarity and cannot be "
                "combined with the TF-IDF representation"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 < self.lsh_threshold < 1.0:
            raise ValueError(
                f"lsh_threshold must be in (0, 1), got {self.lsh_threshold}"
            )
        if self.lsh_num_hashes < 1:
            raise ValueError(
                f"lsh_num_hashes must be positive, got {self.lsh_num_hashes}"
            )
        if self.min_token_length < 1:
            raise ValueError(
                f"min_token_length must be positive, got {self.min_token_length}"
            )
        if not 0.0 < self.purging_ratio <= 1.0:
            raise ValueError(
                f"purging_ratio must be in (0, 1], got {self.purging_ratio}"
            )
        if not 0.0 < self.filtering_ratio <= 1.0:
            raise ValueError(
                f"filtering_ratio must be in (0, 1], got {self.filtering_ratio}"
            )
        if self.pruning_c <= 0 or self.pruning_d <= 0:
            raise ValueError("pruning_c and pruning_d must be positive")
        # Backend names resolve through the BACKENDS registry at run time
        # (importing it here would be circular); only basic shape is checked.
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a non-empty registry name, got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"workers must be positive or None, got {self.workers}"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError(
                f"shard_size must be positive or None, got {self.shard_size}"
            )
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0 or None, got {self.max_retries}"
            )
        if self.pool is not None and self.pool not in ("per-run", "persistent"):
            raise ValueError(
                f"pool must be 'per-run', 'persistent' or None, "
                f"got {self.pool!r}"
            )
        if (
            self.spill_threshold_mb is not None
            and not self.spill_threshold_mb > 0
        ):
            raise ValueError(
                f"spill_threshold_mb must be positive or None, "
                f"got {self.spill_threshold_mb}"
            )
        if (self.spill_dir is None) != (self.spill_threshold_mb is None):
            raise ValueError(
                "spill_dir and spill_threshold_mb must be set together "
                f"(got spill_dir={self.spill_dir!r}, "
                f"spill_threshold_mb={self.spill_threshold_mb})"
            )
        # Refuse, rather than silently ignore, execution knobs the chosen
        # backend will never see — `--workers 8` without `--backend
        # parallel` must not quietly run serial.  Only the known serial
        # built-ins are rejected: a custom registered backend receives the
        # knobs through backend_options() and may accept them (or fail
        # loudly with a TypeError of its own).
        if self.backend in _SERIAL_BACKENDS and (
            self.workers is not None
            or self.shard_size is not None
            or self.task_timeout is not None
            or self.max_retries is not None
            or self.pool is not None
            or self.spill_dir is not None
            or self.spill_threshold_mb is not None
        ):
            raise ValueError(
                f"workers/shard_size/task_timeout/max_retries/pool/"
                f"spill_dir/spill_threshold_mb do not apply to the serial "
                f"{self.backend!r} backend; use backend='parallel' "
                f"(got workers={self.workers}, "
                f"shard_size={self.shard_size}, "
                f"task_timeout={self.task_timeout}, "
                f"max_retries={self.max_retries}, pool={self.pool!r}, "
                f"spill_dir={self.spill_dir!r}, "
                f"spill_threshold_mb={self.spill_threshold_mb})"
            )
        # Same deal for stream view names (STREAM_VIEWS registry).
        if not self.stream_consistency or not isinstance(
            self.stream_consistency, str
        ):
            raise ValueError(
                f"stream_consistency must be a non-empty registry name, "
                f"got {self.stream_consistency!r}"
            )
        if self.stream_query_k is not None and self.stream_query_k < 1:
            raise ValueError(
                f"stream_query_k must be positive or None, "
                f"got {self.stream_query_k}"
            )
        # Serving knobs: validated here (reject, don't clamp) with the
        # same discipline as workers/shard_size — a queue bound or batch
        # size that silently "worked" at 0 would disable backpressure or
        # stall every actor.
        if self.serve_max_queue < 1:
            raise ValueError(
                f"serve_max_queue must be positive, got {self.serve_max_queue}"
            )
        if self.serve_batch_size < 1:
            raise ValueError(
                f"serve_batch_size must be positive, "
                f"got {self.serve_batch_size}"
            )
        if self.serve_batch_size > self.serve_max_queue:
            raise ValueError(
                f"serve_batch_size ({self.serve_batch_size}) cannot exceed "
                f"serve_max_queue ({self.serve_max_queue}); a batch larger "
                "than the queue bound can never fill"
            )
        if self.serve_resident_tenants < 1:
            raise ValueError(
                f"serve_resident_tenants must be positive, "
                f"got {self.serve_resident_tenants}"
            )
        if (
            self.serve_snapshot_interval is not None
            and self.serve_snapshot_interval < 1
        ):
            raise ValueError(
                f"serve_snapshot_interval must be positive or None, "
                f"got {self.serve_snapshot_interval}"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "BlastConfig":
        """Build a config from a plain mapping, rejecting unknown keys.

        ``BlastConfig(**data)`` would raise an opaque ``TypeError`` on a
        typoed key; config files deserve the field listing.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown BlastConfig field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(**mapping)  # type: ignore[arg-type]

    def backend_options(self) -> dict[str, object]:
        """Keyword arguments forwarded to the selected backend callable.

        The serial built-ins receive no extras (their signatures stay the
        plain backend protocol; set knobs are rejected at construction);
        ``parallel`` — and any custom registered backend — receives the
        ``workers``/``shard_size``/``task_timeout``/``max_retries``/
        ``pool``/``spill_dir``/``spill_threshold_mb`` knobs that were
        set.  ``None`` values are omitted so backend-side defaults (cpu
        count, balanced shards, no timeout, 2 retries, per-run pool, no
        spilling) apply.
        """
        if self.backend in _SERIAL_BACKENDS:
            return {}
        options: dict[str, object] = {}
        if self.workers is not None:
            options["workers"] = self.workers
        if self.shard_size is not None:
            options["shard_size"] = self.shard_size
        if self.task_timeout is not None:
            options["task_timeout"] = self.task_timeout
        if self.max_retries is not None:
            options["max_retries"] = self.max_retries
        if self.pool is not None:
            options["pool"] = self.pool
        if self.spill_dir is not None:
            options["spill_dir"] = self.spill_dir
        if self.spill_threshold_mb is not None:
            options["spill_threshold_mb"] = self.spill_threshold_mb
        return options
