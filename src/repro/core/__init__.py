"""The BLAST pipeline: stages, registries, and the classic facade."""

from repro.core.config import BlastConfig
from repro.core.pipeline import Blast, BlastResult, prepare_blocks
from repro.core.registry import (
    BACKENDS,
    BLOCKERS,
    PRUNERS,
    STREAM_VIEWS,
    WEIGHTINGS,
    Registry,
    build_pipeline,
    register_backend,
    register_blocker,
    register_pruning,
    register_stream_view,
    register_weighting,
)
from repro.core.stages import (
    BaseStage,
    BlockerStage,
    BlockFilteringStage,
    BlockPurgingStage,
    MetaBlockingStage,
    Pipeline,
    PipelineContext,
    PipelineError,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    Stage,
    StageReport,
    TokenBlockingStage,
    compose,
)

__all__ = [
    "Blast",
    "BlastConfig",
    "BlastResult",
    "prepare_blocks",
    # stages
    "Stage",
    "BaseStage",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "StageReport",
    "SchemaExtraction",
    "TokenBlockingStage",
    "SchemaAwareBlockingStage",
    "BlockerStage",
    "BlockPurgingStage",
    "BlockFilteringStage",
    "MetaBlockingStage",
    "compose",
    # registry
    "Registry",
    "BLOCKERS",
    "WEIGHTINGS",
    "PRUNERS",
    "BACKENDS",
    "STREAM_VIEWS",
    "register_blocker",
    "register_weighting",
    "register_pruning",
    "register_backend",
    "register_stream_view",
    "build_pipeline",
]
