"""The BLAST pipeline: the paper's primary contribution, end to end."""

from repro.core.config import BlastConfig
from repro.core.pipeline import Blast, BlastResult, prepare_blocks

__all__ = ["Blast", "BlastConfig", "BlastResult", "prepare_blocks"]
