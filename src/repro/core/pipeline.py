"""The BLAST facade (Figure 4): the paper's three phases, end to end.

Phase 1  loose schema information extraction — attribute-match induction
         (LMI or AC, optionally behind the LSH pre-processing step) plus
         aggregate-entropy extraction;
Phase 2  loosely schema-aware blocking — Token Blocking disambiguated by
         attribute cluster, followed by Block Purging and Block Filtering;
Phase 3  loosely schema-aware meta-blocking — chi-squared x entropy edge
         weighting and max-based node-centric pruning.

Works for both clean-clean and dirty ER (Section 4.5): for dirty input,
attribute matching runs within the single source and the meta-blocking is
unchanged.

Since the stage/registry redesign (see DESIGN.md) this module is a thin
facade: :class:`Blast` composes the default five-stage
:class:`repro.core.stages.Pipeline`, and every ablation or baseline is the
same pipeline with stages swapped.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection
from repro.blocking.schema_aware import make_key_entropy
from repro.core.config import BlastConfig
from repro.core.registry import build_pipeline
from repro.core.stages import (
    BlastResult,
    BlockFilteringStage,
    BlockPurgingStage,
    Pipeline,
    PipelineContext,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    TokenBlockingStage,
)
from repro.data.dataset import ERDataset
from repro.graph.metablocking import MetaBlocker
from repro.graph.pruning import BlastPruning
from repro.schema.partition import AttributePartitioning

__all__ = ["Blast", "BlastResult", "prepare_blocks"]


class Blast:
    """The BLAST system: a facade over the default stage pipeline.

    Example
    -------
    >>> from repro.core import Blast
    >>> from repro.datasets import load_clean_clean
    >>> dataset = load_clean_clean("ar1", scale=0.2)
    >>> result = Blast().run(dataset)
    >>> result.blocks.aggregate_cardinality < dataset.brute_force_comparisons()
    True
    """

    def __init__(self, config: BlastConfig | None = None) -> None:
        self.config = config or BlastConfig()

    @classmethod
    def default_pipeline(cls, config: BlastConfig | None = None) -> Pipeline:
        """The paper's five-stage pipeline for *config*.

        ``schema-extraction -> schema-aware-blocking -> block-purging ->
        block-filtering -> meta-blocking`` — the composition ``run()``
        executes, exposed so callers can reorder, drop, or swap stages.
        """
        return build_pipeline(config)

    def pipeline(self) -> Pipeline:
        """This instance's pipeline (built from its config)."""
        return self.default_pipeline(self.config)

    def run(self, dataset: ERDataset) -> BlastResult:
        """Execute all three phases on *dataset*."""
        return self.pipeline().run(dataset)

    def extract_loose_schema(self, dataset: ERDataset) -> AttributePartitioning:
        """Phase 1: attributes partitioning + aggregate entropies."""
        return SchemaExtraction(self.config).extract(dataset)

    def build_blocks(
        self, dataset: ERDataset, partitioning: AttributePartitioning
    ) -> BlockCollection:
        """Phase 2: disambiguated Token Blocking + purging + filtering."""
        config = self.config
        context = PipelineContext(dataset, partitioning=partitioning)
        Pipeline([
            SchemaAwareBlockingStage(min_token_length=config.min_token_length),
            BlockPurgingStage(max_profile_ratio=config.purging_ratio),
            BlockFilteringStage(ratio=config.filtering_ratio),
        ]).execute(context)
        assert context.blocks is not None
        return context.blocks

    def meta_block(
        self, blocks: BlockCollection, partitioning: AttributePartitioning
    ) -> BlockCollection:
        """Phase 3: chi-squared x entropy weighting, max-based pruning."""
        config = self.config
        meta = MetaBlocker(
            weighting=config.weighting,
            pruning=BlastPruning(c=config.pruning_c, d=config.pruning_d),
            entropy_boost=config.entropy_boost,
            key_entropy=make_key_entropy(partitioning) if config.use_entropy else None,
            backend=config.backend,
            backend_options=config.backend_options(),
        )
        return meta.run(blocks)


def prepare_blocks(
    dataset: ERDataset,
    partitioning: AttributePartitioning | None = None,
    purging_ratio: float = 0.5,
    filtering_ratio: float = 0.8,
    min_token_length: int = 2,
) -> BlockCollection:
    """The shared pre-meta-blocking workflow of Section 4.1.

    Token Blocking — plain when *partitioning* is ``None`` (the "T" rows of
    Tables 4/5), disambiguated otherwise (the "L" rows) — followed by Block
    Purging and Block Filtering.  Every comparison in the evaluation starts
    from a collection produced here.  Expressed as a pipeline composition
    over a pre-seeded context.
    """
    blocking = (
        TokenBlockingStage(min_token_length=min_token_length)
        if partitioning is None
        else SchemaAwareBlockingStage(min_token_length=min_token_length)
    )
    context = PipelineContext(dataset, partitioning=partitioning)
    Pipeline([
        blocking,
        BlockPurgingStage(max_profile_ratio=purging_ratio),
        BlockFilteringStage(ratio=filtering_ratio),
    ]).execute(context)
    assert context.blocks is not None
    return context.blocks
