"""The BLAST pipeline (Figure 4): the paper's three phases, end to end.

Phase 1  loose schema information extraction — attribute-match induction
         (LMI or AC, optionally behind the LSH pre-processing step) plus
         aggregate-entropy extraction;
Phase 2  loosely schema-aware blocking — Token Blocking disambiguated by
         attribute cluster, followed by Block Purging and Block Filtering;
Phase 3  loosely schema-aware meta-blocking — chi-squared x entropy edge
         weighting and max-based node-centric pruning.

Works for both clean-clean and dirty ER (Section 4.5): for dirty input,
attribute matching runs within the single source and the meta-blocking is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import BlockCollection
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.blocking.schema_aware import LooselySchemaAwareBlocking, make_key_entropy
from repro.blocking.token import TokenBlocking
from repro.core.config import BlastConfig
from repro.data.dataset import ERDataset
from repro.graph.metablocking import MetaBlocker
from repro.graph.pruning import BlastPruning
from repro.lsh.banding import lsh_candidate_pairs
from repro.schema.attribute_clustering import AttributeClustering
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.entropy import extract_loose_schema_entropies
from repro.schema.lmi import LooseAttributeMatchInduction
from repro.schema.partition import AttributePartitioning
from repro.utils.timer import Timer


@dataclass
class BlastResult:
    """Everything the pipeline produced, phase by phase."""

    blocks: BlockCollection
    """The final restructured block collection (one comparison per block)."""

    initial_blocks: BlockCollection
    """The Phase 2 collection fed to meta-blocking (purged and filtered)."""

    partitioning: AttributePartitioning
    """The attributes partitioning with aggregate entropies attached."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per phase (keys: schema, blocking, metablocking)."""

    @property
    def overhead_seconds(self) -> float:
        """Total overhead time ``to`` (the paper's Tables 4, 5)."""
        return sum(self.phase_seconds.values())


class Blast:
    """The BLAST system.

    Example
    -------
    >>> from repro.core import Blast
    >>> from repro.datasets import load_clean_clean
    >>> dataset = load_clean_clean("ar1", scale=0.2)
    >>> result = Blast().run(dataset)
    >>> result.blocks.aggregate_cardinality < dataset.brute_force_comparisons()
    True
    """

    def __init__(self, config: BlastConfig | None = None) -> None:
        self.config = config or BlastConfig()

    def extract_loose_schema(self, dataset: ERDataset) -> AttributePartitioning:
        """Phase 1: attributes partitioning + aggregate entropies."""
        config = self.config
        if config.representation == "tfidf":
            partitioning = self._extract_with_tfidf(dataset)
            return extract_loose_schema_entropies(
                partitioning, dataset.collection1, dataset.collection2
            )
        profiles1 = build_attribute_profiles(
            dataset.collection1, source=0, min_token_length=config.min_token_length
        )
        profiles2 = (
            build_attribute_profiles(
                dataset.collection2, source=1,
                min_token_length=config.min_token_length,
            )
            if dataset.collection2 is not None
            else None
        )

        candidates = None
        if config.use_lsh:
            candidates = lsh_candidate_pairs(
                profiles1,
                profiles2,
                threshold=config.lsh_threshold,
                num_hashes=config.lsh_num_hashes,
                seed=config.seed,
            )

        if config.induction == "lmi":
            induction = LooseAttributeMatchInduction(
                alpha=config.alpha, glue_cluster=config.glue_cluster
            )
        else:
            induction = AttributeClustering(glue_cluster=config.glue_cluster)
        partitioning = induction.induce(profiles1, profiles2, candidates)
        return extract_loose_schema_entropies(
            partitioning, dataset.collection1, dataset.collection2
        )

    def _extract_with_tfidf(self, dataset: ERDataset) -> AttributePartitioning:
        from repro.schema.representation import (
            TfIdfAttributeModel,
            tfidf_attribute_match_induction,
        )

        config = self.config
        model = TfIdfAttributeModel(
            dataset.collection1,
            dataset.collection2,
            min_token_length=config.min_token_length,
        )
        return tfidf_attribute_match_induction(
            model,
            method=config.induction,
            alpha=config.alpha,
            glue_cluster=config.glue_cluster,
        )

    def build_blocks(
        self, dataset: ERDataset, partitioning: AttributePartitioning
    ) -> BlockCollection:
        """Phase 2: disambiguated Token Blocking + purging + filtering."""
        config = self.config
        blocker = LooselySchemaAwareBlocking(
            partitioning, min_token_length=config.min_token_length
        )
        blocks = blocker.build(dataset)
        blocks = block_purging(
            blocks, dataset.num_profiles, max_profile_ratio=config.purging_ratio
        )
        return block_filtering(blocks, ratio=config.filtering_ratio)

    def meta_block(
        self, blocks: BlockCollection, partitioning: AttributePartitioning
    ) -> BlockCollection:
        """Phase 3: chi-squared x entropy weighting, max-based pruning."""
        config = self.config
        meta = MetaBlocker(
            weighting=config.weighting,
            pruning=BlastPruning(c=config.pruning_c, d=config.pruning_d),
            entropy_boost=config.entropy_boost,
            key_entropy=make_key_entropy(partitioning) if config.use_entropy else None,
        )
        return meta.run(blocks)

    def run(self, dataset: ERDataset) -> BlastResult:
        """Execute all three phases on *dataset*."""
        timings: dict[str, float] = {}
        with Timer() as t:
            partitioning = self.extract_loose_schema(dataset)
        timings["schema"] = t.elapsed
        with Timer() as t:
            initial = self.build_blocks(dataset, partitioning)
        timings["blocking"] = t.elapsed
        with Timer() as t:
            final = self.meta_block(initial, partitioning)
        timings["metablocking"] = t.elapsed
        return BlastResult(
            blocks=final,
            initial_blocks=initial,
            partitioning=partitioning,
            phase_seconds=timings,
        )


def prepare_blocks(
    dataset: ERDataset,
    partitioning: AttributePartitioning | None = None,
    purging_ratio: float = 0.5,
    filtering_ratio: float = 0.8,
    min_token_length: int = 2,
) -> BlockCollection:
    """The shared pre-meta-blocking workflow of Section 4.1.

    Token Blocking — plain when *partitioning* is ``None`` (the "T" rows of
    Tables 4/5), disambiguated otherwise (the "L" rows) — followed by Block
    Purging and Block Filtering.  Every comparison in the evaluation starts
    from a collection produced here.
    """
    if partitioning is None:
        blocks = TokenBlocking(min_token_length=min_token_length).build(dataset)
    else:
        blocks = LooselySchemaAwareBlocking(
            partitioning, min_token_length=min_token_length
        ).build(dataset)
    blocks = block_purging(
        blocks, dataset.num_profiles, max_profile_ratio=purging_ratio
    )
    return block_filtering(blocks, ratio=filtering_ratio)
