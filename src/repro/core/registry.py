"""String-keyed component registries: blockers, weightings, prunings.

Every pluggable component of the pipeline is addressable by name — from
config files, the CLI (``--blocker suffix-array --weighting cbs``), and
benchmark specs — through three global registries populated with the
built-ins below and extensible via decorators::

    >>> from repro.core.registry import register_blocker, BLOCKERS
    >>> @register_blocker("null")
    ... def _null_stage(config):
    ...     from repro.core.stages import TokenBlockingStage
    ...     return TokenBlockingStage(min_token_length=10_000)

Registry entries are factories taking a :class:`BlastConfig` so a single
flag set configures whichever component is selected:

* ``BLOCKERS``   — ``name -> (config) -> Stage`` producing the block
  collection (token, schema-aware, qgrams, suffix-array, canopy);
* ``WEIGHTINGS`` — ``name -> WeightingScheme | (graph) -> weights``;
* ``PRUNERS``    — ``name -> (config) -> PruningScheme``;
* ``BACKENDS``   — meta-blocking execution backends (``python`` reference,
  the array-backed ``vectorized`` default, and the sharded multi-process
  ``parallel``; see DESIGN.md "Backends & performance" and "Parallel
  execution & sharding");
* ``STREAM_VIEWS`` — query-time views of the streaming subsystem
  (``exact`` batch-faithful vs ``fast`` incremental; see DESIGN.md
  "Streaming & serving").

:func:`build_pipeline` assembles a full pipeline from registry names; it is
what the CLI and ``Blast.default_pipeline`` run.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING, Any, Generic, TypeVar

if TYPE_CHECKING:
    from repro.graph.blocking_graph import Edge
    from repro.streaming.index import IncrementalBlockIndex
    from repro.streaming.views import ExactStreamView, FastStreamView

from repro.core.config import BlastConfig
from repro.core.stages import (
    BlockerStage,
    BlockFilteringStage,
    BlockPurgingStage,
    MetaBlockingStage,
    Pipeline,
    SchemaAwareBlockingStage,
    SchemaExtraction,
    Stage,
    TokenBlockingStage,
    WeightingSpec,
)
from repro.graph.metablocking import reference_metablocking
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.parallel import parallel_metablocking
from repro.graph.vectorized import vectorized_metablocking
from repro.graph.weights import WeightingScheme

T = TypeVar("T")


class Registry(Generic[T]):
    """A named, write-once mapping from component names to components.

    Registration is strict — a duplicate name raises immediately, so a
    plug-in can never silently shadow a built-in — and lookups of unknown
    names fail with the full list of valid choices.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(
        self, name: str, component: T | None = None
    ) -> T | Callable[[T], T]:
        """Register *component* under *name*; usable as a decorator.

        >>> registry = Registry("widget")
        >>> @registry.register("noop")
        ... def make_noop(config):
        ...     return None
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if component is None:
            def decorator(obj: T) -> T:
                self.register(name, obj)
                return obj
            return decorator
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = component
        return component

    def get(self, name: str) -> T:
        """The component registered under *name*.

        Raises
        ------
        ValueError
            For unknown names, listing every registered name.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self.names())})"


#: Blocking-stage factories: ``name -> (config) -> Stage``.
BLOCKERS: Registry[Callable[[BlastConfig], Stage]] = Registry("blocker")
#: Edge-weighting specs: ``name -> WeightingScheme | (graph) -> weights``.
WEIGHTINGS: Registry[WeightingSpec] = Registry("weighting")
#: Pruning-scheme factories: ``name -> (config) -> PruningScheme``.
PRUNERS: Registry[Callable[[BlastConfig], PruningScheme]] = Registry("pruning")
#: Meta-blocking execution backends: ``name -> (collection, *, weighting,
#: pruning, entropy_boost, key_entropy) -> list[Edge]`` (sorted edges).
BACKENDS: Registry[Callable[..., list[Edge]]] = Registry("backend")
#: Streaming query-view factories: ``name -> (IncrementalBlockIndex) ->
#: view`` (the consistency modes of the streaming subsystem).
STREAM_VIEWS: Registry[Callable[[IncrementalBlockIndex], Any]] = Registry(
    "stream view"
)

register_blocker = BLOCKERS.register
register_weighting = WEIGHTINGS.register
register_pruning = PRUNERS.register
register_backend = BACKENDS.register
register_stream_view = STREAM_VIEWS.register


# --- built-in blockers ------------------------------------------------------

@register_blocker("schema-aware")
def _schema_aware_blocker(config: BlastConfig) -> Stage:
    """BLAST's Phase 2 blocking (needs a schema-extraction stage)."""
    return SchemaAwareBlockingStage(min_token_length=config.min_token_length)


@register_blocker("token")
def _token_blocker(config: BlastConfig) -> Stage:
    """Schema-agnostic Token Blocking (the "T" baseline)."""
    return TokenBlockingStage(min_token_length=config.min_token_length)


@register_blocker("qgrams")
def _qgrams_blocker(config: BlastConfig) -> Stage:
    """Character q-grams blocking (related-work baseline)."""
    from repro.blocking.qgrams import QGramsBlocking

    return BlockerStage(QGramsBlocking(), name="qgrams")


@register_blocker("suffix-array")
def _suffix_array_blocker(config: BlastConfig) -> Stage:
    """Suffix-array blocking (related-work baseline)."""
    from repro.blocking.suffix_array import SuffixArrayBlocking

    return BlockerStage(SuffixArrayBlocking(), name="suffix-array")


@register_blocker("canopy")
def _canopy_blocker(config: BlastConfig) -> Stage:
    """Canopy clustering blocking (related-work baseline)."""
    from repro.blocking.canopy import CanopyBlocking

    return BlockerStage(CanopyBlocking(seed=config.seed), name="canopy")


# StandardBlocking is deliberately unregistered: it requires a manual
# attribute alignment, which no BlastConfig flag can supply.  Wrap it in a
# BlockerStage directly when a schema mapping is available.


# --- built-in weightings ----------------------------------------------------

for _scheme in WeightingScheme:
    WEIGHTINGS.register(_scheme.value, _scheme)


# --- built-in backends ------------------------------------------------------

BACKENDS.register("python", reference_metablocking)
BACKENDS.register("vectorized", vectorized_metablocking)
BACKENDS.register("parallel", parallel_metablocking)


# --- built-in stream views --------------------------------------------------

@register_stream_view("exact")
def _exact_stream_view(index: IncrementalBlockIndex) -> ExactStreamView:
    """Batch-faithful view: lazy purging/filtering snapshot per version."""
    from repro.streaming.views import ExactStreamView

    return ExactStreamView(index)


@register_stream_view("fast")
def _fast_stream_view(index: IncrementalBlockIndex) -> FastStreamView:
    """Read-through view with incremental statistics (serving mode)."""
    from repro.streaming.views import FastStreamView

    return FastStreamView(index)


# --- built-in prunings ------------------------------------------------------

@register_pruning("blast")
def _blast_pruning(config: BlastConfig) -> PruningScheme:
    """BLAST's max-based node-centric rule (Section 3.3.2)."""
    return BlastPruning(c=config.pruning_c, d=config.pruning_d)


@register_pruning("wep")
def _wep(config: BlastConfig) -> PruningScheme:
    """Weight Edge Pruning: one global mean threshold."""
    return WeightEdgePruning()


@register_pruning("cep")
def _cep(config: BlastConfig) -> PruningScheme:
    """Cardinality Edge Pruning: global top-K edges."""
    return CardinalityEdgePruning()


@register_pruning("wnp1")
def _wnp1(config: BlastConfig) -> PruningScheme:
    """Redefined Weight Node Pruning (either endpoint clears)."""
    return WeightNodePruning(reciprocal=False)


@register_pruning("wnp2")
def _wnp2(config: BlastConfig) -> PruningScheme:
    """Reciprocal Weight Node Pruning (both endpoints clear)."""
    return WeightNodePruning(reciprocal=True)


@register_pruning("cnp1")
def _cnp1(config: BlastConfig) -> PruningScheme:
    """Redefined Cardinality Node Pruning."""
    return CardinalityNodePruning(reciprocal=False)


@register_pruning("cnp2")
def _cnp2(config: BlastConfig) -> PruningScheme:
    """Reciprocal Cardinality Node Pruning."""
    return CardinalityNodePruning(reciprocal=True)


def build_pipeline(
    config: BlastConfig | None = None,
    *,
    blocker: str = "schema-aware",
    weighting: str | WeightingSpec | None = None,
    pruning: str | PruningScheme = "blast",
) -> Pipeline:
    """Assemble the standard four/five-stage pipeline from registry names.

    ``[SchemaExtraction?] -> blocker -> purging -> filtering -> meta-blocking``
    — the schema stage is prepended automatically when the selected blocker
    declares ``needs_partitioning`` (i.e. ``schema-aware``).  *weighting*
    defaults to ``config.weighting``; *weighting* and *pruning* accept either
    registry names or ready component instances.

    >>> from repro.core.registry import build_pipeline
    >>> build_pipeline(blocker="token", weighting="cbs").stage_names
    ('token-blocking', 'block-purging', 'block-filtering', 'meta-blocking')
    """
    config = config or BlastConfig()
    blocking_stage = BLOCKERS.get(blocker)(config)
    stages: list[Stage] = []
    if getattr(blocking_stage, "needs_partitioning", False):
        stages.append(SchemaExtraction(config))
    stages.append(blocking_stage)
    stages.append(BlockPurgingStage(max_profile_ratio=config.purging_ratio))
    stages.append(BlockFilteringStage(ratio=config.filtering_ratio))

    if weighting is None:
        weighting_spec: WeightingSpec = config.weighting
    elif isinstance(weighting, str):
        weighting_spec = WEIGHTINGS.get(weighting)
    else:
        weighting_spec = weighting
    pruning_scheme = (
        PRUNERS.get(pruning)(config) if isinstance(pruning, str) else pruning
    )
    stages.append(
        MetaBlockingStage(
            weighting=weighting_spec,
            pruning=pruning_scheme,
            entropy_boost=config.entropy_boost,
            use_entropy=config.use_entropy,
            backend=config.backend,
            backend_options=config.backend_options(),
        )
    )
    return Pipeline(stages)
