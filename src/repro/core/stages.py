"""Composable pipeline stages: the building blocks of every BLAST variant.

The paper presents BLAST as three swappable phases (Figure 4); this module
turns that composition into a first-class API.  A :class:`Stage` is a named,
introspectable unit of work that reads and writes a shared
:class:`PipelineContext` (dataset, attributes partitioning, current block
collection, free-form artifacts).  A :class:`Pipeline` executes a stage
sequence with uniform per-stage instrumentation — wall-clock seconds plus
input/output block counts and comparison cardinalities — surfaced as
:class:`StageReport` entries on :class:`BlastResult.stage_reports`.

Every paper variant becomes a declarative stage list::

    >>> from repro.core.stages import (
    ...     Pipeline, SchemaExtraction, SchemaAwareBlockingStage,
    ...     BlockPurgingStage, BlockFilteringStage, MetaBlockingStage)
    >>> pipeline = Pipeline([
    ...     SchemaExtraction(),
    ...     SchemaAwareBlockingStage(),
    ...     BlockPurgingStage(),
    ...     BlockFilteringStage(),
    ...     MetaBlockingStage(),
    ... ])  # == Blast.default_pipeline()

Swap ``MetaBlockingStage(use_entropy=False)`` for the ``chi`` ablation of
Figure 8, replace the blocking stage with a :class:`BlockerStage` adapter
around any baseline blocker for the survey comparisons, or drop the
meta-blocking stage to reproduce the pre-meta-blocking "T"/"L" collections
of Tables 4/5.  See DESIGN.md for the full catalogue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.blocking.base import BlockCollection
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.blocking.schema_aware import LooselySchemaAwareBlocking, make_key_entropy
from repro.blocking.token import TokenBlocking
from repro.core.config import BlastConfig
from repro.data.dataset import ERDataset
from repro.graph.blocking_graph import BlockingGraph, Edge
from repro.graph.metablocking import MetaBlocker
from repro.graph.pruning import BlastPruning, PruningScheme
from repro.graph.weights import WeightingScheme
from repro.schema.partition import AttributePartitioning
from repro.utils.timer import Timer

#: A pluggable weighting: either a built-in scheme or any callable that
#: maps a blocking graph to per-edge weights (the extension point the
#: ``@register_weighting`` decorator targets).
WeightingSpec = WeightingScheme | Callable[[BlockingGraph], dict[Edge, float]]

#: Artifact key under which :class:`MetaBlockingStage` preserves the block
#: collection it consumed (the ``initial_blocks`` of :class:`BlastResult`).
INITIAL_BLOCKS = "initial_blocks"


class PipelineError(RuntimeError):
    """A stage's inputs are missing or a pipeline is malformed."""


@dataclass
class PipelineContext:
    """The shared state a pipeline's stages read and write.

    Attributes
    ----------
    dataset:
        The ER task being processed; set once, never replaced by stages.
    partitioning:
        The loose schema (attributes partitioning with entropies), produced
        by :class:`SchemaExtraction` and consumed by the schema-aware
        blocking and meta-blocking stages.
    blocks:
        The current block collection; each blocking/restructuring stage
        replaces it.
    artifacts:
        Free-form side outputs keyed by name (e.g. the pre-meta-blocking
        collection under :data:`INITIAL_BLOCKS`).
    """

    dataset: ERDataset
    partitioning: AttributePartitioning | None = None
    blocks: BlockCollection | None = None
    artifacts: dict[str, Any] = field(default_factory=dict)

    def require_partitioning(self, stage: "Stage") -> AttributePartitioning:
        """The partitioning, or a :class:`PipelineError` naming the culprit."""
        if self.partitioning is None:
            raise PipelineError(
                f"stage {stage.name!r} needs an attributes partitioning; "
                "run a SchemaExtraction stage first (or seed the context)"
            )
        return self.partitioning

    def require_blocks(self, stage: "Stage") -> BlockCollection:
        """The current blocks, or a :class:`PipelineError` naming the culprit."""
        if self.blocks is None:
            raise PipelineError(
                f"stage {stage.name!r} needs a block collection; "
                "run a blocking stage first (or seed the context)"
            )
        return self.blocks


@dataclass(frozen=True)
class StageReport:
    """Instrumentation of one stage execution.

    Block counts and comparison cardinalities are ``None`` when the context
    carried no block collection on that side of the stage (e.g. the input of
    the first blocking stage, or both sides of a schema stage).
    """

    stage: str
    """The stage's name."""

    phase: str
    """The paper phase the stage belongs to (schema/blocking/metablocking)."""

    seconds: float
    """Wall-clock seconds spent inside the stage."""

    blocks_in: int | None = None
    comparisons_in: int | None = None
    blocks_out: int | None = None
    comparisons_out: int | None = None

    def formatted(self) -> str:
        """One aligned summary line (used by the CLI and examples)."""
        def fmt(value: int | None) -> str:
            return "-" if value is None else f"{value:,}"

        return (
            f"{self.stage:>24}  {self.seconds:8.3f}s  "
            f"blocks {fmt(self.blocks_in):>12} -> {fmt(self.blocks_out):<12} "
            f"comparisons {fmt(self.comparisons_in):>14} -> "
            f"{fmt(self.comparisons_out):<14}"
        )


@runtime_checkable
class Stage(Protocol):
    """The pipeline stage protocol: a named unit mutating the context.

    Any object with a ``name``, a ``phase`` and an ``apply(context)`` method
    is a stage — the concrete classes below subclass :class:`BaseStage` for
    convenience, but duck-typed stages compose just as well.
    """

    name: str
    phase: str

    def apply(self, context: PipelineContext) -> None:
        """Execute the stage, reading and writing *context* in place."""
        ...


class BaseStage(ABC):
    """Convenience ABC: concrete stages override :meth:`apply`."""

    #: Display/registry name; classes override or set per instance.
    name: str = "stage"
    #: Paper phase for phase-level timing aggregation.
    phase: str = "blocking"
    #: Whether the stage reads ``context.partitioning`` (used by
    #: :func:`repro.core.registry.build_pipeline` to decide if a schema
    #: extraction stage must precede it).
    needs_partitioning: bool = False

    @abstractmethod
    def apply(self, context: PipelineContext) -> None:
        """Execute the stage, reading and writing *context* in place."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SchemaExtraction(BaseStage):
    """Phase 1: loose schema extraction (LMI or AC, optional LSH, entropies).

    Produces ``context.partitioning``.  All tunables come from a
    :class:`BlastConfig`; the stage is the single implementation behind
    ``Blast.extract_loose_schema``.
    """

    name = "schema-extraction"
    phase = "schema"

    def __init__(
        self, config: BlastConfig | None = None, interned: bool = True
    ) -> None:
        self.config = config or BlastConfig()
        #: Consume the dataset's shared InternedCorpus (default) or
        #: re-tokenize per step — the string-era reference path the phase
        #: benchmark compares against.
        self.interned = interned

    def apply(self, context: PipelineContext) -> None:
        context.partitioning = self.extract(context.dataset)

    def extract(self, dataset: ERDataset) -> AttributePartitioning:
        """Run the extraction directly, outside a pipeline."""
        from repro.lsh.banding import lsh_candidate_pairs
        from repro.schema.attribute_clustering import AttributeClustering
        from repro.schema.attribute_profile import build_attribute_profiles
        from repro.schema.entropy import extract_loose_schema_entropies
        from repro.schema.lmi import LooseAttributeMatchInduction

        config = self.config
        corpus = dataset.corpus if self.interned else None
        if config.representation == "tfidf":
            # TF-IDF vectors keep the Counter path: their cosine sums are
            # order-sensitive, so reordering terms is not behavior-free.
            return extract_loose_schema_entropies(
                self._extract_with_tfidf(dataset),
                dataset.collection1,
                dataset.collection2,
                corpus=corpus,
            )
        profiles1 = build_attribute_profiles(
            dataset.collection1, source=0,
            min_token_length=config.min_token_length, corpus=corpus,
        )
        profiles2 = (
            build_attribute_profiles(
                dataset.collection2, source=1,
                min_token_length=config.min_token_length, corpus=corpus,
            )
            if dataset.collection2 is not None
            else None
        )

        candidates = None
        if config.use_lsh:
            candidates = lsh_candidate_pairs(
                profiles1,
                profiles2,
                threshold=config.lsh_threshold,
                num_hashes=config.lsh_num_hashes,
                seed=config.seed,
            )

        if config.induction == "lmi":
            induction = LooseAttributeMatchInduction(
                alpha=config.alpha, glue_cluster=config.glue_cluster
            )
        else:
            induction = AttributeClustering(glue_cluster=config.glue_cluster)
        partitioning = induction.induce(profiles1, profiles2, candidates)
        return extract_loose_schema_entropies(
            partitioning, dataset.collection1, dataset.collection2, corpus=corpus
        )

    def _extract_with_tfidf(self, dataset: ERDataset) -> AttributePartitioning:
        from repro.schema.representation import (
            TfIdfAttributeModel,
            tfidf_attribute_match_induction,
        )

        config = self.config
        model = TfIdfAttributeModel(
            dataset.collection1,
            dataset.collection2,
            min_token_length=config.min_token_length,
        )
        return tfidf_attribute_match_induction(
            model,
            method=config.induction,
            alpha=config.alpha,
            glue_cluster=config.glue_cluster,
        )


class BlockerStage(BaseStage):
    """Adapter turning any blocker with ``build(dataset)`` into a stage.

    Wraps the baselines of ``repro.blocking`` (q-grams, suffix-array,
    canopy, standard blocking, ...) so they can slot into the same pipeline
    position as the paper's token blocking::

        >>> from repro.blocking import QGramsBlocking
        >>> stage = BlockerStage(QGramsBlocking(q=3), name="qgrams")
    """

    def __init__(self, blocker: Any, name: str | None = None) -> None:
        if not callable(getattr(blocker, "build", None)):
            raise TypeError(
                f"{type(blocker).__name__} has no build(dataset) method"
            )
        self.blocker = blocker
        self.name = name or type(blocker).__name__

    def apply(self, context: PipelineContext) -> None:
        context.blocks = self.blocker.build(context.dataset)


class TokenBlockingStage(BlockerStage):
    """Schema-agnostic Token Blocking (the "T" collections of Tables 4/5)."""

    def __init__(self, min_token_length: int = 2) -> None:
        super().__init__(
            TokenBlocking(min_token_length=min_token_length), name="token-blocking"
        )


class SchemaAwareBlockingStage(BaseStage):
    """Phase 2 blocking: Token Blocking disambiguated by attribute cluster.

    Reads ``context.partitioning`` (fails with a clear error when no schema
    stage ran) and replaces ``context.blocks``.
    """

    name = "schema-aware-blocking"
    needs_partitioning = True

    def __init__(
        self,
        min_token_length: int = 2,
        transformation: str = "token",
        q: int = 3,
    ) -> None:
        self.min_token_length = min_token_length
        self.transformation = transformation
        self.q = q

    def apply(self, context: PipelineContext) -> None:
        partitioning = context.require_partitioning(self)
        blocker = LooselySchemaAwareBlocking(
            partitioning,
            min_token_length=self.min_token_length,
            transformation=self.transformation,
            q=self.q,
        )
        context.blocks = blocker.build(context.dataset)


class BlockPurgingStage(BaseStage):
    """Block Purging: drop blocks covering too large a fraction of profiles."""

    name = "block-purging"

    def __init__(
        self,
        max_profile_ratio: float = 0.5,
        max_comparisons: int | None = None,
    ) -> None:
        self.max_profile_ratio = max_profile_ratio
        self.max_comparisons = max_comparisons

    def apply(self, context: PipelineContext) -> None:
        context.blocks = block_purging(
            context.require_blocks(self),
            context.dataset.num_profiles,
            max_profile_ratio=self.max_profile_ratio,
            max_comparisons=self.max_comparisons,
        )


class BlockFilteringStage(BaseStage):
    """Block Filtering: keep each profile in its smallest blocks only."""

    name = "block-filtering"

    def __init__(self, ratio: float = 0.8) -> None:
        self.ratio = ratio

    def apply(self, context: PipelineContext) -> None:
        context.blocks = block_filtering(
            context.require_blocks(self), ratio=self.ratio
        )


class MetaBlockingStage(BaseStage):
    """Phase 3: graph-based meta-blocking (weighting + pruning).

    Parameters
    ----------
    weighting:
        A :class:`WeightingScheme` or any callable ``graph -> {edge: weight}``
        (custom weightings registered via ``@register_weighting``).
    pruning:
        The pruning scheme; BLAST's max-based rule by default.
    entropy_boost:
        Multiply traditional weights by ``h(B_uv)`` (the ``wsh`` ablation).
    use_entropy:
        Feed the partitioning's cluster entropies into the blocking graph.
        Requires ``context.partitioning``; with ``False`` (the ``chi``
        ablation) or a partitioning-free pipeline, every key counts 1.0.
    backend:
        Execution backend name (``"vectorized"`` default, ``"parallel"``
        sharded multi-process, ``"python"`` reference, or any
        ``register_backend`` addition).  Custom weighting callables and
        pruning schemes automatically fall back to the reference path, so
        any combination is valid.
    backend_options:
        Extra keyword arguments for the backend callable (e.g. the
        ``parallel`` backend's ``workers``/``shard_size``);
        ``BlastConfig.backend_options()`` derives them from a config.

    The collection the stage consumed is preserved under
    ``context.artifacts[INITIAL_BLOCKS]``.
    """

    name = "meta-blocking"
    phase = "metablocking"

    def __init__(
        self,
        weighting: WeightingSpec = WeightingScheme.CHI_H,
        pruning: PruningScheme | None = None,
        entropy_boost: bool = False,
        use_entropy: bool = True,
        backend: str = "vectorized",
        backend_options: dict | None = None,
    ) -> None:
        self.weighting = weighting
        self.pruning = pruning if pruning is not None else BlastPruning()
        self.entropy_boost = entropy_boost
        self.use_entropy = use_entropy
        self.backend = backend
        self.backend_options = dict(backend_options or {})

    @classmethod
    def from_config(cls, config: BlastConfig) -> "MetaBlockingStage":
        """The stage matching ``Blast``'s Phase 3 for *config*."""
        return cls(
            weighting=config.weighting,
            pruning=BlastPruning(c=config.pruning_c, d=config.pruning_d),
            entropy_boost=config.entropy_boost,
            use_entropy=config.use_entropy,
            backend=config.backend,
            backend_options=config.backend_options(),
        )

    def apply(self, context: PipelineContext) -> None:
        blocks = context.require_blocks(self)
        context.artifacts[INITIAL_BLOCKS] = blocks
        key_entropy = (
            make_key_entropy(context.partitioning)
            if self.use_entropy and context.partitioning is not None
            else None
        )
        meta = MetaBlocker(
            weighting=self.weighting,
            pruning=self.pruning,
            entropy_boost=self.entropy_boost,
            key_entropy=key_entropy,
            backend=self.backend,
            backend_options=self.backend_options,
        )
        context.blocks = meta.run(blocks)


@dataclass
class BlastResult:
    """Everything a pipeline produced, stage by stage."""

    blocks: BlockCollection
    """The final restructured block collection (one comparison per block)."""

    initial_blocks: BlockCollection
    """The collection fed to meta-blocking (purged and filtered); equals
    ``blocks`` for pipelines without a meta-blocking stage."""

    partitioning: AttributePartitioning | None
    """The attributes partitioning with aggregate entropies attached, or
    ``None`` for pipelines without a schema stage."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per phase (keys: schema, blocking, metablocking),
    aggregated from :attr:`stage_reports`."""

    stage_reports: list[StageReport] = field(default_factory=list)
    """Per-stage instrumentation, in execution order."""

    @property
    def overhead_seconds(self) -> float:
        """Total overhead time ``to`` (the paper's Tables 4, 5)."""
        return sum(self.phase_seconds.values())

    def report(self) -> str:
        """A human-readable per-stage instrumentation table."""
        lines = [r.formatted() for r in self.stage_reports]
        lines.append(f"{'total':>24}  {self.overhead_seconds:8.3f}s")
        return "\n".join(lines)


class Pipeline:
    """An executable sequence of stages with per-stage instrumentation.

    ``run(dataset)`` creates a fresh context, executes every stage, and
    wraps the outcome in a :class:`BlastResult`; ``execute(context)`` runs
    the stages against a caller-provided (possibly pre-seeded) context and
    returns the stage reports — the form :func:`repro.core.prepare_blocks`
    and the benchmark harness compose.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: list[Stage] = list(stages)
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        for stage in self.stages:
            if not callable(getattr(stage, "apply", None)):
                raise TypeError(f"{stage!r} does not implement the Stage protocol")

    def __repr__(self) -> str:
        return f"Pipeline([{', '.join(s.name for s in self.stages)}])"

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def execute(self, context: PipelineContext) -> list[StageReport]:
        """Run every stage against *context*; return the per-stage reports."""
        reports: list[StageReport] = []
        for stage in self.stages:
            blocks_in, comparisons_in = _block_stats(context.blocks)
            with Timer() as timer:
                stage.apply(context)
            blocks_out, comparisons_out = _block_stats(context.blocks)
            reports.append(
                StageReport(
                    stage=stage.name,
                    phase=getattr(stage, "phase", "blocking"),
                    seconds=timer.elapsed,
                    blocks_in=blocks_in,
                    comparisons_in=comparisons_in,
                    blocks_out=blocks_out,
                    comparisons_out=comparisons_out,
                )
            )
        return reports

    def run(self, dataset: ERDataset) -> BlastResult:
        """Execute the pipeline on *dataset* from a fresh context."""
        context = PipelineContext(dataset)
        reports = self.execute(context)
        if context.blocks is None:
            raise PipelineError(
                f"{self!r} produced no block collection; add a blocking stage "
                "or drive the stages through execute() instead"
            )
        phase_seconds: dict[str, float] = {}
        for report in reports:
            phase_seconds[report.phase] = (
                phase_seconds.get(report.phase, 0.0) + report.seconds
            )
        initial = context.artifacts.get(INITIAL_BLOCKS, context.blocks)
        return BlastResult(
            blocks=context.blocks,
            initial_blocks=initial,
            partitioning=context.partitioning,
            phase_seconds=phase_seconds,
            stage_reports=reports,
        )


def _block_stats(
    blocks: BlockCollection | None,
) -> tuple[int | None, int | None]:
    """(block count, comparison cardinality) of *blocks*, or (None, None)."""
    if blocks is None:
        return None, None
    return len(blocks), blocks.aggregate_cardinality


def compose(*stages: Stage | Sequence[Stage]) -> Pipeline:
    """Build a :class:`Pipeline` from stages or nested stage sequences.

    >>> pipeline = compose(TokenBlockingStage(), [BlockPurgingStage(),
    ...                                           BlockFilteringStage()])
    >>> pipeline.stage_names
    ('token-blocking', 'block-purging', 'block-filtering')
    """
    flat: list[Stage] = []
    for item in stages:
        if isinstance(item, Sequence) and not isinstance(item, (str, bytes)):
            flat.extend(item)
        else:
            flat.append(item)  # type: ignore[arg-type]
    return Pipeline(flat)
