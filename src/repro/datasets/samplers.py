"""Field samplers shared by the benchmark dataset configurations.

Each sampler draws one clean canonical value.  They are deliberately
imperfectly separated: titles occasionally embed a surname or a year, and
descriptions embed brand names — giving Token Blocking the cross-attribute
ambiguity (Figure 1's "Abram") that loosely schema-aware blocking resolves.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.vocabulary import Vocabulary

FieldSampler = Callable[[np.random.Generator, Vocabulary], str]


def person_name(rng: np.random.Generator, v: Vocabulary) -> str:
    """``first last`` — a high-entropy field."""
    return f"{v.pick(rng, v.first_names)} {v.pick(rng, v.last_names)}"


def first_name(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.first_names)


def last_name(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.last_names)


def author_list(rng: np.random.Generator, v: Vocabulary) -> str:
    """One to three person names — bibliographic author strings."""
    count = int(rng.integers(1, 4))
    return " and ".join(person_name(rng, v) for _ in range(count))


def year(rng: np.random.Generator, v: Vocabulary) -> str:
    """A publication-era year — a low-entropy field (~60 distinct values)."""
    return str(int(rng.integers(1955, 2016)))


def title(rng: np.random.Generator, v: Vocabulary) -> str:
    """3-8 title words; sometimes leaks a surname or a year token."""
    count = int(rng.integers(3, 9))
    words = [v.pick(rng, v.title_words) for _ in range(count)]
    if rng.random() < 0.15:
        words[int(rng.integers(0, len(words)))] = v.pick(rng, v.last_names)
    if rng.random() < 0.08:
        words.append(str(int(rng.integers(1955, 2016))))
    return " ".join(words)


def venue(rng: np.random.Generator, v: Vocabulary) -> str:
    """Conference/journal-ish string — low-to-mid entropy."""
    return f"{v.pick(rng, v.venues)} {v.pick(rng, v.cities)}"


def pages(rng: np.random.Generator, v: Vocabulary) -> str:
    start = int(rng.integers(1, 900))
    return f"{start}-{start + int(rng.integers(4, 25))}"


def volume(rng: np.random.Generator, v: Vocabulary) -> str:
    return str(int(rng.integers(1, 60)))


def street_address(rng: np.random.Generator, v: Vocabulary) -> str:
    """``<surname-derived street> <number>`` — the Abram-street generator."""
    return f"{v.pick(rng, v.street_names)} {int(rng.integers(1, 200))}"


def city(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.cities)


def occupation(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.occupations)


def brand(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.brands)


def product_name(rng: np.random.Generator, v: Vocabulary) -> str:
    """``brand type model-code`` — brand tokens recur in descriptions."""
    code = f"{v.pick(rng, v.adjectives)[:2]}{int(rng.integers(100, 9999))}"
    return f"{v.pick(rng, v.brands)} {v.pick(rng, v.product_types)} {code}"


def product_description(rng: np.random.Generator, v: Vocabulary) -> str:
    count = int(rng.integers(4, 10))
    words = [v.pick(rng, v.adjectives) for _ in range(count)]
    if rng.random() < 0.5:
        words.append(v.pick(rng, v.brands))  # brand leaks into description
    words.append(v.pick(rng, v.product_types))
    return " ".join(words)


def price(rng: np.random.Generator, v: Vocabulary) -> str:
    return f"{int(rng.integers(5, 2500))}.{int(rng.integers(0, 100)):02d}"


def genre(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.genres)


def country(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.countries)


def runtime(rng: np.random.Generator, v: Vocabulary) -> str:
    return f"{int(rng.integers(60, 220))} min"


def record_label(rng: np.random.Generator, v: Vocabulary) -> str:
    return v.pick(rng, v.labels)


def track_title(rng: np.random.Generator, v: Vocabulary) -> str:
    count = int(rng.integers(1, 5))
    return " ".join(v.pick(rng, v.title_words) for _ in range(count))


def categorical_field(pool: tuple[str, ...], max_words: int = 3) -> FieldSampler:
    """A sampler over a fixed sub-pool — builds the rare, narrow attributes
    of the dbp-like wide-schema datasets."""
    if not pool:
        raise ValueError("pool must be non-empty")

    def sampler(rng: np.random.Generator, v: Vocabulary) -> str:
        count = int(rng.integers(1, max_words + 1))
        return " ".join(pool[int(rng.integers(0, len(pool)))] for _ in range(count))

    return sampler
