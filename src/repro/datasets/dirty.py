"""The three dirty-ER benchmark configurations of Table 7.

==========  ===========================  ==========================
dataset     paper characteristics        structure reproduced here
==========  ===========================  ==========================
``census``  1k profiles, 300 matches,    mostly-singleton population
            5 attributes                 with pairs of duplicates
``cora``    1k profiles, 17k matches,    few entities duplicated
            12 attributes                dozens of times each
``cddb``    10k profiles, 600 matches,   wide track01..trackNN
            106 attributes               schema, sparse duplicates
==========  ===========================  ==========================

Default scales keep cddb at a quarter of the paper's size; pass ``scale``
to grow any of them.
"""

from __future__ import annotations

from repro.data.dataset import ERDataset
from repro.datasets import samplers as s
from repro.datasets.generator import (
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_dirty_dataset,
)
from repro.utils.rng import make_rng

_CENSUS_NOISE = NoiseModel(typo_prob=0.10, token_drop_prob=0.06,
                           abbreviate_prob=0.12, missing_prob=0.04)
_CORA_NOISE = NoiseModel(typo_prob=0.08, token_drop_prob=0.10,
                         abbreviate_prob=0.12, missing_prob=0.08,
                         numeric_truncate_prob=0.2)
_CDDB_NOISE = NoiseModel(typo_prob=0.06, token_drop_prob=0.06,
                         abbreviate_prob=0.06, missing_prob=0.05)


def _census(scale: float, seed: int) -> ERDataset:
    """Person records: 5 attributes, duplicates come in pairs."""
    fields = (
        FieldSpec("first", s.first_name),
        FieldSpec("last", s.last_name),
        FieldSpec("street", s.street_address),
        FieldSpec("city", s.city),
        FieldSpec("occupation", s.occupation, present_prob=0.85),
    )
    schema = SourceSchema(
        "census",
        {"first name": ("first",), "surname": ("last",),
         "address": ("street",), "city": ("city",),
         "occupation": ("occupation",)},
        noise=_CENSUS_NOISE,
    )
    duplicated = _scaled(300, scale)
    singletons = _scaled(400, scale)
    cluster_sizes = [2] * duplicated + [1] * singletons
    return make_dirty_dataset("census", fields, schema, cluster_sizes, seed)


def _cora(scale: float, seed: int) -> ERDataset:
    """Citation records: 12 attributes, few entities cited dozens of times."""
    fields = (
        FieldSpec("authors", s.author_list),
        FieldSpec("title", s.title),
        FieldSpec("venue", s.venue, present_prob=0.8),
        FieldSpec("address", s.city, present_prob=0.5),
        FieldSpec("publisher", s.brand, present_prob=0.5),
        FieldSpec("editor", s.person_name, present_prob=0.3),
        FieldSpec("date", s.year, present_prob=0.9),
        FieldSpec("volume", s.volume, present_prob=0.6),
        FieldSpec("pages", s.pages, present_prob=0.7),
        FieldSpec("institution", s.venue, present_prob=0.3),
        FieldSpec("note", s.title, present_prob=0.2),
        FieldSpec("month", s.categorical_field(
            ("january", "april", "june", "september", "november")),
            present_prob=0.4),
    )
    schema = SourceSchema(
        "cora",
        {name: (name,) for name in (
            "authors", "title", "venue", "address", "publisher", "editor",
            "date", "volume", "pages", "institution", "note", "month")},
        noise=_CORA_NOISE,
    )
    rng = make_rng(seed + 99)
    num_entities = _scaled(29, scale)
    cluster_sizes = [int(rng.integers(25, 45)) for _ in range(num_entities)]
    return make_dirty_dataset("cora", fields, schema, cluster_sizes, seed)


def _cddb(scale: float, seed: int) -> ERDataset:
    """CD records: artist/title plus a wide track01..trackNN schema.

    Track attributes draw from grouped sub-vocabularies (three tracks per
    group), so LMI induces many small track clusters — the fine-grained
    partitioning (16 clusters from 106 attributes) the paper reports on the
    real cddb.
    """
    from repro.datasets.vocabulary import make_vocabulary

    num_tracks = 36
    fields = [
        FieldSpec("artist", s.person_name),
        FieldSpec("dtitle", s.title),
        FieldSpec("genre", s.genre, present_prob=0.9),
        FieldSpec("year", s.year, present_prob=0.8),
        FieldSpec("label", s.record_label, present_prob=0.6),
    ]
    words = make_vocabulary().title_words
    for k in range(1, num_tracks + 1):
        group = (k - 1) // 3
        pool = words[group * 60 : group * 60 + 60]
        # Early track numbers are near-universal; later ones increasingly rare.
        fields.append(
            FieldSpec(f"track{k:02d}", s.categorical_field(pool, max_words=4),
                      present_prob=max(0.05, 1.0 - 0.028 * k))
        )
    schema = SourceSchema(
        "cddb",
        {spec.name: (spec.name,) for spec in fields},
        noise=_CDDB_NOISE,
    )
    duplicated = _scaled(150, scale)
    singletons = _scaled(2_200, scale)
    cluster_sizes = [2] * duplicated + [1] * singletons
    return make_dirty_dataset("cddb", fields, schema, cluster_sizes, seed)


def _scaled(base: int, scale: float) -> int:
    return max(1, round(base * scale))


DIRTY_DATASETS = {
    "census": _census,
    "cora": _cora,
    "cddb": _cddb,
}


def load_dirty(name: str, scale: float = 1.0, seed: int = 42) -> ERDataset:
    """Generate one of the three Table 7 dirty datasets."""
    try:
        factory = DIRTY_DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DIRTY_DATASETS)}"
        ) from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return factory(scale, seed)
