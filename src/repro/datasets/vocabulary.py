"""Deterministic synthetic vocabulary.

The generators need realistic-looking word pools (names, venues, product
brands, movie-title words, ...) without shipping megabytes of literal word
lists.  Words are synthesized from syllables with a dedicated seeded RNG, so
the pools are stable across runs and machines.

Two properties matter for faithfulness to the paper's motivation:

* **cross-attribute ambiguity** — street names are derived from surnames
  (every dataset has its "Abram street"), and title/description pools leak
  person and brand names, so schema-agnostic Token Blocking creates exactly
  the ambiguous blocks BLAST's attribute disambiguation splits;
* **entropy spread** — some pools are tiny (genres, occupations: low
  entropy) and some huge (surnames, title words: high entropy), giving the
  aggregate-entropy weighting something real to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

_ONSETS = (
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fr", "g", "gr", "h", "j",
    "k", "kr", "l", "m", "n", "p", "pr", "r", "s", "sh", "sl", "st", "t",
    "th", "tr", "v", "w", "z",
)
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "ie", "io", "ou")
_CODAS = ("", "", "", "l", "m", "n", "r", "s", "t", "nd", "rd", "st", "ck")


def _word(rng: np.random.Generator, min_syllables: int = 2, max_syllables: int = 3) -> str:
    syllables = rng.integers(min_syllables, max_syllables + 1)
    parts = []
    for _ in range(syllables):
        parts.append(
            _ONSETS[rng.integers(0, len(_ONSETS))]
            + _NUCLEI[rng.integers(0, len(_NUCLEI))]
            + _CODAS[rng.integers(0, len(_CODAS))]
        )
    return "".join(parts)


def _pool(rng: np.random.Generator, size: int, **kwargs) -> tuple[str, ...]:
    """A pool of *size* distinct words."""
    words: set[str] = set()
    while len(words) < size:
        words.add(_word(rng, **kwargs))
    return tuple(sorted(words))


@dataclass(frozen=True)
class Vocabulary:
    """Stable word pools for the synthetic benchmark generators."""

    first_names: tuple[str, ...]
    last_names: tuple[str, ...]
    street_names: tuple[str, ...]  # surname-derived: the "Abram street" effect
    cities: tuple[str, ...]
    occupations: tuple[str, ...]
    venues: tuple[str, ...]
    title_words: tuple[str, ...]
    brands: tuple[str, ...]
    product_types: tuple[str, ...]
    adjectives: tuple[str, ...]
    genres: tuple[str, ...]
    countries: tuple[str, ...]
    labels: tuple[str, ...]

    def pick(self, rng: np.random.Generator, pool: tuple[str, ...]) -> str:
        """One uniform draw from *pool*."""
        return pool[rng.integers(0, len(pool))]


_CACHE: dict[int, Vocabulary] = {}


def make_vocabulary(seed: int = 7) -> Vocabulary:
    """Build (and cache) the vocabulary for *seed*.

    The same seed always yields the same pools; benchmark configs all use
    the default so every dataset shares one "world" of names — that sharing
    is what creates cross-dataset token collisions (a surname appearing as a
    street, a brand appearing inside a title).
    """
    cached = _CACHE.get(seed)
    if cached is not None:
        return cached
    rng = make_rng(seed)
    first_names = _pool(rng, 400)
    last_names = _pool(rng, 900)
    # Streets reuse surnames: "<surname> street" vs the person called
    # <surname> — the exact ambiguity of the paper's Figure 1.
    street_suffixes = ("street", "st", "ave", "road", "lane")
    streets = tuple(
        f"{last_names[int(rng.integers(0, len(last_names)))]} "
        f"{street_suffixes[int(rng.integers(0, len(street_suffixes)))]}"
        for _ in range(300)
    )
    title_words = _pool(rng, 2500, min_syllables=1, max_syllables=3)
    vocabulary = Vocabulary(
        first_names=first_names,
        last_names=last_names,
        street_names=streets,
        cities=_pool(rng, 80),
        occupations=_pool(rng, 25),
        venues=_pool(rng, 60),
        title_words=title_words,
        brands=_pool(rng, 120),
        product_types=_pool(rng, 40),
        adjectives=_pool(rng, 60),
        genres=_pool(rng, 15),
        countries=_pool(rng, 30),
        labels=_pool(rng, 50),
    )
    _CACHE[seed] = vocabulary
    return vocabulary
