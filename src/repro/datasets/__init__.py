"""Synthetic benchmark datasets reproducing the structure of the paper's
real-world benchmarks (see DESIGN.md section 2 for the substitution notes)."""

from repro.datasets.benchmarks import (
    CLEAN_CLEAN_DATASETS,
    dataset_characteristics,
    load_clean_clean,
)
from repro.datasets.dirty import DIRTY_DATASETS, load_dirty
from repro.datasets.generator import (
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_clean_clean_dataset,
    make_dirty_dataset,
)
from repro.datasets.vocabulary import Vocabulary, make_vocabulary

__all__ = [
    "Vocabulary",
    "make_vocabulary",
    "FieldSpec",
    "NoiseModel",
    "SourceSchema",
    "make_clean_clean_dataset",
    "make_dirty_dataset",
    "load_clean_clean",
    "load_dirty",
    "CLEAN_CLEAN_DATASETS",
    "DIRTY_DATASETS",
    "dataset_characteristics",
]
