"""The five clean-clean benchmark configurations of Table 2.

Each configuration synthesizes the *structure* of the corresponding
real-world pair — relative sizes, attribute counts, mappability, noise
profile — at a laptop-friendly default scale (the paper-scale parameters
are recorded in :data:`PAPER_SCALE` for reference; pass ``scale`` to grow a
dataset toward them).

==========  ======================  ============================  =========
dataset     paper sources           schema relationship           default
==========  ======================  ============================  =========
``ar1``     DBLP / ACM              fully mappable, 4-4 attrs     650 x 580
``ar2``     DBLP / Google Scholar   fully mappable, 4-4, noisy    400 x 4800
``prd``     Abt / Buy               fully mappable, 4-4, noisy    300 x 290
``mov``     IMDB / DBpedia          partially mappable, 4-7       1400 x 1150
``dbp``     DBpedia 2007 / 2009     partially mappable, wide      1500 x 2500
==========  ======================  ============================  =========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import ERDataset
from repro.datasets import samplers as s
from repro.datasets.generator import (
    CLEAN,
    NOISY,
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_clean_clean_dataset,
)
from repro.datasets.vocabulary import make_vocabulary
from repro.utils.rng import make_rng

#: The sizes reported in Table 2 of the paper, for documentation and for
#: anyone with the patience to run at full scale.
PAPER_SCALE = {
    "ar1": {"size1": 2_600, "size2": 2_300, "matches": 2_200},
    "ar2": {"size1": 2_500, "size2": 61_000, "matches": 2_300},
    "prd": {"size1": 1_100, "size2": 1_100, "matches": 1_100},
    "mov": {"size1": 28_000, "size2": 23_000, "matches": 23_000},
    "dbp": {"size1": 1_200_000, "size2": 2_200_000, "matches": 893_000},
}


@dataclass(frozen=True)
class DatasetStats:
    """The Table 2 characteristics of a generated dataset."""

    name: str
    size1: int
    size2: int
    attributes1: int
    attributes2: int
    nvp1: int
    nvp2: int
    duplicates: int


def dataset_characteristics(dataset: ERDataset) -> DatasetStats:
    """Compute the Table 2 row of *dataset*."""
    c1, c2 = dataset.collection1, dataset.collection2
    if c2 is None:
        raise ValueError("dataset_characteristics expects a clean-clean dataset")
    return DatasetStats(
        name=dataset.name,
        size1=len(c1),
        size2=len(c2),
        attributes1=len(c1.attribute_names),
        attributes2=len(c2.attribute_names),
        nvp1=c1.num_name_value_pairs,
        nvp2=c2.num_name_value_pairs,
        duplicates=dataset.num_duplicates,
    )


_ARTICLE_FIELDS = (
    FieldSpec("title", s.title),
    FieldSpec("authors", s.author_list),
    FieldSpec("venue", s.venue),
    FieldSpec("year", s.year),
)

_PRODUCT_FIELDS = (
    FieldSpec("product_name", s.product_name),
    FieldSpec("description", s.product_description),
    FieldSpec("manufacturer", s.brand),
    FieldSpec("price", s.price),
)

_MOVIE_FIELDS = (
    FieldSpec("title", s.title),
    FieldSpec("director", s.person_name),
    FieldSpec("actors", s.author_list),
    FieldSpec("year", s.year),
    FieldSpec("genre", s.genre, present_prob=0.9),
    FieldSpec("country", s.country, present_prob=0.85),
    FieldSpec("runtime", s.runtime, present_prob=0.8),
)


def _ar1(scale: float, seed: int) -> ERDataset:
    schema1 = SourceSchema(
        "dblp",
        {"title": ("title",), "authors": ("authors",), "venue": ("venue",),
         "year": ("year",)},
        noise=CLEAN,
    )
    schema2 = SourceSchema(
        "acm",
        {"paper title": ("title",), "author list": ("authors",),
         "publication venue": ("venue",), "yr": ("year",)},
        noise=CLEAN,
    )
    return make_clean_clean_dataset(
        "ar1", _ARTICLE_FIELDS, schema1, schema2,
        size1=_scaled(650, scale), size2=_scaled(580, scale),
        matches=_scaled(550, scale), seed=seed,
    )


def _ar2(scale: float, seed: int) -> ERDataset:
    schema1 = SourceSchema(
        "dblp",
        {"title": ("title",), "authors": ("authors",), "venue": ("venue",),
         "year": ("year",)},
        noise=CLEAN,
    )
    # Google Scholar: same logical schema, much dirtier values.
    schema2 = SourceSchema(
        "scholar",
        {"paper": ("title",), "writers": ("authors",), "where": ("venue",),
         "date": ("year",)},
        noise=NOISY,
    )
    return make_clean_clean_dataset(
        "ar2", _ARTICLE_FIELDS, schema1, schema2,
        size1=_scaled(400, scale), size2=_scaled(4_800, scale),
        matches=_scaled(370, scale), seed=seed,
    )


def _prd(scale: float, seed: int) -> ERDataset:
    noise = NoiseModel(typo_prob=0.08, token_drop_prob=0.12,
                       abbreviate_prob=0.08, missing_prob=0.08)
    schema1 = SourceSchema(
        "abt",
        {"name": ("product_name",), "description": ("description",),
         "manufacturer": ("manufacturer",), "price": ("price",)},
        noise=noise,
    )
    schema2 = SourceSchema(
        "buy",
        {"product": ("product_name",), "details": ("description",),
         "maker": ("manufacturer",), "cost": ("price",)},
        noise=noise,
    )
    return make_clean_clean_dataset(
        "prd", _PRODUCT_FIELDS, schema1, schema2,
        size1=_scaled(300, scale), size2=_scaled(290, scale),
        matches=_scaled(270, scale), seed=seed,
    )


def _mov(scale: float, seed: int) -> ERDataset:
    # IMDB: 4 attributes; the remaining canonical fields are simply not
    # tracked (0:n partial mappability).
    schema1 = SourceSchema(
        "imdb",
        {"name": ("title",), "filmmaker": ("director",), "cast": ("actors",),
         "year": ("year",)},
        noise=CLEAN,
    )
    schema2 = SourceSchema(
        "dbpedia",
        {"title": ("title",), "director": ("director",),
         "starring": ("actors",), "released": ("year",), "genre": ("genre",),
         "country": ("country",), "runtime": ("runtime",)},
        noise=NoiseModel(typo_prob=0.04, token_drop_prob=0.06,
                         abbreviate_prob=0.04, missing_prob=0.06,
                         numeric_truncate_prob=0.15),
    )
    return make_clean_clean_dataset(
        "mov", _MOVIE_FIELDS, schema1, schema2,
        size1=_scaled(1_400, scale), size2=_scaled(1_150, scale),
        matches=_scaled(1_100, scale), seed=seed,
    )


def _dbp(scale: float, seed: int, num_rare: int = 110) -> ERDataset:
    """Two DBpedia-like snapshots: wide, sparse, partially renamed schemas.

    A core of dense fields plus *num_rare* rare infobox-style properties,
    each drawing from its own narrow sub-vocabulary.  The 2009 snapshot
    renames about 40% of the properties and adds properties of its own —
    only part of the name-value pairs are shared across snapshots, as in
    the paper.
    """
    vocabulary = make_vocabulary()
    pool_rng = make_rng(seed + 1)
    fields: list[FieldSpec] = [
        FieldSpec("name", s.person_name),
        FieldSpec("label", s.title),
        FieldSpec("birth_year", s.year, present_prob=0.7),
        FieldSpec("place", s.city, present_prob=0.7),
        FieldSpec("country", s.country, present_prob=0.6),
        FieldSpec("occupation", s.occupation, present_prob=0.6),
    ]
    words = vocabulary.title_words
    for k in range(num_rare):
        start = int(pool_rng.integers(0, len(words) - 30))
        pool = words[start : start + 25]
        fields.append(
            FieldSpec(f"prop{k:03d}", s.categorical_field(pool),
                      present_prob=float(pool_rng.uniform(0.03, 0.20)))
        )

    core = {"name": ("name",), "label": ("label",),
            "birthYear": ("birth_year",), "place": ("place",),
            "country": ("country",), "occupation": ("occupation",)}
    attrs07 = dict(core)
    attrs09 = dict(core)
    for k in range(num_rare):
        field = f"prop{k:03d}"
        attrs07[field] = (field,)
        # 2009 renames ~40% of the shared properties ...
        renamed = f"infobox_{field}" if k % 5 in (0, 1) else field
        attrs09[renamed] = (field,)
    # ... and each snapshot has exclusive properties the other lacks.
    for k in range(num_rare, num_rare + 15):
        start = int(pool_rng.integers(0, len(words) - 30))
        fields.append(
            FieldSpec(f"prop{k:03d}", s.categorical_field(words[start : start + 25]),
                      present_prob=0.08)
        )
        attrs07[f"prop{k:03d}"] = (f"prop{k:03d}",)
    for k in range(num_rare + 15, num_rare + 30):
        start = int(pool_rng.integers(0, len(words) - 30))
        fields.append(
            FieldSpec(f"prop{k:03d}", s.categorical_field(words[start : start + 25]),
                      present_prob=0.08)
        )
        attrs09[f"prop{k:03d}"] = (f"prop{k:03d}",)

    schema1 = SourceSchema("dbp07", attrs07, noise=CLEAN)
    schema2 = SourceSchema(
        "dbp09", attrs09,
        noise=NoiseModel(typo_prob=0.04, token_drop_prob=0.06,
                         abbreviate_prob=0.04, missing_prob=0.10),
    )
    return make_clean_clean_dataset(
        "dbp", tuple(fields), schema1, schema2,
        size1=_scaled(1_500, scale), size2=_scaled(2_500, scale),
        matches=_scaled(1_100, scale), seed=seed,
        vocabulary=vocabulary,
    )


def _scaled(base: int, scale: float) -> int:
    return max(1, round(base * scale))


def load_dbp_wide(
    num_rare: int = 300, scale: float = 1.0, seed: int = 42
) -> ERDataset:
    """The dbp pair with a configurable number of rare properties.

    Used by the LSH benches (Table 6, Figure 10), where the contrast
    between exhaustive and LSH-accelerated attribute-match induction only
    becomes visible with wide schemas.
    """
    if num_rare < 1:
        raise ValueError(f"num_rare must be positive, got {num_rare}")
    return _dbp(scale, seed, num_rare=num_rare)


CLEAN_CLEAN_DATASETS = {
    "ar1": _ar1,
    "ar2": _ar2,
    "prd": _prd,
    "mov": _mov,
    "dbp": _dbp,
}


def load_clean_clean(name: str, scale: float = 1.0, seed: int = 42) -> ERDataset:
    """Generate one of the five Table 2 dataset pairs.

    Parameters
    ----------
    name:
        ``"ar1"``, ``"ar2"``, ``"prd"``, ``"mov"`` or ``"dbp"``.
    scale:
        Multiplies every size; 1.0 is the laptop default documented in the
        module docstring.
    seed:
        Generation seed (42 is what every benchmark harness uses).
    """
    try:
        factory = CLEAN_CLEAN_DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(CLEAN_CLEAN_DATASETS)}"
        ) from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return factory(scale, seed)
