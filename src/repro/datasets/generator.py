"""Synthetic ER dataset machinery.

A dataset is generated in two steps, mirroring how real-world benchmark
pairs came to exist:

1. a pool of *true entities* is sampled — each a mapping from canonical
   field names (``title``, ``year``, ``street`` ...) to clean values;
2. each *source* renders its own view of the entities it covers through a
   :class:`SourceSchema` — renaming attributes, merging fields, dropping
   fields the source does not track — and a :class:`NoiseModel` that
   injects typos, abbreviations, dropped tokens, two-digit years and
   missing values.

Clean-clean pairs share a configurable overlap of true entities (the ground
truth); dirty datasets render each entity several times into one collection.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.collection import EntityCollection
from repro.data.dataset import ERDataset
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile
from repro.datasets.vocabulary import Vocabulary, make_vocabulary
from repro.utils.rng import make_rng

FieldSampler = Callable[[np.random.Generator, Vocabulary], str]


@dataclass(frozen=True)
class FieldSpec:
    """One canonical field of the true entities.

    Parameters
    ----------
    name:
        Canonical field name (source schemas refer to it).
    sampler:
        Draws a clean value for a new entity.
    present_prob:
        Probability that an entity has this field at all — sparse fields
        are how the dbp-like datasets get their very wide, sparsely filled
        schemas.
    """

    name: str
    sampler: FieldSampler
    present_prob: float = 1.0


@dataclass(frozen=True)
class NoiseModel:
    """Per-source value corruption.

    Each probability applies independently per rendered value.
    """

    typo_prob: float = 0.05
    token_drop_prob: float = 0.05
    abbreviate_prob: float = 0.05
    missing_prob: float = 0.02
    numeric_truncate_prob: float = 0.0

    def corrupt(self, rng: np.random.Generator, value: str) -> str | None:
        """A noisy copy of *value*, or ``None`` when the value goes missing."""
        if rng.random() < self.missing_prob:
            return None
        if (
            self.numeric_truncate_prob
            and len(value) == 4
            and value.isdigit()
            and rng.random() < self.numeric_truncate_prob
        ):
            value = value[2:]  # "1985" -> "85"
        if rng.random() < self.token_drop_prob:
            tokens = value.split()
            if len(tokens) > 1:
                tokens.pop(int(rng.integers(0, len(tokens))))
                value = " ".join(tokens)
        if rng.random() < self.abbreviate_prob:
            tokens = value.split()
            idx = int(rng.integers(0, len(tokens)))
            if len(tokens[idx]) > 3 and not tokens[idx].isdigit():
                tokens[idx] = tokens[idx][:1] + "."
                value = " ".join(tokens)
        if rng.random() < self.typo_prob:
            value = _typo(rng, value)
        return value if value.strip() else None


CLEAN = NoiseModel(typo_prob=0.02, token_drop_prob=0.02, abbreviate_prob=0.02,
                   missing_prob=0.01)
NOISY = NoiseModel(typo_prob=0.08, token_drop_prob=0.10, abbreviate_prob=0.10,
                   missing_prob=0.05, numeric_truncate_prob=0.3)


def _typo(rng: np.random.Generator, value: str) -> str:
    """One character-level edit: delete, duplicate, or swap adjacent."""
    if len(value) < 3:
        return value
    pos = int(rng.integers(1, len(value) - 1))
    kind = rng.integers(0, 3)
    if kind == 0:  # delete
        return value[:pos] + value[pos + 1 :]
    if kind == 1:  # duplicate
        return value[:pos] + value[pos] + value[pos:]
    return value[: pos - 1] + value[pos] + value[pos - 1] + value[pos + 1 :]


@dataclass(frozen=True)
class SourceSchema:
    """How one source renders canonical entities.

    Parameters
    ----------
    name:
        Source label (becomes the collection name).
    attributes:
        Mapping from the source's attribute name to the tuple of canonical
        fields whose values are concatenated into it.  Renaming is the
        common case (one field per attribute); merging several fields into
        one attribute (``"full name" <- (first, last)``) is how partially
        mappable schemas arise.
    noise:
        The source's noise model.
    """

    name: str
    attributes: Mapping[str, tuple[str, ...]]
    noise: NoiseModel = field(default_factory=NoiseModel)

    def render(
        self,
        profile_id: str,
        entity: Mapping[str, str],
        rng: np.random.Generator,
    ) -> EntityProfile:
        """Render *entity* as this source sees it."""
        pairs: list[tuple[str, str]] = []
        for attribute in sorted(self.attributes):
            fields = self.attributes[attribute]
            values = [entity[f] for f in fields if f in entity]
            if not values:
                continue
            noisy = self.noise.corrupt(rng, " ".join(values))
            if noisy is not None:
                pairs.append((attribute, noisy))
        return EntityProfile(profile_id, tuple(pairs))


def sample_entities(
    fields: Sequence[FieldSpec],
    count: int,
    rng: np.random.Generator,
    vocabulary: Vocabulary,
) -> list[dict[str, str]]:
    """Draw *count* true entities over *fields*."""
    entities: list[dict[str, str]] = []
    for _ in range(count):
        entity: dict[str, str] = {}
        for spec in fields:
            if spec.present_prob < 1.0 and rng.random() >= spec.present_prob:
                continue
            value = spec.sampler(rng, vocabulary)
            if value:
                entity[spec.name] = value
        entities.append(entity)
    return entities


def make_clean_clean_dataset(
    name: str,
    fields: Sequence[FieldSpec],
    schema1: SourceSchema,
    schema2: SourceSchema,
    size1: int,
    size2: int,
    matches: int,
    seed: int,
    vocabulary: Vocabulary | None = None,
) -> ERDataset:
    """Two sources over a shared entity pool with *matches* common entities.

    Source 1 covers entities ``[0, size1)``; source 2 covers
    ``[size1 - matches, size1 - matches + size2)``, so exactly *matches*
    entities appear in both (each at most once per source: clean-clean).
    """
    if matches > min(size1, size2):
        raise ValueError("matches cannot exceed either source size")
    vocabulary = vocabulary or make_vocabulary()
    rng = make_rng(seed)
    total = size1 + size2 - matches
    entities = sample_entities(fields, total, rng, vocabulary)

    profiles1 = [
        schema1.render(f"A{i}", entities[i], rng) for i in range(size1)
    ]
    offset = size1 - matches
    profiles2 = [
        schema2.render(f"B{j}", entities[offset + j], rng) for j in range(size2)
    ]
    truth = GroundTruth(
        ((f"A{offset + k}", f"B{k}") for k in range(matches)), clean_clean=True
    )
    return ERDataset(
        EntityCollection(profiles1, schema1.name),
        EntityCollection(profiles2, schema2.name),
        truth,
        name=name,
    )


def make_dirty_dataset(
    name: str,
    fields: Sequence[FieldSpec],
    schema: SourceSchema,
    cluster_sizes: Sequence[int],
    seed: int,
    vocabulary: Vocabulary | None = None,
) -> ERDataset:
    """One collection where entity ``e`` appears ``cluster_sizes[e]`` times.

    Every within-cluster pair is a ground-truth match, so a cluster of size
    ``s`` contributes ``s * (s - 1) / 2`` duplicates — the structure of the
    cora benchmark, where one paper is cited dozens of times.
    """
    if any(size < 1 for size in cluster_sizes):
        raise ValueError("cluster sizes must be >= 1")
    vocabulary = vocabulary or make_vocabulary()
    rng = make_rng(seed)
    entities = sample_entities(fields, len(cluster_sizes), rng, vocabulary)

    profiles: list[EntityProfile] = []
    pairs: list[tuple[str, str]] = []
    serial = 0
    for entity, size in zip(entities, cluster_sizes):
        ids = []
        for _ in range(size):
            pid = f"d{serial}"
            serial += 1
            profiles.append(schema.render(pid, entity, rng))
            ids.append(pid)
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                pairs.append((ids[a], ids[b]))

    # Shuffle so duplicates are not adjacent (position must carry no signal).
    order = rng.permutation(len(profiles))
    profiles = [profiles[i] for i in order]
    return ERDataset(
        EntityCollection(profiles, schema.name),
        None,
        GroundTruth(pairs, clean_clean=False),
        name=name,
    )
