"""Ground truth: the known set of matching profile pairs."""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class GroundTruth:
    """A set of matching profile-id pairs.

    For clean-clean ER a pair is ``(id_in_E1, id_in_E2)`` and order is
    significant (the two sides live in different namespaces).  For dirty ER
    both ids come from the same collection and pairs are stored unordered
    (canonicalized so ``(a, b) == (b, a)``).
    """

    def __init__(
        self, pairs: Iterable[tuple[str, str]], clean_clean: bool = True
    ) -> None:
        self.clean_clean = clean_clean
        if clean_clean:
            self._pairs = {(str(a), str(b)) for a, b in pairs}
        else:
            self._pairs = set()
            for a, b in pairs:
                a, b = str(a), str(b)
                if a == b:
                    raise ValueError(f"self-match {a!r} in dirty ground truth")
                self._pairs.add((a, b) if a < b else (b, a))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._pairs)

    def __contains__(self, pair: object) -> bool:
        if not isinstance(pair, tuple) or len(pair) != 2:
            return False
        a, b = str(pair[0]), str(pair[1])
        if self.clean_clean:
            return (a, b) in self._pairs
        return ((a, b) if a < b else (b, a)) in self._pairs

    def __repr__(self) -> str:
        kind = "clean-clean" if self.clean_clean else "dirty"
        return f"GroundTruth({kind}, matches={len(self)})"
