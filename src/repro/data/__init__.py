"""Entity data model: profiles, collections, ground truth, ER datasets."""

from repro.data.collection import EntityCollection
from repro.data.corpus import InternedCorpus, TokenDictionary
from repro.data.dataset import ERDataset
from repro.data.ground_truth import GroundTruth
from repro.data.io import IngestIssue, IngestReport
from repro.data.profile import EntityProfile

__all__ = [
    "EntityProfile",
    "EntityCollection",
    "GroundTruth",
    "ERDataset",
    "IngestIssue",
    "IngestReport",
    "InternedCorpus",
    "TokenDictionary",
]
