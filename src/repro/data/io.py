"""Serialization: JSON-lines profiles and CSV ground truth.

The on-disk format mirrors the ER-framework benchmark archives the paper
uses: one record per line with free-form attributes, plus a two-column match
file.  Round-tripping through these functions is lossless for everything the
library consumes.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.data.collection import EntityCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile


def save_collection(collection: EntityCollection, path: str | Path) -> None:
    """Write *collection* as JSON lines: ``{"id": ..., "attributes": [[n, v]...]}``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for profile in collection:
            record = {
                "id": profile.profile_id,
                "attributes": [list(pair) for pair in profile.attributes],
            }
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")


def load_collection(path: str | Path, name: str = "") -> EntityCollection:
    """Read a JSON-lines file written by :func:`save_collection`."""
    path = Path(path)
    profiles: list[EntityProfile] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                profiles.append(
                    EntityProfile(
                        str(record["id"]),
                        tuple((str(n), str(v)) for n, v in record["attributes"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed record") from exc
    return EntityCollection(profiles, name=name or path.stem)


def save_ground_truth(truth: GroundTruth, path: str | Path) -> None:
    """Write *truth* as a two-column CSV with an ``id1,id2`` header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2"])
        for id1, id2 in sorted(truth):
            writer.writerow([id1, id2])


def load_ground_truth(path: str | Path, clean_clean: bool = True) -> GroundTruth:
    """Read a CSV written by :func:`save_ground_truth`."""
    path = Path(path)
    pairs: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty ground-truth file")
        for row in reader:
            if len(row) != 2:
                raise ValueError(f"{path}: expected 2 columns, got {row!r}")
            pairs.append((row[0], row[1]))
    return GroundTruth(pairs, clean_clean=clean_clean)


def load_csv_collection(
    path: str | Path,
    id_column: str = "id",
    name: str = "",
) -> EntityCollection:
    """Read a header-ful CSV where each non-id column is an attribute.

    Empty cells become missing attributes, matching how the benchmark
    datasets encode incomplete records.
    """
    path = Path(path)
    profiles: list[EntityProfile] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_column not in reader.fieldnames:
            raise ValueError(f"{path}: missing id column {id_column!r}")
        for row in reader:
            attributes = tuple(
                (column, value)
                for column, value in row.items()
                if column != id_column and value and value.strip()
            )
            profiles.append(EntityProfile(str(row[id_column]), attributes))
    return EntityCollection(profiles, name=name or path.stem)
