"""Serialization: JSON-lines profiles and CSV ground truth.

The on-disk format mirrors the ER-framework benchmark archives the paper
uses: one record per line with free-form attributes, plus a two-column match
file.  Round-tripping through these functions is lossless for everything the
library consumes.

Every reader and writer is transparently gzip-aware: any path ending in
``.gz`` is (de)compressed on the fly through :func:`open_text`, and
:func:`iter_collection` streams a JSON-lines file profile by profile, so
arbitrarily large collections can be replayed (e.g. by ``repro stream``)
without ever materializing them in memory.

Malformed input does not have to be fatal: the JSON-lines readers take
``on_error="raise" | "skip" | "collect"``.  ``raise`` (the default) keeps
the historical fail-fast behavior; ``skip`` quarantines bad lines and
keeps going; ``collect`` additionally records one :class:`IngestIssue`
per quarantined line into a caller-supplied :class:`IngestReport` —
surfaced on the command line as ``repro run/evaluate/stream
--skip-malformed``.
"""

from __future__ import annotations

import csv
import gzip
import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TypeVar

from repro.data.collection import EntityCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile
from repro.reliability import FAULTS, InjectedFault

T = TypeVar("T")

#: The accepted ``on_error`` modes of the JSON-lines readers.
ON_ERROR_MODES = frozenset({"raise", "skip", "collect"})


@dataclass(frozen=True)
class IngestIssue:
    """One quarantined input record: where it was and why it was dropped.

    ``line_no`` is ``None`` for issues that are not tied to a single line
    (e.g. a duplicate id, which is a property of the pair).
    """

    path: str
    line_no: int | None
    reason: str

    def __str__(self) -> str:
        location = (
            f"{self.path}:{self.line_no}" if self.line_no else self.path
        )
        return f"{location}: {self.reason}"


@dataclass
class IngestReport:
    """What a quarantine-tolerant ingest kept and what it dropped.

    ``loaded``/``skipped`` are always maintained; ``issues`` carries the
    per-record detail only under ``on_error="collect"``.
    """

    loaded: int = 0
    skipped: int = 0
    issues: list[IngestIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every record made it in."""
        return self.skipped == 0

    def summary(self) -> str:
        """A one-line human summary, e.g. for CLI stderr."""
        if self.ok:
            return f"ingested {self.loaded} records"
        return (
            f"ingested {self.loaded} records, "
            f"quarantined {self.skipped}"
        )


def _quarantine(
    report: IngestReport | None,
    on_error: str,
    issue: IngestIssue,
) -> None:
    if report is None:
        return
    report.skipped += 1
    if on_error == "collect":
        report.issues.append(issue)


def _check_on_error(on_error: str, report: IngestReport | None) -> None:
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {', '.join(sorted(ON_ERROR_MODES))}; "
            f"got {on_error!r}"
        )
    if on_error == "collect" and report is None:
        raise ValueError("on_error='collect' requires a report= to fill")


def open_text(
    path: str | Path, mode: str = "r", *, newline: str | None = None
) -> IO[str]:
    """Open *path* as UTF-8 text, gzip-compressed when it ends in ``.gz``.

    *mode* is a plain text mode (``"r"``, ``"w"``, ``"a"``); the gzip
    binary/text distinction is handled here so callers never branch on the
    suffix themselves.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline=newline)
    return path.open(mode, encoding="utf-8", newline=newline)


def profile_from_record(record: dict) -> EntityProfile:
    """Build an :class:`EntityProfile` from one decoded JSON-lines record."""
    return EntityProfile(
        str(record["id"]),
        tuple((str(n), str(v)) for n, v in record["attributes"]),
    )


def iter_json_records(
    path: str | Path,
    convert: Callable[[dict], T],
    *,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> Iterator[T]:
    """Stream a JSON-lines file through *convert*, one record at a time.

    Blank lines are skipped.  A line that fails to parse — or whose
    decoded record *convert* rejects — raises a :class:`ValueError`
    naming the file and line under ``on_error="raise"`` (the default);
    under ``"skip"`` and ``"collect"`` the line is quarantined instead
    and counted in *report* (``collect`` also records an
    :class:`IngestIssue` per line, and requires *report*).  The file is
    read lazily, so gigabyte-scale (optionally ``.gz``-compressed)
    inputs stream in constant memory.  Shared by :func:`iter_collection`
    and the streaming subsystem's record parser.
    """
    path = Path(path)
    _check_on_error(on_error, report)
    with open_text(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                FAULTS.fire("ingest.record", path=path)
                record = convert(json.loads(line))
            except (KeyError, TypeError, ValueError, InjectedFault) as exc:
                if on_error == "raise":
                    raise ValueError(
                        f"{path}:{line_no}: malformed record"
                    ) from exc
                _quarantine(
                    report,
                    on_error,
                    IngestIssue(str(path), line_no, f"malformed record: {exc}"),
                )
                continue
            if report is not None:
                report.loaded += 1
            yield record


def iter_collection(
    path: str | Path,
    *,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> Iterator[EntityProfile]:
    """Stream the profiles of a JSON-lines file, one at a time.

    Unlike :func:`load_collection`, nothing is materialized — see
    :func:`iter_json_records` for the line-level and quarantine behavior.
    """
    return iter_json_records(
        path, profile_from_record, on_error=on_error, report=report
    )


def save_collection(collection: EntityCollection, path: str | Path) -> None:
    """Write *collection* as JSON lines: ``{"id": ..., "attributes": [[n, v]...]}``."""
    with open_text(path, "w") as handle:
        for profile in collection:
            record = {
                "id": profile.profile_id,
                "attributes": [list(pair) for pair in profile.attributes],
            }
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")


def load_collection(
    path: str | Path,
    name: str = "",
    *,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> EntityCollection:
    """Read a JSON-lines file written by :func:`save_collection`.

    Under ``on_error="skip"``/``"collect"``, malformed lines *and*
    duplicate profile ids are quarantined (first occurrence wins) instead
    of aborting the load — see :func:`iter_json_records`.
    """
    path = Path(path)
    _check_on_error(on_error, report)
    default_name = path.name[: -len(".gz")] if path.suffix == ".gz" else path.name
    default_name = Path(default_name).stem
    profiles = iter_collection(path, on_error=on_error, report=report)
    if on_error != "raise":
        profiles = _deduplicated(profiles, path, on_error, report)
    return EntityCollection(profiles, name=name or default_name)


def _deduplicated(
    profiles: Iterator[EntityProfile],
    path: Path,
    on_error: str,
    report: IngestReport | None,
) -> Iterator[EntityProfile]:
    """Drop repeat ids (keeping the first) so the collection stays valid."""
    seen: set[str] = set()
    for profile in profiles:
        if profile.profile_id in seen:
            if report is not None:
                report.loaded -= 1  # counted by the reader, then dropped
            _quarantine(
                report,
                on_error,
                IngestIssue(
                    str(path),
                    None,
                    f"duplicate profile_id {profile.profile_id!r} "
                    "(first occurrence kept)",
                ),
            )
            continue
        seen.add(profile.profile_id)
        yield profile


def save_ground_truth(truth: GroundTruth, path: str | Path) -> None:
    """Write *truth* as a two-column CSV with an ``id1,id2`` header."""
    with open_text(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2"])
        for id1, id2 in sorted(truth):
            writer.writerow([id1, id2])


def load_ground_truth(path: str | Path, clean_clean: bool = True) -> GroundTruth:
    """Read a CSV written by :func:`save_ground_truth`."""
    path = Path(path)
    pairs: list[tuple[str, str]] = []
    with open_text(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty ground-truth file")
        for row in reader:
            if len(row) != 2:
                raise ValueError(f"{path}: expected 2 columns, got {row!r}")
            pairs.append((row[0], row[1]))
    return GroundTruth(pairs, clean_clean=clean_clean)


def load_csv_collection(
    path: str | Path,
    id_column: str = "id",
    name: str = "",
) -> EntityCollection:
    """Read a header-ful CSV where each non-id column is an attribute.

    Empty cells become missing attributes, matching how the benchmark
    datasets encode incomplete records.
    """
    path = Path(path)
    profiles: list[EntityProfile] = []
    with open_text(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_column not in reader.fieldnames:
            raise ValueError(f"{path}: missing id column {id_column!r}")
        for row in reader:
            attributes = tuple(
                (column, value)
                for column, value in row.items()
                if column != id_column and value and value.strip()
            )
            profiles.append(EntityProfile(str(row[id_column]), attributes))
    return EntityCollection(profiles, name=name or path.stem)
