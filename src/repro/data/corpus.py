"""The interned columnar corpus: one tokenization pass, shared by every layer.

BLAST is token-centric end to end — attribute entropies, loose schema
clustering, blocking keys and edge weighting all consume the same terms —
yet the natural per-layer implementation re-tokenizes and re-hashes the raw
strings once per consumer.  This module runs the value transformation
function tau exactly **once** per dataset and exposes the result as flat
columnar arrays over interned integer ids:

* a :class:`TokenDictionary` interns every token string to a stable
  ``int32`` id (and every attribute to an attribute id);
* an :class:`InternedCorpus` stores one row per *token occurrence* in
  profile order — parallel ``attr_ids``/``token_ids`` arrays with a CSR
  ``profile_ptr`` delimiting each profile's span — so multiplicities
  survive (entropy extraction counts frequencies) while distinct-token
  views are a single ``np.unique`` away.

Consumers downstream (``repro.blocking``, ``repro.schema``, the CSR
lowering of ``repro.graph.entity_index`` and the benchmarks) derive their
keys and statistics from these id arrays and materialize strings only at
API boundaries.  The corpus is built lazily and cached on
:attr:`repro.data.ERDataset.corpus`.

Token ids are *stable*: they are assigned in first-occurrence order of the
single pass, and :meth:`TokenDictionary.to_payload` /
:meth:`TokenDictionary.from_payload` round-trip them losslessly (the
streaming snapshot format relies on this to keep posting-list keys valid
across restarts).
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator
from functools import cached_property
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.utils.tokenize import qgrams, suffixes, tokenize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset -> here)
    from repro.data.dataset import ERDataset

#: Attribute references mirror ``repro.schema.partition.AttributeRef``.
AttributeRef = tuple[int, str]

#: Token ids are int32; the dictionary refuses to grow past this.
MAX_TOKEN_ID = 2**31 - 1


class TokenDictionary:
    """String -> ``int32`` interning with stable, dense, serializable ids.

    Ids are assigned contiguously from 0 in interning order and are never
    reused or removed, so an id remains a valid name for its string for
    the lifetime of the dictionary (and across a
    :meth:`to_payload`/:meth:`from_payload` round trip).

    >>> d = TokenDictionary()
    >>> d.intern("abram"), d.intern("st"), d.intern("abram")
    (0, 1, 0)
    >>> d.token_of(1)
    'st'
    """

    __slots__ = ("_ids", "_tokens")

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._tokens: list[str] = []
        self._ids: dict[str, int] = {}
        for token in tokens:
            self.intern(token)

    def intern(self, token: str) -> int:
        """The id of *token*, allocating a fresh one on first sight."""
        tid = self._ids.get(token)
        if tid is None:
            tid = len(self._tokens)
            if tid > MAX_TOKEN_ID:
                raise OverflowError("token dictionary exceeded int32 id space")
            self._ids[token] = tid
            self._tokens.append(token)
        return tid

    def id_of(self, token: str) -> int:
        """The id of an already-interned *token* (KeyError if unknown)."""
        return self._ids[token]

    def get(self, token: str, default: int | None = None) -> int | None:
        """The id of *token*, or *default* when it was never interned."""
        return self._ids.get(token, default)

    def token_of(self, tid: int) -> str:
        """The string a token id stands for."""
        return self._tokens[tid]

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: object) -> bool:
        return token in self._ids

    def __iter__(self) -> Iterator[str]:
        """Iterate over the interned strings in id order."""
        return iter(self._tokens)

    def __repr__(self) -> str:
        return f"TokenDictionary(size={len(self)})"

    def lengths(self) -> np.ndarray:
        """Character length of every interned string, indexed by id."""
        return np.fromiter(
            (len(t) for t in self._tokens), dtype=np.int32, count=len(self._tokens)
        )

    def to_payload(self) -> list[str]:
        """JSON-serializable form: the strings in id order."""
        return list(self._tokens)

    @classmethod
    def from_payload(cls, tokens: Iterable[str]) -> "TokenDictionary":
        """Rebuild a dictionary, preserving the ids :meth:`to_payload` saved."""
        dictionary = cls()
        for position, token in enumerate(tokens):
            if dictionary.intern(str(token)) != position:
                raise ValueError(f"duplicate token {token!r} in payload")
        return dictionary


class InternedCorpus:
    """Columnar, id-interned view of every token occurrence of a dataset.

    Attributes
    ----------
    dictionary:
        Token string <-> id interning (shared by every consumer).
    attributes:
        ``attr_id -> (source, name)``; the inverse of :meth:`attr_id_of`.
    profile_ptr:
        ``int64[num_profiles + 1]`` — profile *p*'s token occurrences are
        rows ``profile_ptr[p] : profile_ptr[p + 1]`` of the flat arrays.
    attr_ids / token_ids:
        Parallel ``int32`` arrays, one row per token occurrence, in
        profile-then-value order (multiplicities preserved).
    offset2:
        Global index of the first E2 profile (``num_profiles`` for dirty).
    """

    def __init__(
        self,
        dictionary: TokenDictionary,
        attributes: tuple[AttributeRef, ...],
        profile_ptr: np.ndarray,
        attr_ids: np.ndarray,
        token_ids: np.ndarray,
        offset2: int,
        is_clean_clean: bool,
    ) -> None:
        self.dictionary = dictionary
        self.attributes = attributes
        self.profile_ptr = profile_ptr
        self.attr_ids = attr_ids
        self.token_ids = token_ids
        self.offset2 = offset2
        self.is_clean_clean = is_clean_clean
        self._attr_index: dict[AttributeRef, int] = {
            ref: aid for aid, ref in enumerate(attributes)
        }
        self._cache: dict[tuple, object] = {}

    @classmethod
    def build(cls, dataset: "ERDataset") -> "InternedCorpus":
        """Tokenize *dataset* once — the single pass everything else shares.

        Tokens are kept down to length 1 (``min_length=1``); consumers
        apply their own length floors through the cached
        :attr:`token_lengths` array, so one corpus serves every
        ``min_token_length`` setting.
        """
        dictionary = TokenDictionary()
        attributes: list[AttributeRef] = []
        attr_index: dict[AttributeRef, int] = {}
        ptr: list[int] = [0]
        flat_attrs: list[int] = []
        flat_tokens: list[int] = []
        num_profiles = dataset.num_profiles
        if num_profiles > MAX_TOKEN_ID:
            raise OverflowError("corpus profile space exceeds int32")
        offset2 = dataset.offset2 if dataset.is_clean_clean else num_profiles
        intern = dictionary.intern
        append_attr = flat_attrs.append
        append_token = flat_tokens.append
        for gidx, profile in dataset.iter_profiles():
            source = 0 if gidx < offset2 else 1
            for name, value in profile.iter_pairs():
                ref = (source, name)
                aid = attr_index.get(ref)
                if aid is None:
                    aid = len(attributes)
                    attr_index[ref] = aid
                    attributes.append(ref)
                for token in tokenize(value, min_length=1):
                    append_attr(aid)
                    append_token(intern(token))
            ptr.append(len(flat_tokens))
        return cls(
            dictionary=dictionary,
            attributes=tuple(attributes),
            profile_ptr=np.asarray(ptr, dtype=np.int64),
            attr_ids=np.asarray(flat_attrs, dtype=np.int32),
            token_ids=np.asarray(flat_tokens, dtype=np.int32),
            offset2=offset2,
            is_clean_clean=dataset.is_clean_clean,
        )

    # -- out-of-core persistence ---------------------------------------------

    def to_memmap(self, directory: str) -> None:
        """Persist the columnar arrays to *directory* for memmapped reopen.

        Writes one ``.npy`` file per array plus a ``corpus.json`` manifest
        carrying the scalars, the attribute table, and the token
        dictionary (strings in id order — the same stable-id payload the
        streaming snapshots use).  Each file is written to a temp name
        and published with ``os.replace``, so a crash mid-save never
        leaves a directory that :meth:`from_memmap` would half-load.
        """
        os.makedirs(directory, exist_ok=True)
        for stem, array in (
            ("profile_ptr", self.profile_ptr),
            ("attr_ids", self.attr_ids),
            ("token_ids", self.token_ids),
        ):
            tmp = os.path.join(directory, f"{stem}.{os.getpid()}.tmp.npy")
            with open(tmp, "wb") as handle:
                np.save(handle, np.ascontiguousarray(array))
            os.replace(tmp, os.path.join(directory, f"{stem}.npy"))
        manifest = {
            "format": 1,
            "offset2": int(self.offset2),
            "is_clean_clean": bool(self.is_clean_clean),
            "attributes": [[source, name] for source, name in self.attributes],
            "tokens": self.dictionary.to_payload(),
        }
        tmp = os.path.join(directory, f"corpus.{os.getpid()}.tmp.json")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(tmp, os.path.join(directory, "corpus.json"))

    @classmethod
    def from_memmap(cls, directory: str) -> "InternedCorpus":
        """Reopen a :meth:`to_memmap` directory with memmapped arrays.

        The id arrays come back as read-only ``np.memmap`` views —
        bit-identical to the saved arrays, paged in on demand — so a
        DBpedia-scale corpus opens in O(manifest) memory.  Token and
        attribute ids are preserved exactly (:meth:`TokenDictionary.from_payload`
        validates the id order).
        """
        with open(
            os.path.join(directory, "corpus.json"), encoding="utf-8"
        ) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != 1:
            raise ValueError(
                f"unsupported corpus manifest format: {manifest.get('format')!r}"
            )
        return cls(
            dictionary=TokenDictionary.from_payload(manifest["tokens"]),
            attributes=tuple(
                (int(source), str(name))
                for source, name in manifest["attributes"]
            ),
            profile_ptr=np.load(
                os.path.join(directory, "profile_ptr.npy"), mmap_mode="r"
            ),
            attr_ids=np.load(
                os.path.join(directory, "attr_ids.npy"), mmap_mode="r"
            ),
            token_ids=np.load(
                os.path.join(directory, "token_ids.npy"), mmap_mode="r"
            ),
            offset2=int(manifest["offset2"]),
            is_clean_clean=bool(manifest["is_clean_clean"]),
        )

    # -- basic views ---------------------------------------------------------

    @property
    def num_profiles(self) -> int:
        return len(self.profile_ptr) - 1

    @property
    def num_occurrences(self) -> int:
        """Total token occurrences (the ``nnz`` of the columnar layout)."""
        return int(self.token_ids.size)

    @property
    def vocabulary_size(self) -> int:
        return len(self.dictionary)

    def attr_id_of(self, source: int, name: str) -> int | None:
        """Attribute id of ``(source, name)``, or ``None`` if never seen."""
        return self._attr_index.get((source, name))

    @cached_property
    def token_lengths(self) -> np.ndarray:
        """Character length per token id (consumers filter on this)."""
        return self.dictionary.lengths()

    @cached_property
    def occurrence_rows(self) -> np.ndarray:
        """Profile (global) index of every occurrence row, ``int64[nnz]``."""
        return np.repeat(
            np.arange(self.num_profiles, dtype=np.int64),
            np.diff(self.profile_ptr),
        )

    def _source_bounds(self, source: int) -> tuple[int, int]:
        if source == 0:
            return 0, self.offset2
        if not self.is_clean_clean:
            raise ValueError(f"a dirty corpus has a single source, got {source}")
        return self.offset2, self.num_profiles

    def __repr__(self) -> str:
        return (
            f"InternedCorpus(profiles={self.num_profiles}, "
            f"occurrences={self.num_occurrences}, "
            f"vocabulary={self.vocabulary_size})"
        )

    # -- distinct-token views ------------------------------------------------

    def distinct_profile_tokens(
        self, min_token_length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct ``(profile, token)`` assignments, row-major sorted.

        Returns parallel int64 ``(rows, tokens)`` arrays with tokens of at
        least *min_token_length* characters — the id-space analogue of
        ``EntityProfile.tokens()`` over the whole dataset.  Cached per
        length floor.
        """
        key = ("profile_tokens", min_token_length)
        cached = self._cache.get(key)
        if cached is None:
            mask = self.token_lengths[self.token_ids] >= min_token_length
            rows = self.occurrence_rows[mask]
            toks = self.token_ids[mask].astype(np.int64)
            packed = np.unique((rows << np.int64(31)) | toks)
            cached = (packed >> np.int64(31), packed & np.int64(MAX_TOKEN_ID))
            self._cache[key] = cached
        return cached

    def profile_token_id_sets(
        self, min_token_length: int
    ) -> tuple[frozenset[int], ...]:
        """Per-profile distinct token-id sets (e.g. for canopy Jaccard)."""
        key = ("token_sets", min_token_length)
        cached = self._cache.get(key)
        if cached is None:
            rows, toks = self.distinct_profile_tokens(min_token_length)
            bounds = np.searchsorted(
                rows, np.arange(self.num_profiles + 1, dtype=np.int64)
            )
            toks_list = toks.tolist()
            cached = tuple(
                frozenset(toks_list[bounds[p] : bounds[p + 1]])
                for p in range(self.num_profiles)
            )
            self._cache[key] = cached
        return cached

    def attribute_term_counts(
        self, source: int, min_token_length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per ``(attribute, token)`` occurrence counts of one source.

        Returns parallel ``(attr_ids, token_ids, counts)`` int64 arrays
        sorted by attribute then token — the ``np.bincount``-style input
        entropy extraction and attribute profiling consume instead of
        Counter-over-strings.
        """
        key = ("attr_counts", source, min_token_length)
        cached = self._cache.get(key)
        if cached is None:
            start, end = self._source_bounds(source)
            lo, hi = int(self.profile_ptr[start]), int(self.profile_ptr[end])
            attrs = self.attr_ids[lo:hi].astype(np.int64)
            toks = self.token_ids[lo:hi].astype(np.int64)
            mask = self.token_lengths[self.token_ids[lo:hi]] >= min_token_length
            vocab = np.int64(max(1, self.vocabulary_size))
            codes = attrs[mask] * vocab + toks[mask]
            unique, counts = np.unique(codes, return_counts=True)
            cached = (unique // vocab, unique % vocab, counts.astype(np.int64))
            self._cache[key] = cached
        return cached

    # -- per-token expansions (q-grams, suffixes) ----------------------------

    def _expansion_table(
        self, key: tuple, expand: Callable[[str], Iterable[str]]
    ) -> tuple[TokenDictionary, np.ndarray, np.ndarray]:
        """Memoized per-token expansion: token id -> derived-term id list.

        Returns ``(terms, ptr, ids)`` where ``ids[ptr[t]:ptr[t+1]]`` are
        the (deduplicated, first-seen order) derived-term ids of token
        ``t`` and *terms* interns the derived strings.  Each distinct
        token is expanded exactly once per corpus.
        """
        cached = self._cache.get(key)
        if cached is None:
            terms = TokenDictionary()
            ptr = [0]
            ids: list[int] = []
            intern = terms.intern
            for token in self.dictionary:
                seen: set[int] = set()
                for term in expand(token):
                    tid = intern(term)
                    if tid not in seen:
                        seen.add(tid)
                        ids.append(tid)
                ptr.append(len(ids))
            cached = (
                terms,
                np.asarray(ptr, dtype=np.int64),
                np.asarray(ids, dtype=np.int64),
            )
            self._cache[key] = cached
        return cached

    def qgram_table(self, q: int) -> tuple[TokenDictionary, np.ndarray, np.ndarray]:
        """Character q-grams per token id (:func:`repro.utils.tokenize.qgrams`)."""
        return self._expansion_table(("qgrams", q), lambda t: qgrams(t, q))

    def suffix_table(
        self, min_length: int
    ) -> tuple[TokenDictionary, np.ndarray, np.ndarray]:
        """Token suffixes per token id (see :func:`repro.utils.tokenize.suffixes`)."""
        return self._expansion_table(
            ("suffixes", min_length), lambda t: suffixes(t, min_length)
        )

    def expand_tokens(
        self,
        rows: np.ndarray,
        toks: np.ndarray,
        table: tuple[TokenDictionary, np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand ``(row, token)`` pairs through a per-token derivation table.

        Returns ``(rows_out, term_ids, positions)`` where *positions*
        indexes the input pair each expanded row came from (so callers can
        carry parallel per-pair payloads, e.g. cluster ids, through the
        expansion).
        """
        _, ptr, ids = table
        counts = ptr[toks + 1] - ptr[toks]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        positions = np.repeat(np.arange(toks.size, dtype=np.int64), counts)
        offsets = np.zeros(toks.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        starts = np.repeat(ptr[toks] - offsets, counts)
        flat = starts + np.arange(total, dtype=np.int64)
        return rows[positions], ids[flat], positions
