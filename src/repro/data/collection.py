"""Entity collections: ordered, id-indexed sets of entity profiles."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.data.profile import EntityProfile


class EntityCollection(Sequence[EntityProfile]):
    """A named, duplicate-id-free sequence of :class:`EntityProfile`.

    Profiles keep their insertion order; the position of a profile in the
    collection is its *local index*, which the blocking layer combines with a
    source offset into global indices.

    Raises
    ------
    ValueError
        If two profiles share the same ``profile_id``.
    """

    def __init__(self, profiles: Iterable[EntityProfile], name: str = "") -> None:
        self.name = name
        self._profiles: list[EntityProfile] = list(profiles)
        self._by_id: dict[str, int] = {}
        for index, profile in enumerate(self._profiles):
            if profile.profile_id in self._by_id:
                raise ValueError(
                    f"duplicate profile_id {profile.profile_id!r} in "
                    f"collection {name!r}"
                )
            self._by_id[profile.profile_id] = index

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self._profiles)

    def __getitem__(self, index):  # type: ignore[override]
        return self._profiles[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, EntityProfile):
            return item.profile_id in self._by_id
        return item in self._by_id

    def __repr__(self) -> str:
        return f"EntityCollection(name={self.name!r}, size={len(self)})"

    def index_of(self, profile_id: str) -> int:
        """Local index of the profile with *profile_id*."""
        return self._by_id[profile_id]

    def get(self, profile_id: str) -> EntityProfile:
        """The profile with *profile_id* (KeyError if absent)."""
        return self._profiles[self._by_id[profile_id]]

    @property
    def attribute_names(self) -> set[str]:
        """The attribute name space ``A_E`` of this collection."""
        names: set[str] = set()
        for profile in self._profiles:
            names.update(profile.attribute_names)
        return names

    @property
    def num_name_value_pairs(self) -> int:
        """Total name-value pairs (the ``nvp`` column of Table 2)."""
        return sum(len(profile) for profile in self._profiles)

    def values_of(self, attribute: str) -> list[str]:
        """Every value the attribute assumes across the collection (V_a)."""
        out: list[str] = []
        for profile in self._profiles:
            out.extend(profile.values(attribute))
        return out
