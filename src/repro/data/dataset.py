"""ER datasets: collections + ground truth + global profile indexing.

Everything downstream of the data layer (blocking, graphs, metrics) works on
*global indices*.  For clean-clean ER the profiles of ``E1`` occupy indices
``0 .. |E1|-1`` and those of ``E2`` occupy ``|E1| .. |E1|+|E2|-1``; for dirty
ER there is a single collection starting at 0.  :class:`ERDataset` owns this
mapping so the rest of the library never juggles (source, id) tuples.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import cached_property
from typing import TYPE_CHECKING

from repro.data.collection import EntityCollection
from repro.data.ground_truth import GroundTruth
from repro.data.profile import EntityProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (corpus -> here)
    from repro.data.corpus import InternedCorpus


class ERDataset:
    """A clean-clean or dirty entity-resolution task.

    Parameters
    ----------
    collection1:
        The first (or only) entity collection.
    collection2:
        The second collection for clean-clean ER; ``None`` for dirty ER.
    ground_truth:
        Known matches.  Its ``clean_clean`` flag must agree with the number
        of collections supplied.
    name:
        Dataset label used in benchmark output (e.g. ``"ar1"``).
    """

    def __init__(
        self,
        collection1: EntityCollection,
        collection2: EntityCollection | None,
        ground_truth: GroundTruth,
        name: str = "",
    ) -> None:
        if ground_truth.clean_clean != (collection2 is not None):
            raise ValueError(
                "ground truth kind does not match the number of collections"
            )
        self.name = name
        self.collection1 = collection1
        self.collection2 = collection2
        self.ground_truth = ground_truth

    @property
    def is_clean_clean(self) -> bool:
        return self.collection2 is not None

    @property
    def num_profiles(self) -> int:
        """Total number of profiles across both sources."""
        n = len(self.collection1)
        if self.collection2 is not None:
            n += len(self.collection2)
        return n

    @property
    def offset2(self) -> int:
        """Global index of the first profile of ``E2`` (clean-clean only)."""
        return len(self.collection1)

    def profile(self, global_index: int) -> EntityProfile:
        """The profile at *global_index*."""
        n1 = len(self.collection1)
        if global_index < n1:
            return self.collection1[global_index]
        if self.collection2 is None:
            raise IndexError(global_index)
        return self.collection2[global_index - n1]

    def source_of(self, global_index: int) -> int:
        """0 if the profile belongs to ``E1``, 1 if to ``E2``."""
        if global_index < len(self.collection1):
            return 0
        if self.collection2 is None:
            raise IndexError(global_index)
        return 1

    def iter_profiles(self) -> Iterator[tuple[int, EntityProfile]]:
        """Yield ``(global_index, profile)`` over all profiles."""
        for i, profile in enumerate(self.collection1):
            yield i, profile
        if self.collection2 is not None:
            n1 = len(self.collection1)
            for j, profile in enumerate(self.collection2):
                yield n1 + j, profile

    @cached_property
    def corpus(self) -> "InternedCorpus":
        """The interned columnar corpus of this dataset (built lazily, once).

        One tokenization pass over every profile, shared by the blocking,
        schema, graph-lowering and benchmark layers; see
        :class:`repro.data.corpus.InternedCorpus`.
        """
        from repro.data.corpus import InternedCorpus

        return InternedCorpus.build(self)

    @cached_property
    def truth_pairs(self) -> frozenset[tuple[int, int]]:
        """Ground-truth matches as canonical global-index pairs ``i < j``.

        Pairs whose ids do not resolve against the collections are rejected —
        a silent drop here would inflate every PC number downstream.
        """
        pairs: set[tuple[int, int]] = set()
        if self.collection2 is not None:
            n1 = len(self.collection1)
            for id1, id2 in self.ground_truth:
                i = self.collection1.index_of(id1)
                j = n1 + self.collection2.index_of(id2)
                pairs.add((i, j))
        else:
            for id1, id2 in self.ground_truth:
                i = self.collection1.index_of(id1)
                j = self.collection1.index_of(id2)
                pairs.add((i, j) if i < j else (j, i))
        return frozenset(pairs)

    @property
    def num_duplicates(self) -> int:
        """|D_E|: the number of ground-truth matches."""
        return len(self.truth_pairs)

    def brute_force_comparisons(self) -> int:
        """Comparisons a blocking-free ER would execute (Section 2)."""
        if self.collection2 is not None:
            return len(self.collection1) * len(self.collection2)
        n = len(self.collection1)
        return n * (n - 1) // 2

    def __repr__(self) -> str:
        kind = "clean-clean" if self.is_clean_clean else "dirty"
        return (
            f"ERDataset(name={self.name!r}, kind={kind}, "
            f"profiles={self.num_profiles}, duplicates={self.num_duplicates})"
        )
