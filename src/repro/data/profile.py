"""Entity profiles.

The paper (Section 2) models an *entity profile* as a tuple of a unique
identifier and a set of name-value pairs ``<a, v>``.  Attribute names may
repeat (semi-structured Web data frequently has multi-valued attributes), so
the pairs are stored as an ordered tuple rather than a mapping.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.utils.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class EntityProfile:
    """An immutable entity profile: identifier plus name-value pairs.

    Parameters
    ----------
    profile_id:
        Identifier unique *within its entity collection*.
    attributes:
        Ordered ``(name, value)`` pairs.  Empty values are permitted on input
        but dropped, mirroring how the benchmark datasets treat missing data.
    """

    profile_id: str
    attributes: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    # Memoized token views (the profile is immutable, so the tokenization
    # of its values never changes); excluded from eq/repr/hash.
    _tokens: frozenset[str] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _tokens_by_attribute: "MappingProxyType[str, frozenset[str]] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        cleaned = tuple(
            (str(name), str(value))
            for name, value in self.attributes
            if str(value).strip()
        )
        object.__setattr__(self, "attributes", cleaned)

    @classmethod
    def from_dict(
        cls, profile_id: str, mapping: dict[str, str | Iterable[str]]
    ) -> "EntityProfile":
        """Build a profile from ``{name: value}`` or ``{name: [values...]}``.

        >>> p = EntityProfile.from_dict("p1", {"name": "John Abram Jr"})
        >>> p.values("name")
        ['John Abram Jr']
        """
        pairs: list[tuple[str, str]] = []
        for name, value in mapping.items():
            if isinstance(value, str):
                pairs.append((name, value))
            else:
                pairs.extend((name, v) for v in value)
        return cls(profile_id, tuple(pairs))

    @property
    def attribute_names(self) -> set[str]:
        """Distinct attribute names used by this profile."""
        return {name for name, _ in self.attributes}

    def values(self, name: str) -> list[str]:
        """All values recorded under attribute *name* (possibly empty)."""
        return [value for attr, value in self.attributes if attr == name]

    def iter_pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(name, value)`` pairs in insertion order."""
        return iter(self.attributes)

    def tokens(self) -> frozenset[str]:
        """Every distinct token appearing anywhere in the profile's values.

        This is the token universe Token Blocking indexes the profile under.
        Memoized — the regex runs once per profile, and the same frozenset
        is returned on every call.
        """
        cached = self._tokens
        if cached is None:
            out: set[str] = set()
            for _, value in self.attributes:
                out.update(tokenize(value))
            cached = frozenset(out)
            object.__setattr__(self, "_tokens", cached)
        return cached

    def tokens_by_attribute(self) -> "MappingProxyType[str, frozenset[str]]":
        """Distinct tokens grouped by the attribute they appear in.

        Memoized like :meth:`tokens`; the result is a read-only mapping of
        frozensets (it is shared across calls, so mutation would otherwise
        corrupt every later key derivation).
        """
        cached = self._tokens_by_attribute
        if cached is None:
            mutable: dict[str, set[str]] = {}
            for name, value in self.attributes:
                mutable.setdefault(name, set()).update(tokenize(value))
            cached = MappingProxyType(
                {name: frozenset(tokens) for name, tokens in mutable.items()}
            )
            object.__setattr__(self, "_tokens_by_attribute", cached)
        return cached

    def text(self) -> str:
        """All values concatenated — the schema-blind view of the profile."""
        return " ".join(value for _, value in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)
