"""Entity profiles.

The paper (Section 2) models an *entity profile* as a tuple of a unique
identifier and a set of name-value pairs ``<a, v>``.  Attribute names may
repeat (semi-structured Web data frequently has multi-valued attributes), so
the pairs are stored as an ordered tuple rather than a mapping.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.utils.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class EntityProfile:
    """An immutable entity profile: identifier plus name-value pairs.

    Parameters
    ----------
    profile_id:
        Identifier unique *within its entity collection*.
    attributes:
        Ordered ``(name, value)`` pairs.  Empty values are permitted on input
        but dropped, mirroring how the benchmark datasets treat missing data.
    """

    profile_id: str
    attributes: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        cleaned = tuple(
            (str(name), str(value))
            for name, value in self.attributes
            if str(value).strip()
        )
        object.__setattr__(self, "attributes", cleaned)

    @classmethod
    def from_dict(
        cls, profile_id: str, mapping: dict[str, str | Iterable[str]]
    ) -> "EntityProfile":
        """Build a profile from ``{name: value}`` or ``{name: [values...]}``.

        >>> p = EntityProfile.from_dict("p1", {"name": "John Abram Jr"})
        >>> p.values("name")
        ['John Abram Jr']
        """
        pairs: list[tuple[str, str]] = []
        for name, value in mapping.items():
            if isinstance(value, str):
                pairs.append((name, value))
            else:
                pairs.extend((name, v) for v in value)
        return cls(profile_id, tuple(pairs))

    @property
    def attribute_names(self) -> set[str]:
        """Distinct attribute names used by this profile."""
        return {name for name, _ in self.attributes}

    def values(self, name: str) -> list[str]:
        """All values recorded under attribute *name* (possibly empty)."""
        return [value for attr, value in self.attributes if attr == name]

    def iter_pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(name, value)`` pairs in insertion order."""
        return iter(self.attributes)

    def tokens(self) -> set[str]:
        """Every distinct token appearing anywhere in the profile's values.

        This is the token universe Token Blocking indexes the profile under.
        """
        out: set[str] = set()
        for _, value in self.attributes:
            out.update(tokenize(value))
        return out

    def tokens_by_attribute(self) -> dict[str, set[str]]:
        """Distinct tokens grouped by the attribute they appear in."""
        out: dict[str, set[str]] = {}
        for name, value in self.attributes:
            out.setdefault(name, set()).update(tokenize(value))
        return out

    def text(self) -> str:
        """All values concatenated — the schema-blind view of the profile."""
        return " ".join(value for _, value in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)
