"""Entity matching substrate: the downstream ER algorithm (Section 2)."""

from repro.matching.matcher import JaccardMatcher, MatchResult
from repro.matching.resolution import resolve_entities

__all__ = ["JaccardMatcher", "MatchResult", "resolve_entities"]
