"""Profile matching: the entity-resolution algorithm proper.

The paper assumes an ER algorithm exists and evaluates blocking
independently of it (Section 2); its end-to-end cost argument (Section
4.2.2) compares profiles "treated as strings, without considering metadata,
computing the Jaccard coefficient of the profiles".  This module implements
exactly that matcher so examples can run blocking-to-resolution pipelines
and measure the comparison-time savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import BlockCollection
from repro.data.dataset import ERDataset
from repro.schema.similarity import jaccard
from repro.utils.timer import Timer


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of executing the comparisons of a block collection."""

    matches: frozenset[tuple[int, int]]
    comparisons_executed: int
    seconds: float
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision <= 0.0 and self.recall <= 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


@dataclass
class JaccardMatcher:
    """Schema-blind Jaccard matcher over profile token sets.

    Parameters
    ----------
    threshold:
        Pairs with token-set Jaccard similarity >= threshold are declared
        matches.
    """

    threshold: float = 0.5
    _token_cache: dict[int, frozenset[str]] = field(default_factory=dict, repr=False)

    def similarity(self, dataset: ERDataset, i: int, j: int) -> float:
        """Jaccard similarity of the two profiles' token sets."""
        return jaccard(self._tokens(dataset, i), self._tokens(dataset, j))

    def execute(self, collection: BlockCollection, dataset: ERDataset) -> MatchResult:
        """Run every distinct comparison the collection entails.

        Redundant comparisons (same pair in several blocks) are executed
        once — matching this to the blocking-level PQ (which charges for
        redundancy) is exactly why meta-blocking's redundancy-free output
        saves wall-clock time.
        """
        # Dedup work happens here, outside the timed comparison loop (the
        # timer charges for similarity computations only, as before); the
        # pairs are streamed, never materialized as a Python set.
        pairs = collection.iter_distinct_pairs()
        matches: set[tuple[int, int]] = set()
        comparisons = 0
        with Timer() as timer:
            for i, j in pairs:
                comparisons += 1
                if self.similarity(dataset, i, j) >= self.threshold:
                    matches.add((i, j))
        truth = dataset.truth_pairs
        true_positives = len(matches & truth)
        precision = true_positives / len(matches) if matches else 0.0
        recall = true_positives / len(truth) if truth else 0.0
        return MatchResult(
            matches=frozenset(matches),
            comparisons_executed=comparisons,
            seconds=timer.elapsed,
            precision=precision,
            recall=recall,
        )

    def _tokens(self, dataset: ERDataset, index: int) -> frozenset[str]:
        cached = self._token_cache.get(index)
        if cached is None:
            cached = frozenset(dataset.profile(index).tokens())
            self._token_cache[index] = cached
        return cached
