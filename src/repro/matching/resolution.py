"""Entity resolution: grouping matched pairs into entities."""

from __future__ import annotations

from collections.abc import Iterable

from repro.utils.unionfind import UnionFind


def resolve_entities(
    matches: Iterable[tuple[int, int]], all_profiles: Iterable[int] = ()
) -> list[set[int]]:
    """Connected components of the match graph = resolved entities.

    Parameters
    ----------
    matches:
        Matched profile pairs (global indices).
    all_profiles:
        Optionally, the full universe of profile indices, so unmatched
        profiles appear as singleton entities.

    Returns
    -------
    list of sets
        Each set is one resolved real-world entity.
    """
    links = UnionFind(all_profiles)
    for i, j in matches:
        links.union(i, j)
    return links.components()
