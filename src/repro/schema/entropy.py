"""Entropy extraction (Section 3.1.3).

The information content of an attribute is its Shannon entropy ``H(X) =
-sum p(x) log2 p(x)`` over the empirical distribution of its values'
*tokens* — the same granularity as the blocking keys Token Blocking derives
from it.  A cluster of attributes carries the *aggregate entropy*
``H(C_k) = (1/|C_k|) * sum_{A_j in C_k} H(A_j)``, which the BLAST weighting
function later applies as the multiplicative factor ``h(B_uv)``.

Token frequencies come from the dataset's interned corpus when one is
supplied — per-``(attribute, token)`` id counts from a single shared
tokenization pass — and fall back to Counter-over-strings otherwise.  Both
paths produce identical entropies: :func:`shannon_entropy` sums with
``math.fsum``, which rounds exactly regardless of term order, so the
id-sorted corpus counts and the insertion-ordered Counter agree bit for
bit.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from repro.data.collection import EntityCollection
from repro.schema.partition import AttributePartitioning, AttributeRef
from repro.utils.tokenize import tokenize

if TYPE_CHECKING:  # pragma: no cover
    from repro.data.corpus import InternedCorpus


def shannon_entropy(frequencies: Iterable[int]) -> float:
    """Entropy in bits of the distribution given by raw *frequencies*.

    The term sum uses ``math.fsum`` (exactly rounded), so the result does
    not depend on the order the frequencies arrive in — Counter order and
    token-id order yield the same float.

    >>> shannon_entropy([1, 1])  # two equiprobable values
    1.0
    >>> shannon_entropy([4])  # fully predictable
    0.0
    """
    counts = [c for c in frequencies if c > 0]
    total = sum(counts)
    if total == 0:
        return 0.0
    return -math.fsum(
        (count / total) * math.log2(count / total) for count in counts
    )


def attribute_entropies(
    collection: EntityCollection,
    source: int,
    min_token_length: int = 2,
    corpus: "InternedCorpus | None" = None,
) -> dict[AttributeRef, float]:
    """Shannon entropy of every attribute of *collection*.

    Token occurrences are counted across all values of the attribute (with
    multiplicity — a token repeated in many records makes the attribute more
    predictable, lowering its entropy).  With a *corpus*, counting runs
    over the interned ``(attribute, token)`` id arrays instead of
    re-tokenizing the collection.
    """
    if corpus is not None:
        return _attribute_entropies_interned(
            collection, source, min_token_length, corpus
        )
    counters: dict[str, Counter[str]] = {}
    for profile in collection:
        for name, value in profile.iter_pairs():
            counter = counters.setdefault(name, Counter())
            counter.update(tokenize(value, min_token_length))
    out: dict[AttributeRef, float] = {}
    for name in collection.attribute_names:
        counter = counters.get(name, Counter())
        out[(source, name)] = shannon_entropy(counter.values())
    return out


def _attribute_entropies_interned(
    collection: EntityCollection,
    source: int,
    min_token_length: int,
    corpus: "InternedCorpus",
) -> dict[AttributeRef, float]:
    import numpy as np

    attrs, _, counts = corpus.attribute_term_counts(source, min_token_length)
    by_attr: dict[int, float] = {}
    if attrs.size:
        starts = np.flatnonzero(np.r_[True, attrs[1:] != attrs[:-1]])
        ends = np.r_[starts[1:], attrs.size]
        counts_list = counts.tolist()
        for start, end, attr in zip(
            starts.tolist(), ends.tolist(), attrs[starts].tolist()
        ):
            by_attr[attr] = shannon_entropy(counts_list[start:end])
    out: dict[AttributeRef, float] = {}
    for name in collection.attribute_names:
        aid = corpus.attr_id_of(source, name)
        out[(source, name)] = by_attr.get(aid, 0.0) if aid is not None else 0.0
    return out


def aggregate_entropies(
    partitioning: AttributePartitioning,
    entropies: Mapping[AttributeRef, float],
) -> dict[int, float]:
    """Aggregate entropy per cluster: the mean of its members' entropies.

    Attributes missing from *entropies* contribute 0 bits (they produced no
    tokens, so their keys never fire anyway).
    """
    out: dict[int, float] = {}
    for cluster_id in partitioning.cluster_ids:
        members = partitioning.members(cluster_id)
        if not members:
            out[cluster_id] = 0.0
            continue
        # fsum, not sum (RL005): members is a frozenset whose iteration
        # order follows PYTHONHASHSEED, so a left-to-right float sum could
        # drift in the last bit between runs; fsum rounds exactly once,
        # independent of term order.
        out[cluster_id] = math.fsum(
            entropies.get(ref, 0.0) for ref in members
        ) / len(members)
    return out


def extract_loose_schema_entropies(
    partitioning: AttributePartitioning,
    collection1: EntityCollection,
    collection2: EntityCollection | None = None,
    corpus: "InternedCorpus | None" = None,
) -> AttributePartitioning:
    """Attach aggregate entropies to *partitioning* (Phase 1, step 2).

    Returns a new partitioning; the input is unchanged.
    """
    entropies = attribute_entropies(collection1, source=0, corpus=corpus)
    if collection2 is not None:
        entropies.update(
            attribute_entropies(collection2, source=1, corpus=corpus)
        )
    return partitioning.with_entropies(aggregate_entropies(partitioning, entropies))
