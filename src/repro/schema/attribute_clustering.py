"""Attribute Clustering (AC) [Papadakis et al., TKDE 2013].

The baseline attribute-match induction technique LMI is compared against in
Section 4.3.  AC links every attribute to its single most similar attribute
from the other source (when the similarity is positive) and takes connected
components: each member of a cluster is guaranteed one highly similar
companion, but chains of best-match links can pull together attributes that
are not all pairwise similar — the "similar to other similar attributes"
behaviour the paper contrasts with LMI's cohesive clusters.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Set

from repro.schema.attribute_profile import AttributeProfile
from repro.schema.partition import AttributePartitioning, AttributeRef
from repro.schema.similarity import jaccard
from repro.utils.unionfind import UnionFind

SimilarityFn = Callable[[Set[str], Set[str]], float]


class AttributeClustering:
    """AC: best-match linking plus connected components.

    Parameters
    ----------
    similarity:
        Set-similarity function over token sets (Jaccard by default).
    glue_cluster:
        Whether singletons are gathered in the glue cluster.
    """

    def __init__(
        self, similarity: SimilarityFn = jaccard, glue_cluster: bool = True
    ) -> None:
        self.similarity = similarity
        self.glue_cluster = glue_cluster

    def induce(
        self,
        profiles1: Iterable[AttributeProfile],
        profiles2: Iterable[AttributeProfile] | None = None,
        candidate_pairs: Iterable[tuple[AttributeRef, AttributeRef]] | None = None,
    ) -> AttributePartitioning:
        """Partition the attribute name space (same interface as LMI)."""
        by_ref: dict[AttributeRef, AttributeProfile] = {}
        for profile in profiles1:
            by_ref[profile.ref] = profile
        if profiles2 is not None:
            for profile in profiles2:
                if profile.ref in by_ref:
                    raise ValueError(f"duplicate attribute ref {profile.ref!r}")
                by_ref[profile.ref] = profile

        if candidate_pairs is not None:
            pairs = sorted(
                {
                    (min(a, b), max(a, b))
                    for a, b in candidate_pairs
                    if a != b and a in by_ref and b in by_ref
                }
            )
        else:
            refs = sorted(by_ref)
            if profiles2 is not None:
                left = [r for r in refs if r[0] == 0]
                right = [r for r in refs if r[0] == 1]
                pairs = [(a, b) for a in left for b in right]
            else:
                pairs = [
                    (refs[i], refs[j])
                    for i in range(len(refs))
                    for j in range(i + 1, len(refs))
                ]

        # Track each attribute's best partner; ties resolved toward the
        # lexicographically smaller ref for determinism.
        best: dict[AttributeRef, tuple[float, AttributeRef]] = {}
        for ref_i, ref_j in pairs:
            value = self.similarity(by_ref[ref_i].tokens, by_ref[ref_j].tokens)
            if value <= 0.0:
                continue
            if ref_i not in best or value > best[ref_i][0]:
                best[ref_i] = (value, ref_j)
            if ref_j not in best or value > best[ref_j][0]:
                best[ref_j] = (value, ref_i)

        links = UnionFind(by_ref.keys())
        for ref, (_, partner) in best.items():
            links.union(ref, partner)

        clusters = [c for c in links.components() if len(c) > 1]
        clustered = set().union(*clusters) if clusters else set()
        singletons = set(by_ref) - clustered
        return AttributePartitioning(
            clusters=sorted(clusters, key=lambda c: sorted(c)),
            glue=singletons if self.glue_cluster else None,
        )
