"""Loose attribute-Match Induction — Algorithm 1 of the paper.

LMI pairs up "nearly most similar" attributes across two sources and takes
the connected components of the *mutual* candidate edges as clusters:

1. compute the similarity of every attribute-profile pair (or only of the
   LSH candidate pairs when the optional pre-processing step is enabled),
   tracking each attribute's maximum similarity;
2. mark ``a_j`` as a candidate of ``a_i`` when ``sim(a_i, a_j) >= alpha *
   max_i`` (and symmetrically);
3. keep the edge ``<a_i, a_j>`` only if each is a candidate of the other;
4. connected components with more than one member become clusters, and the
   remaining singletons are gathered by the optional glue cluster.

The mutuality requirement is what makes LMI produce *cohesive* clusters,
versus Attribute Clustering's best-match chaining (Section 4.3).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Set

from repro.schema.attribute_profile import AttributeProfile
from repro.schema.partition import AttributePartitioning, AttributeRef
from repro.schema.similarity import jaccard
from repro.utils.unionfind import UnionFind

SimilarityFn = Callable[[Set[str], Set[str]], float]


class LooseAttributeMatchInduction:
    """LMI: clusters of mutually nearly-most-similar attributes.

    Parameters
    ----------
    alpha:
        The "nearly similar" factor of Algorithm 1; a pair is a candidate
        when its similarity reaches ``alpha`` times the maximum similarity
        of either endpoint.  The paper's example value is 0.9.
    similarity:
        Set-similarity function over token sets; Jaccard by default (and
        required when combined with MinHash LSH).
    glue_cluster:
        Whether singleton attributes are gathered in the glue cluster
        (cluster id 0).  Disable to reproduce the Figure 10 setting.
    """

    def __init__(
        self,
        alpha: float = 0.9,
        similarity: SimilarityFn = jaccard,
        glue_cluster: bool = True,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.similarity = similarity
        self.glue_cluster = glue_cluster

    def induce(
        self,
        profiles1: Iterable[AttributeProfile],
        profiles2: Iterable[AttributeProfile] | None = None,
        candidate_pairs: Iterable[tuple[AttributeRef, AttributeRef]] | None = None,
    ) -> AttributePartitioning:
        """Partition the attribute name space.

        Parameters
        ----------
        profiles1, profiles2:
            Attribute profiles of the two sources; leave *profiles2* as
            ``None`` for dirty ER, where similar attributes are sought within
            the single source.
        candidate_pairs:
            If given (by the LSH pre-processing step), similarities are
            computed only for these pairs instead of the full cross product.

        Returns
        -------
        AttributePartitioning
            Clusters of size >= 2, plus the glue cluster when enabled.
        """
        by_ref: dict[AttributeRef, AttributeProfile] = {}
        for profile in profiles1:
            by_ref[profile.ref] = profile
        if profiles2 is not None:
            for profile in profiles2:
                if profile.ref in by_ref:
                    raise ValueError(f"duplicate attribute ref {profile.ref!r}")
                by_ref[profile.ref] = profile

        pairs = self._pairs_to_score(by_ref, profiles2 is not None, candidate_pairs)

        # Pass 1 (Algorithm 1, lines 2-8): similarities and per-attribute maxima.
        sims: dict[tuple[AttributeRef, AttributeRef], float] = {}
        max_sim: dict[AttributeRef, float] = {}
        for ref_i, ref_j in pairs:
            value = self.similarity(by_ref[ref_i].tokens, by_ref[ref_j].tokens)
            if value <= 0.0:
                continue
            sims[(ref_i, ref_j)] = value
            if value > max_sim.get(ref_i, 0.0):
                max_sim[ref_i] = value
            if value > max_sim.get(ref_j, 0.0):
                max_sim[ref_j] = value

        # Pass 2 (lines 9-13): candidate generation against alpha * max.
        candidates: dict[AttributeRef, set[AttributeRef]] = {}
        for (ref_i, ref_j), value in sims.items():
            if value >= self.alpha * max_sim[ref_i]:
                candidates.setdefault(ref_i, set()).add(ref_j)
            if value >= self.alpha * max_sim[ref_j]:
                candidates.setdefault(ref_j, set()).add(ref_i)

        # Pass 3 (lines 14-16): mutual candidates become edges.
        links = UnionFind(by_ref.keys())
        for ref_i, cands in candidates.items():
            for ref_j in cands:
                if ref_i in candidates.get(ref_j, ()):  # mutual
                    links.union(ref_i, ref_j)

        # Line 17: components with cardinality > 1 are the clusters.
        clusters = [c for c in links.components() if len(c) > 1]
        clustered = set().union(*clusters) if clusters else set()
        singletons = set(by_ref) - clustered
        return AttributePartitioning(
            clusters=sorted(clusters, key=lambda c: sorted(c)),
            glue=singletons if self.glue_cluster else None,
        )

    @staticmethod
    def _pairs_to_score(
        by_ref: dict[AttributeRef, AttributeProfile],
        clean_clean: bool,
        candidate_pairs: Iterable[tuple[AttributeRef, AttributeRef]] | None,
    ) -> list[tuple[AttributeRef, AttributeRef]]:
        if candidate_pairs is not None:
            deduped = {
                (min(a, b), max(a, b))
                for a, b in candidate_pairs
                if a != b and a in by_ref and b in by_ref
            }
            return sorted(deduped)
        refs = sorted(by_ref)
        if clean_clean:
            left = [r for r in refs if r[0] == 0]
            right = [r for r in refs if r[0] == 1]
            return [(a, b) for a in left for b in right]
        return [(refs[i], refs[j]) for i in range(len(refs)) for j in range(i + 1, len(refs))]
