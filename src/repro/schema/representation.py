"""Weighted attribute representation models (Section 2.1).

The paper's attribute representation slot admits weighting functions other
than binary presence — notably TF-IDF, paired with cosine similarity
(Jaccard is incompatible with TF-IDF weights, as Section 2.1 notes).  This
module provides that alternative representation for attribute-match
induction.

Usage::

    model = TfIdfAttributeModel(collection1, collection2)
    partitioning = tfidf_attribute_match_induction(model, method="lmi")
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Set

from repro.data.collection import EntityCollection
from repro.schema.attribute_profile import AttributeProfile
from repro.schema.partition import AttributePartitioning, AttributeRef

#: Separator used to smuggle an attribute ref through a token set (it can
#: never appear in a real token, which are normalize()d words).
_MARKER_SEP = "\x00"


class TfIdfAttributeModel:
    """Sparse TF-IDF vectors for every attribute of one or two collections.

    Each attribute is a "document" whose terms are the tokens of its
    values (with multiplicity); IDF is computed over the attribute corpus
    of both sources together, so shared rare tokens bind attributes across
    sources exactly as in the binary model.
    """

    def __init__(
        self,
        collection1: EntityCollection,
        collection2: EntityCollection | None = None,
        min_token_length: int = 2,
    ) -> None:
        from repro.utils.tokenize import tokenize

        corpora: dict[AttributeRef, Counter[str]] = {}
        for source, collection in self._sources(collection1, collection2):
            for name in collection.attribute_names:
                corpora[(source, name)] = Counter()
            for profile in collection:
                for name, value in profile.iter_pairs():
                    corpora[(source, name)].update(tokenize(value, min_token_length))

        num_documents = len(corpora)
        document_frequency: Counter[str] = Counter()
        for counter in corpora.values():
            document_frequency.update(set(counter))

        self._vectors: dict[AttributeRef, dict[str, float]] = {}
        self._norms: dict[AttributeRef, float] = {}
        for ref, counter in corpora.items():
            total = sum(counter.values())
            vector: dict[str, float] = {}
            for token, count in counter.items():
                tf = count / total
                idf = (
                    math.log((1 + num_documents) / (1 + document_frequency[token]))
                    + 1.0
                )
                vector[token] = tf * idf
            self._vectors[ref] = vector
            self._norms[ref] = math.sqrt(sum(w * w for w in vector.values()))

    @staticmethod
    def _sources(
        collection1: EntityCollection, collection2: EntityCollection | None
    ) -> Iterable[tuple[int, EntityCollection]]:
        yield 0, collection1
        if collection2 is not None:
            yield 1, collection2

    @property
    def refs(self) -> list[AttributeRef]:
        """All attribute refs covered by the model, sorted."""
        return sorted(self._vectors)

    def vector(self, ref: AttributeRef) -> dict[str, float]:
        """The sparse TF-IDF vector of attribute *ref*."""
        return self._vectors[ref]

    def cosine(self, ref_a: AttributeRef, ref_b: AttributeRef) -> float:
        """Cosine similarity of two attributes' TF-IDF vectors."""
        va, vb = self._vectors.get(ref_a), self._vectors.get(ref_b)
        if not va or not vb:
            return 0.0
        if len(vb) < len(va):
            va, vb = vb, va
        dot = sum(weight * vb.get(token, 0.0) for token, weight in va.items())
        if dot == 0.0:
            return 0.0
        norm_a, norm_b = self._norms[ref_a], self._norms[ref_b]
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)


def tfidf_attribute_match_induction(
    model: TfIdfAttributeModel,
    method: str = "lmi",
    alpha: float = 0.9,
    glue_cluster: bool = True,
    candidate_pairs=None,
) -> AttributePartitioning:
    """Attribute-match induction over the TF-IDF/cosine representation.

    Reuses the LMI / Attribute Clustering machinery with the similarity
    slot swapped: each attribute profile carries a single marker token
    encoding its ref, and the similarity function resolves the pair
    against *model* — so candidate generation, mutuality, and connected
    components behave exactly as in the binary-presence variants.
    """
    if method not in ("lmi", "ac"):
        raise ValueError(f"method must be 'lmi' or 'ac', got {method!r}")

    def similarity(a: Set[str], b: Set[str]) -> float:
        return model.cosine(_decode(next(iter(a))), _decode(next(iter(b))))

    if method == "lmi":
        from repro.schema.lmi import LooseAttributeMatchInduction

        induction = LooseAttributeMatchInduction(
            alpha=alpha, similarity=similarity, glue_cluster=glue_cluster
        )
    else:
        from repro.schema.attribute_clustering import AttributeClustering

        induction = AttributeClustering(
            similarity=similarity, glue_cluster=glue_cluster
        )

    profiles1 = [
        AttributeProfile(s, n, frozenset({f"{s}{_MARKER_SEP}{n}"}))
        for s, n in model.refs
        if s == 0
    ]
    profiles2 = [
        AttributeProfile(s, n, frozenset({f"{s}{_MARKER_SEP}{n}"}))
        for s, n in model.refs
        if s == 1
    ] or None
    return induction.induce(profiles1, profiles2, candidate_pairs)


def _decode(marker: str) -> AttributeRef:
    source, _, name = marker.partition(_MARKER_SEP)
    return (int(source), name)
