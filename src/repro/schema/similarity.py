"""Set similarity measures for attribute profiles (Section 2.1).

All three measures operate on binary-presence profiles, i.e. plain token
sets.  LMI uses Jaccard (required for compatibility with MinHash-based LSH);
Dice and cosine are provided for the pluggable similarity slot of the
attribute-match induction framework.
"""

from __future__ import annotations

import math
from collections.abc import Set


def jaccard(a: Set[str], b: Set[str]) -> float:
    """|a intersect b| / |a union b|; 0.0 when both sets are empty."""
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def dice(a: Set[str], b: Set[str]) -> float:
    """2 |a intersect b| / (|a| + |b|); 0.0 when both sets are empty."""
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def cosine(a: Set[str], b: Set[str]) -> float:
    """|a intersect b| / sqrt(|a| |b|) — cosine over binary vectors."""
    if not a or not b:
        return 0.0
    return len(a & b) / math.sqrt(len(a) * len(b))
