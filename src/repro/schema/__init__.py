"""Loose schema information extraction (the paper's Phase 1)."""

from repro.schema.attribute_clustering import AttributeClustering
from repro.schema.attribute_profile import AttributeProfile, build_attribute_profiles
from repro.schema.entropy import (
    aggregate_entropies,
    attribute_entropies,
    shannon_entropy,
)
from repro.schema.lmi import LooseAttributeMatchInduction
from repro.schema.partition import GLUE_CLUSTER_ID, AttributePartitioning
from repro.schema.representation import (
    TfIdfAttributeModel,
    tfidf_attribute_match_induction,
)
from repro.schema.similarity import cosine, dice, jaccard

__all__ = [
    "TfIdfAttributeModel",
    "tfidf_attribute_match_induction",
    "AttributeProfile",
    "build_attribute_profiles",
    "LooseAttributeMatchInduction",
    "AttributeClustering",
    "AttributePartitioning",
    "GLUE_CLUSTER_ID",
    "shannon_entropy",
    "attribute_entropies",
    "aggregate_entropies",
    "jaccard",
    "dice",
    "cosine",
]
