"""Attribute profiles: the representation model of Section 2.1.

Each attribute ``a`` is represented by the set of terms its values produce
under the value transformation function tau (tokenization, for LMI) with
binary term presence — i.e. simply the *set* of tokens.  This is the vector
``T_a`` of the paper restricted to its non-zero coordinates, which is the
natural sparse encoding for Jaccard/Dice/cosine-over-binary similarity and
for MinHashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.data.collection import EntityCollection
from repro.schema.partition import AttributeRef
from repro.utils.tokenize import tokenize

if TYPE_CHECKING:  # pragma: no cover
    from repro.data.corpus import InternedCorpus


@dataclass(frozen=True, slots=True)
class AttributeProfile:
    """The token-set profile of one attribute of one source."""

    source: int
    name: str
    tokens: frozenset[str]

    @property
    def ref(self) -> AttributeRef:
        """The ``(source, name)`` reference used by partitionings."""
        return (self.source, self.name)

    def __len__(self) -> int:
        return len(self.tokens)


def build_attribute_profiles(
    collection: EntityCollection,
    source: int,
    min_token_length: int = 2,
    corpus: "InternedCorpus | None" = None,
) -> list[AttributeProfile]:
    """Profile every attribute of *collection*.

    Attributes whose values produce no tokens at all (e.g. only punctuation)
    are still emitted, with an empty token set: they must reach the glue
    cluster rather than silently vanish from the partitioning.

    With a *corpus*, the token sets are gathered from the interned
    ``(attribute, token)`` id pairs of the shared tokenization pass and
    materialized to strings once per distinct pair.
    """
    token_sets: dict[str, set[str]] = {name: set() for name in collection.attribute_names}
    if corpus is not None:
        attrs, toks, _ = corpus.attribute_term_counts(source, min_token_length)
        token_of = corpus.dictionary.token_of
        attributes = corpus.attributes
        for aid, tid in zip(attrs.tolist(), toks.tolist()):
            name = attributes[aid][1]
            bucket = token_sets.get(name)
            if bucket is not None:
                bucket.add(token_of(tid))
    else:
        for profile in collection:
            for name, value in profile.iter_pairs():
                token_sets[name].update(tokenize(value, min_token_length))
    return [
        AttributeProfile(source, name, frozenset(tokens))
        for name, tokens in sorted(token_sets.items())
    ]
