"""Attributes partitioning: the output of attribute-match induction.

A partitioning assigns every attribute — identified as ``(source, name)``
because the two collections of a clean-clean task have independent attribute
namespaces — to exactly one non-overlapping cluster.  Cluster id 0 is
reserved for the *glue cluster* that gathers attributes no induction edge
reached [Papadakis et al., TKDE 2013]; real clusters are numbered from 1.

After entropy extraction the partitioning also carries the aggregate entropy
of each cluster, which the meta-blocking phase reads through
:meth:`AttributePartitioning.entropy_of`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

#: Reserved id of the glue cluster.
GLUE_CLUSTER_ID = 0

AttributeRef = tuple[int, str]  # (source index, attribute name)


class AttributePartitioning:
    """Non-overlapping clusters over the attribute name space.

    Parameters
    ----------
    clusters:
        The induced clusters (each a set of ``(source, name)`` refs), in any
        order; they receive ids 1, 2, ... in the given order.
    glue:
        Attributes assigned to the glue cluster, or ``None`` to disable the
        glue cluster entirely (attributes outside every cluster then have no
        cluster, and schema-aware blocking drops their tokens — the Figure 10
        configuration).
    entropies:
        Optional aggregate entropy per cluster id.
    """

    def __init__(
        self,
        clusters: Iterable[Iterable[AttributeRef]],
        glue: Iterable[AttributeRef] | None = None,
        entropies: Mapping[int, float] | None = None,
    ) -> None:
        self._clusters: dict[int, frozenset[AttributeRef]] = {}
        self._assignment: dict[AttributeRef, int] = {}
        for cluster_id, members in enumerate(clusters, start=1):
            members = frozenset((int(s), str(a)) for s, a in members)
            if not members:
                raise ValueError("empty cluster in partitioning")
            for ref in members:
                if ref in self._assignment:
                    raise ValueError(f"attribute {ref!r} assigned to two clusters")
            self._clusters[cluster_id] = members
            for ref in members:
                self._assignment[ref] = cluster_id

        self.has_glue = glue is not None
        if glue is not None:
            members = frozenset((int(s), str(a)) for s, a in glue)
            overlap = members & set(self._assignment)
            if overlap:
                raise ValueError(f"glue overlaps clusters: {sorted(overlap)!r}")
            self._clusters[GLUE_CLUSTER_ID] = members
            for ref in members:
                self._assignment[ref] = GLUE_CLUSTER_ID

        self._entropies: dict[int, float] = dict(entropies or {})

    @property
    def cluster_ids(self) -> list[int]:
        """All cluster ids, glue (if present) first."""
        return sorted(self._clusters)

    @property
    def num_clusters(self) -> int:
        """Number of clusters, the glue cluster included when present."""
        return len(self._clusters)

    def members(self, cluster_id: int) -> frozenset[AttributeRef]:
        """The attributes of cluster *cluster_id*."""
        return self._clusters[cluster_id]

    def cluster_of(self, source: int, attribute: str) -> int | None:
        """Cluster id of ``(source, attribute)``.

        Unknown attributes fall into the glue cluster when it exists, and to
        ``None`` (meaning: drop this attribute's blocking keys) otherwise.
        """
        assigned = self._assignment.get((source, attribute))
        if assigned is not None:
            return assigned
        return GLUE_CLUSTER_ID if self.has_glue else None

    def entropy_of(self, cluster_id: int) -> float:
        """Aggregate entropy of cluster *cluster_id* (1.0 if never set).

        The neutral default keeps entropy-free configurations (the ``chi``
        ablation of Figure 8) running through the same code path.
        """
        return self._entropies.get(cluster_id, 1.0)

    def with_entropies(self, entropies: Mapping[int, float]) -> "AttributePartitioning":
        """A copy of this partitioning carrying *entropies*."""
        clusters = [
            self._clusters[cid] for cid in sorted(self._clusters) if cid != GLUE_CLUSTER_ID
        ]
        glue = self._clusters.get(GLUE_CLUSTER_ID) if self.has_glue else None
        return AttributePartitioning(clusters, glue, entropies)

    def to_dict(self) -> dict:
        """A JSON-serializable form (streaming snapshots persist this).

        Cluster ids are preserved exactly: real clusters are listed in id
        order, so :meth:`from_dict` reassigns the same ids — disambiguated
        blocking keys (``token#cluster``) stay valid across a round trip.
        """
        return {
            "clusters": [
                sorted([s, a] for s, a in self._clusters[cid])
                for cid in sorted(self._clusters)
                if cid != GLUE_CLUSTER_ID
            ],
            "glue": (
                sorted([s, a] for s, a in self._clusters[GLUE_CLUSTER_ID])
                if self.has_glue
                else None
            ),
            "entropies": {str(cid): value for cid, value in self._entropies.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AttributePartitioning":
        """Inverse of :meth:`to_dict`."""
        glue = payload.get("glue")
        return cls(
            clusters=[
                [(int(s), str(a)) for s, a in members]
                for members in payload["clusters"]
            ],
            glue=(
                [(int(s), str(a)) for s, a in glue] if glue is not None else None
            ),
            entropies={
                int(cid): float(value)
                for cid, value in (payload.get("entropies") or {}).items()
            },
        )

    def __repr__(self) -> str:
        real = self.num_clusters - (1 if self.has_glue else 0)
        return (
            f"AttributePartitioning(clusters={real}, glue={self.has_glue}, "
            f"attributes={len(self._assignment)})"
        )


def single_glue_partitioning(
    attributes: Iterable[AttributeRef],
) -> AttributePartitioning:
    """The degenerate partitioning: every attribute in the glue cluster.

    With this partitioning, loosely schema-aware Token Blocking degenerates
    to plain Token Blocking — the worst case discussed in Section 4.4.
    """
    return AttributePartitioning(clusters=[], glue=attributes)
