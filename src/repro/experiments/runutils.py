"""Shared run-time utilities of the benchmark surface.

The standalone bench scripts (``bench_scaling.py``, ``bench_streaming.py``,
``bench_serving.py``) and the declarative experiment engine all need the
same four things: wall/CPU/RSS process probes, latency percentiles, the
profiles->scale arithmetic of the synthetic generators, and one canonical
JSON envelope.  They used to carry private copies of each; this module is
the single implementation they now share.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

__all__ = [
    "BASE_PROFILES",
    "json_envelope",
    "pairs_digest",
    "peak_rss_mb",
    "percentiles_ms",
    "process_cpu_seconds",
    "scale_for_profiles",
    "time_best_of",
    "write_json_report",
]

#: Profiles generated per unit ``scale`` by the built-in synthetic
#: datasets (clean-clean: size1 + size2 of Table 2's laptop-friendly
#: defaults; dirty: the Table 7 cluster totals).  The inverse of the
#: generators' ``_scaled`` arithmetic, used to translate a requested
#: profile count into a generator scale.
BASE_PROFILES: Mapping[str, int] = {
    "ar1": 650 + 580,
    "ar2": 400 + 4_800,
    "prd": 300 + 290,
    "mov": 1_400 + 1_150,
    "dbp": 1_500 + 2_500,
    "census": 1_000,
    "cora": 1_001,
    "cddb": 2_500,
}


def scale_for_profiles(name: str, profiles: int) -> float:
    """The generator ``scale`` producing roughly *profiles* for *name*.

    Exact for the clean-clean generators (their sizes scale linearly);
    approximate for the dirty ones (cluster counts quantize).
    """
    try:
        base = BASE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"no base profile count recorded for dataset {name!r}; "
            f"known: {', '.join(sorted(BASE_PROFILES))}"
        ) from None
    if profiles < 1:
        raise ValueError(f"profiles must be positive, got {profiles}")
    return profiles / base


def peak_rss_mb() -> float:
    """This process's peak resident set in MiB (0.0 where unsupported).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are the
    process-lifetime high-water mark, which is why bounded-memory claims
    are measured in fresh subprocess probes — a parent's own peak would
    mask the measurement.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return usage / (1024 * 1024)
    return usage / 1024


def process_cpu_seconds() -> float:
    """User + system CPU seconds of this process (0.0 where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def percentiles_ms(samples: Sequence[float]) -> dict[str, float]:
    """p50/p95/p99/max of *samples* (already in ms), rounded for reports.

    The shape every latency section of the BENCH artifacts uses; an empty
    sample set reports zeros rather than NaNs so JSON consumers never see
    non-finite values.
    """
    if len(samples) == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    import numpy as np

    array = np.asarray(samples, dtype=np.float64)
    return {
        "p50": round(float(np.percentile(array, 50)), 4),
        "p95": round(float(np.percentile(array, 95)), 4),
        "p99": round(float(np.percentile(array, 99)), 4),
        "max": round(float(array.max()), 4),
    }


def time_best_of(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-*repeats* wall-clock seconds of ``fn()`` + its last result."""
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def pairs_digest(pairs: Iterable[tuple[int, int]]) -> str:
    """Order-independent SHA-256 digest of a retained pair set.

    The cross-backend equivalence probe: two runs retained the identical
    comparison set iff their digests match.
    """
    digest = hashlib.sha256()
    for left, right in sorted(pairs):
        digest.update(f"{left},{right};".encode())
    return digest.hexdigest()


def json_envelope(
    benchmark: str, workload: str, *, smoke: bool = False, **fields: Any
) -> dict[str, Any]:
    """The canonical header every BENCH artifact starts with.

    Keeps the standalone scripts' report shapes aligned: ``benchmark``
    (machine-readable identifier), ``workload`` (human-readable input
    description) and ``smoke`` always lead, in that order.
    """
    envelope: dict[str, Any] = {
        "benchmark": benchmark,
        "workload": workload,
        "smoke": bool(smoke),
    }
    envelope.update(fields)
    return envelope


def write_json_report(path: Path | str, report: Mapping[str, Any]) -> Path:
    """Write *report* as indented JSON with a trailing newline."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path
