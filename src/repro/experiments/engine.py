"""The experiment engine: execute a config's grid, compare, report.

:func:`run_experiment` is the programmatic entry point; the same module
carries the ``repro bench`` CLI glue (:func:`configure_parser` /
:func:`execute`) in the style of :mod:`repro.analysis.cli`.

Engine reports are schema-versioned dicts (see
:data:`repro.experiments.reporters.EXPERIMENT_SCHEMA_VERSION`)::

    {schema_version, benchmark: "experiment_engine", name, description,
     seed, repeats, smoke_profiles, datasets: [...], cells: [...],
     equivalence: {groups, all_equivalent}, comparison: {...} | None}

The comparator section combines the config's explicit
``[[compare.metrics]]`` specs (path-addressed, reaching into the legacy
``BENCH_*.json`` shapes) with auto-generated per-cell quality gates when
``compare.cells`` is set and the baseline is itself an engine report.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.experiments.comparator import (
    Comparison,
    MetricSpec,
    Tolerance,
    compare_reports,
)
from repro.experiments.config import CompareSpec, ExperimentConfig, load_config
from repro.experiments.reporters import (
    EXPERIMENT_SCHEMA_VERSION,
    REPORTERS,
)
from repro.experiments.runner import (
    DatasetCache,
    expand_grid,
    run_cell,
    run_cell_subprocess,
)

__all__ = [
    "cell_metric_specs",
    "configure_parser",
    "execute",
    "resolve_baseline",
    "run_experiment",
]


def resolve_baseline(
    spec: CompareSpec, config_path: Path | None
) -> tuple[Path, dict[str, Any]]:
    """Locate and load the baseline document a compare section names.

    Relative baseline paths resolve against the config file's directory
    (so committed configs can say ``../../BENCH_metablocking.json``), or
    the working directory when the config did not come from a file.
    """
    baseline_path = Path(spec.baseline)
    if not baseline_path.is_absolute():
        root = config_path.parent if config_path is not None else Path(".")
        baseline_path = root / baseline_path
    if not baseline_path.exists():
        raise ValueError(f"baseline {baseline_path} does not exist")
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    if not isinstance(document, Mapping):
        raise ValueError(f"baseline {baseline_path} is not a JSON object")
    return baseline_path, dict(document)


#: The per-cell quality gates ``compare.cells`` generates, as
#: (metric suffix, quality field, direction) rows.  PC/PQ/F1 may only
#: fall by the allowance; the comparison count may only grow by it; the
#: retained block count must match within it.
_CELL_GATES: tuple[tuple[str, str, str], ...] = (
    ("pc", "pair_completeness", "higher"),
    ("pq", "pair_quality", "higher"),
    ("f1", "f1", "higher"),
    ("comparisons", "comparisons", "lower"),
    ("blocks", "num_blocks", "match"),
)


def cell_metric_specs(
    current: Mapping[str, Any], tolerance: Tolerance
) -> list[MetricSpec]:
    """Quality-drift specs for every cell of *current* (an engine report).

    Specs are generated from the current report's cells; a cell the
    baseline has not recorded yet resolves to a ``new`` verdict, which
    is informational and never fails.
    """
    specs: list[MetricSpec] = []
    for cell in current.get("cells", []):
        cell_id = cell.get("id")
        if not cell_id:
            continue
        base = f"cells[id={cell_id}].quality"
        for suffix, field, direction in _CELL_GATES:
            specs.append(MetricSpec(
                name=f"{cell_id}:{suffix}",
                baseline_path=f"{base}.{field}",
                direction=direction,
                tolerance=tolerance,
            ))
    return specs


def _comparison_for(
    report: Mapping[str, Any],
    spec: CompareSpec,
    config_path: Path | None,
) -> Comparison:
    baseline_path, baseline = resolve_baseline(spec, config_path)
    specs = list(spec.metrics)
    if spec.cells:
        specs.extend(cell_metric_specs(report, spec.tolerance))
    return compare_reports(
        report, baseline, specs, baseline_source=str(baseline_path)
    )


def _equivalence(cells: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Cross-backend equivalence: group cells by (dataset, pipeline).

    Every group that ran under more than one backend/worker setting must
    retain the identical pair set — the engine-level form of the
    bit-identical-backends invariant the unit suites assert.
    """
    by_group: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for cell in cells:
        by_group.setdefault((cell["dataset"], cell["pipeline"]), []).append(cell)
    groups = []
    for (dataset, pipeline), members in by_group.items():
        if len(members) < 2:
            continue
        digests = {member["pairs_digest"] for member in members}
        groups.append({
            "dataset": dataset,
            "pipeline": pipeline,
            "cells": [member["id"] for member in members],
            "equivalent": len(digests) == 1,
        })
    return {
        "groups": groups,
        "all_equivalent": all(group["equivalent"] for group in groups),
    }


def run_experiment(
    config: ExperimentConfig,
    *,
    config_path: Path | None = None,
    smoke_profiles: int | None = None,
    repeats: int | None = None,
    compare: bool = True,
) -> tuple[dict[str, Any], Comparison | None]:
    """Execute *config*'s grid; return (report, comparison or ``None``).

    ``smoke_profiles`` caps every dataset at roughly that many profiles
    (the bit-rot smoke mode); ``repeats`` overrides the config's repeat
    policy; ``compare=False`` skips the comparator even when the config
    has a compare section (smoke runs gate nothing — tiny-scale numbers
    are not comparable to committed full-scale history).
    """
    effective_repeats = repeats if repeats is not None else config.repeats
    cells = expand_grid(config)
    cache = DatasetCache()
    use_subprocess = config.monitor.subprocess and config_path is not None
    cell_rows: list[dict[str, Any]] = []
    for cell in cells:
        if use_subprocess:
            assert config_path is not None
            row = run_cell_subprocess(
                cell.id, config_path,
                repeats=effective_repeats, smoke_profiles=smoke_profiles,
            )
        else:
            row = run_cell(
                cell, seed=config.seed, repeats=effective_repeats,
                smoke_profiles=smoke_profiles, cache=cache,
            )
        cell_rows.append(row)

    profiles_by_label = {row["dataset"]: row["profiles"] for row in cell_rows}
    datasets = [
        {
            "label": spec.display_label,
            "name": spec.name,
            "kind": spec.kind,
            "scale": spec.effective_scale(smoke_profiles),
            "profiles": profiles_by_label.get(spec.display_label),
        }
        for spec in config.datasets
    ]
    report: dict[str, Any] = {
        "schema_version": EXPERIMENT_SCHEMA_VERSION,
        "benchmark": "experiment_engine",
        "name": config.name,
        "description": config.description,
        "seed": config.seed,
        "repeats": effective_repeats,
        "smoke_profiles": smoke_profiles,
        "datasets": datasets,
        "cells": cell_rows,
        "equivalence": _equivalence(cell_rows),
        "comparison": None,
    }

    comparison: Comparison | None = None
    if compare and config.compare is not None:
        comparison = _comparison_for(report, config.compare, config_path)
        report["comparison"] = comparison.to_dict()
    return report, comparison


# --------------------------------------------------------------------------
# CLI glue (`repro bench`)
# --------------------------------------------------------------------------

def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "config", type=Path,
        help="experiment config file (.toml or .json); see "
             "examples/experiment_config.toml",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON engine report here",
    )
    parser.add_argument(
        "--markdown", type=Path, default=None,
        help="write the markdown summary here",
    )
    parser.add_argument(
        "--smoke-profiles", type=int, default=None,
        help="cap every dataset at roughly N profiles (smoke mode; "
             "implies --no-compare unless --compare is forced)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="override the config's repeat policy",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--no-compare", action="store_true",
        help="skip the regression comparator",
    )
    group.add_argument(
        "--compare", action="store_true", dest="force_compare",
        help="run the comparator even in smoke mode",
    )
    parser.add_argument(
        "--compare-only", type=Path, default=None, metavar="REPORT.json",
        help="skip execution: compare an existing engine report against "
             "the config's baseline and exit 0/1",
    )
    parser.add_argument(
        "--cell-probe", default=None, metavar="CELL_ID",
        help=argparse.SUPPRESS,  # internal: fresh-interpreter RSS probe
    )


def _execute_probe(config: ExperimentConfig, args: argparse.Namespace) -> int:
    wanted = {cell.id: cell for cell in expand_grid(config)}
    if args.cell_probe not in wanted:
        print(
            f"error: no cell {args.cell_probe!r} in this config; "
            f"cells: {', '.join(wanted)}",
            file=sys.stderr,
        )
        return 1
    row = run_cell(
        wanted[args.cell_probe],
        seed=config.seed,
        repeats=args.repeats if args.repeats is not None else config.repeats,
        smoke_profiles=args.smoke_profiles,
    )
    print(json.dumps(row))
    return 0


def execute(args: argparse.Namespace) -> int:
    """Run the ``repro bench`` subcommand; returns the exit code."""
    config = load_config(args.config)

    if args.cell_probe is not None:
        return _execute_probe(config, args)

    if args.compare_only is not None:
        if config.compare is None:
            print(
                f"error: {args.config} has no [compare] section",
                file=sys.stderr,
            )
            return 1
        report = json.loads(args.compare_only.read_text(encoding="utf-8"))
        comparison = _comparison_for(report, config.compare, args.config)
        print(comparison.summary())
        return 0 if comparison.ok else 1

    # Smoke runs gate nothing by default: tiny-scale numbers are not
    # comparable against committed full-scale history.
    compare = not args.no_compare and (
        args.smoke_profiles is None or args.force_compare
    )
    report, comparison = run_experiment(
        config,
        config_path=args.config,
        smoke_profiles=args.smoke_profiles,
        repeats=args.repeats,
        compare=compare,
    )

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            REPORTERS.get("json")(report), encoding="utf-8"
        )
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(
            REPORTERS.get("markdown")(report), encoding="utf-8"
        )

    equivalence = report["equivalence"]
    print(
        f"experiment {config.name!r}: {len(report['cells'])} cells"
        + (f" (smoke <= {args.smoke_profiles} profiles)"
           if args.smoke_profiles is not None else "")
        + (f", report {args.output}" if args.output is not None else "")
    )
    exit_code = 0
    if equivalence["groups"] and not equivalence["all_equivalent"]:
        mismatched = [
            group for group in equivalence["groups"]
            if not group["equivalent"]
        ]
        for group in mismatched:
            print(
                f"error: backend mismatch on {group['dataset']}/"
                f"{group['pipeline']}: {', '.join(group['cells'])} retained "
                "different pair sets",
                file=sys.stderr,
            )
        exit_code = 1
    if comparison is not None:
        print(comparison.summary())
        if not comparison.ok:
            exit_code = 1
    return exit_code
