"""Pluggable experiment reporters behind a ``REPORTERS`` registry.

A reporter is a callable ``(report: Mapping) -> str`` rendering one
engine report (the dict :func:`repro.experiments.engine.run_experiment`
returns).  Built-ins:

* ``json`` — the schema-versioned machine artifact (indent-2, trailing
  newline, byte-stable for goldens after :func:`scrub_nondeterministic`).
* ``markdown`` — a human summary: dataset table, per-cell grid table,
  and the comparator's verdict table.

Third parties register via :func:`register_reporter`; config files name
reporters by registry key, so an unknown name fails at config load.
"""

from __future__ import annotations

import copy
import json
from collections.abc import Callable, Mapping
from typing import Any

from repro.core.registry import Registry

__all__ = [
    "EXPERIMENT_SCHEMA_VERSION",
    "REPORTERS",
    "register_reporter",
    "render_json",
    "render_markdown",
    "scrub_nondeterministic",
]

#: Schema version stamped into every engine report; bump on any change to
#: the top-level key set or the per-cell shape (the schema pin test and
#: the golden files must move in the same commit).
EXPERIMENT_SCHEMA_VERSION = 1

Reporter = Callable[[Mapping[str, Any]], str]

REPORTERS: Registry[Reporter] = Registry("reporter")


def register_reporter(name: str) -> Callable[[Reporter], Reporter]:
    """Class/function decorator registering a reporter under *name*."""
    return REPORTERS.register(name)


#: Keys whose values are machine-dependent timings/footprints.  Scrubbed
#: (zeroed) for golden-file comparisons; everything else in a report is
#: deterministic under a fixed seed.
_NONDETERMINISTIC_KEYS = frozenset({
    "seconds",
    "wall_seconds",
    "wall_seconds_mean",
    "cpu_seconds",
    "peak_rss_mb",
})


def scrub_nondeterministic(report: Mapping[str, Any]) -> dict[str, Any]:
    """A deep copy of *report* with every timing/RSS value zeroed.

    Structure is preserved — a golden diff still notices a vanished or
    added timing field, just not its machine-dependent magnitude.
    """

    def scrub(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {
                key: 0.0 if key in _NONDETERMINISTIC_KEYS else scrub(item)
                for key, item in value.items()
            }
        if isinstance(value, (list, tuple)):
            return [scrub(item) for item in value]
        return value

    return scrub(copy.deepcopy(dict(report)))


@register_reporter("json")
def render_json(report: Mapping[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=False) + "\n"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def _num(value: Any, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


@register_reporter("markdown")
def render_markdown(report: Mapping[str, Any]) -> str:
    lines: list[str] = [f"# Experiment: {report.get('name', '?')}", ""]
    description = report.get("description")
    if description:
        lines += [str(description), ""]
    lines += [
        f"- schema version: {report.get('schema_version')}",
        f"- seed: {report.get('seed')}  |  repeats: {report.get('repeats')}",
    ]
    if report.get("smoke_profiles") is not None:
        lines.append(
            f"- smoke mode: capped at {report['smoke_profiles']} profiles"
        )
    lines.append("")

    datasets = report.get("datasets", [])
    if datasets:
        lines += ["## Datasets", ""]
        lines += _table(
            ["label", "dataset", "kind", "profiles"],
            [
                [
                    str(d.get("label")),
                    str(d.get("name")),
                    str(d.get("kind")),
                    str(d.get("profiles")),
                ]
                for d in datasets
            ],
        )
        lines.append("")

    cells = report.get("cells", [])
    if cells:
        lines += ["## Cells", ""]
        lines += _table(
            ["cell", "PC", "PQ", "F1", "comparisons", "wall s", "peak MiB"],
            [
                [
                    str(cell.get("id")),
                    _num(cell.get("quality", {}).get("pair_completeness")),
                    _num(cell.get("quality", {}).get("pair_quality")),
                    _num(cell.get("quality", {}).get("f1")),
                    str(cell.get("quality", {}).get("comparisons")),
                    _num(cell.get("perf", {}).get("wall_seconds"), 3),
                    _num(cell.get("perf", {}).get("peak_rss_mb"), 1),
                ]
                for cell in cells
            ],
        )
        lines.append("")

    equivalence = report.get("equivalence")
    if equivalence and equivalence.get("groups"):
        verdict = (
            "all groups equivalent"
            if equivalence.get("all_equivalent")
            else "MISMATCH across backends"
        )
        lines += [
            "## Cross-backend equivalence",
            "",
            f"{len(equivalence['groups'])} (dataset, pipeline) groups: "
            f"{verdict}.",
            "",
        ]

    comparison = report.get("comparison")
    if comparison:
        verdict = "CLEAN" if comparison.get("ok") else (
            "REGRESSED: " + ", ".join(comparison.get("failed", []))
        )
        lines += [
            "## Comparison",
            "",
            f"Baseline: `{comparison.get('baseline')}` — **{verdict}**",
            "",
        ]
        lines += _table(
            ["metric", "status", "direction", "baseline", "current",
             "allowance"],
            [
                [
                    str(m.get("name")),
                    str(m.get("status")),
                    str(m.get("direction")),
                    _num(m.get("baseline")),
                    _num(m.get("current")),
                    _num(m.get("allowance")),
                ]
                for m in comparison.get("metrics", [])
            ],
        )
        lines.append("")

    return "\n".join(lines).rstrip("\n") + "\n"
