"""Declarative experiment engine (see DESIGN.md "Experiment engine").

A TOML/JSON config names a datasets x pipelines x backends x workers
grid; :func:`run_experiment` executes it with per-cell monitoring, a
cross-backend equivalence check, and a regression comparator against
committed benchmark history.  ``repro bench <config>`` is the CLI form.
"""

from repro.experiments.comparator import (
    Comparison,
    MetricSpec,
    MetricVerdict,
    PathError,
    Tolerance,
    compare_reports,
    resolve_path,
)
from repro.experiments.config import (
    CompareSpec,
    DatasetSpec,
    ExperimentConfig,
    MonitorSpec,
    PipelineSpec,
    load_config,
)
from repro.experiments.engine import run_experiment
from repro.experiments.reporters import (
    EXPERIMENT_SCHEMA_VERSION,
    REPORTERS,
    register_reporter,
    scrub_nondeterministic,
)
from repro.experiments.runner import Cell, expand_grid, run_cell

__all__ = [
    "Cell",
    "Comparison",
    "CompareSpec",
    "DatasetSpec",
    "EXPERIMENT_SCHEMA_VERSION",
    "ExperimentConfig",
    "MetricSpec",
    "MetricVerdict",
    "MonitorSpec",
    "PathError",
    "PipelineSpec",
    "REPORTERS",
    "Tolerance",
    "compare_reports",
    "expand_grid",
    "load_config",
    "register_reporter",
    "resolve_path",
    "run_cell",
    "run_experiment",
    "scrub_nondeterministic",
]
