"""Grid expansion and per-cell execution of the experiment engine.

A *cell* is one point of the ``datasets x pipelines x backends x
workers`` grid.  :func:`expand_grid` enumerates the cells an
:class:`~repro.experiments.config.ExperimentConfig` describes (worker
counts expand only for backends that take a ``workers`` knob);
:func:`run_cell` executes one cell and measures it — quality (PC/PQ/F1),
per-stage block/comparison counts, wall/CPU time, peak RSS and the
retained-pair digest that backs the cross-backend equivalence check.

``run_cell_subprocess`` reruns a cell in a fresh interpreter (via the
``repro bench --cell-probe`` hook) so its peak-RSS number is the cell's
own high-water mark rather than the engine process's lifetime maximum.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.registry import build_pipeline
from repro.experiments.runutils import (
    pairs_digest,
    peak_rss_mb,
    process_cpu_seconds,
)

if TYPE_CHECKING:
    from repro.data.dataset import ERDataset
    from repro.experiments.config import DatasetSpec, ExperimentConfig, PipelineSpec

__all__ = [
    "Cell",
    "DatasetCache",
    "expand_grid",
    "run_cell",
    "run_cell_subprocess",
]

#: Backends without a ``workers`` knob; grid worker counts do not expand
#: for them (mirrors ``core.config._SERIAL_BACKENDS``).
_SERIAL_BACKENDS = frozenset({"python", "vectorized"})


@dataclass(frozen=True)
class Cell:
    """One grid point: a dataset, a pipeline, and an execution backend."""

    dataset: "DatasetSpec"
    pipeline: "PipelineSpec"
    backend: str
    workers: int | None = None

    @property
    def id(self) -> str:
        """Stable identifier used in reports, metric paths and probes."""
        base = (
            f"{self.dataset.display_label}/{self.pipeline.label}/{self.backend}"
        )
        if self.workers is not None:
            return f"{base}/w{self.workers}"
        return base


def expand_grid(config: "ExperimentConfig") -> tuple[Cell, ...]:
    """Every cell of *config*'s grid, in deterministic config order.

    Worker counts multiply only the backends that accept them; a serial
    backend contributes exactly one cell per (dataset, pipeline) no
    matter how many worker counts the grid lists.
    """
    cells: list[Cell] = []
    seen: set[str] = set()
    for dataset in config.datasets:
        for pipeline in config.pipelines:
            for backend in config.backends:
                counts: tuple[int | None, ...]
                if backend in _SERIAL_BACKENDS:
                    counts = (None,)
                else:
                    counts = config.workers
                for workers in counts:
                    cell = Cell(dataset, pipeline, backend, workers)
                    if cell.id not in seen:
                        seen.add(cell.id)
                        cells.append(cell)
    return tuple(cells)


class DatasetCache:
    """Generate each (name, kind, scale, seed) workload at most once."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str, float, int], "ERDataset"] = {}

    def load(self, spec: "DatasetSpec", *, default_seed: int,
             smoke_profiles: int | None = None) -> "ERDataset":
        from repro.datasets import load_clean_clean, load_dirty

        seed = spec.seed if spec.seed is not None else default_seed
        scale = spec.effective_scale(smoke_profiles)
        key = (spec.name, spec.kind, scale, seed)
        if key not in self._cache:
            loader = load_clean_clean if spec.kind == "clean" else load_dirty
            self._cache[key] = loader(spec.name, scale=scale, seed=seed)
        return self._cache[key]


def run_cell(
    cell: Cell,
    *,
    seed: int,
    repeats: int = 1,
    smoke_profiles: int | None = None,
    cache: DatasetCache | None = None,
) -> dict[str, Any]:
    """Execute one cell and measure it; the engine's unit of work.

    The pipeline runs *repeats* times on the same generated dataset;
    ``perf.wall_seconds`` is the best run (the convention of the
    standalone bench scripts), ``wall_seconds_mean`` the average, and
    ``cpu_seconds`` the CPU delta of the best run.  Everything outside
    ``perf`` is deterministic under a fixed seed.
    """
    from repro.metrics.quality import evaluate_blocks

    cache = cache if cache is not None else DatasetCache()
    dataset = cache.load(cell.dataset, default_seed=seed,
                         smoke_profiles=smoke_profiles)
    blast_config = cell.pipeline.blast_config(cell.backend, cell.workers, seed)
    pipeline = build_pipeline(
        blast_config,
        blocker=cell.pipeline.blocker,
        weighting=cell.pipeline.weighting,
        pruning=cell.pipeline.pruning,
    )

    best_wall = float("inf")
    best_cpu = 0.0
    walls: list[float] = []
    result = None
    for _ in range(repeats):
        cpu_before = process_cpu_seconds()
        start = time.perf_counter()
        result = pipeline.run(dataset)
        wall = time.perf_counter() - start
        cpu = process_cpu_seconds() - cpu_before
        walls.append(wall)
        if wall < best_wall:
            best_wall, best_cpu = wall, cpu
    assert result is not None  # repeats >= 1 is validated at config load

    quality = evaluate_blocks(result.blocks, dataset)
    stages = {
        report.stage: {
            "seconds": report.seconds,
            "blocks_out": report.blocks_out,
            "comparisons_out": report.comparisons_out,
        }
        for report in result.stage_reports
    }
    return {
        "id": cell.id,
        "dataset": cell.dataset.display_label,
        "pipeline": cell.pipeline.label,
        "backend": cell.backend,
        "workers": cell.workers,
        "repeats": repeats,
        "profiles": dataset.num_profiles,
        "quality": {
            "pair_completeness": quality.pair_completeness,
            "pair_quality": quality.pair_quality,
            "f1": quality.f1,
            "detected_duplicates": quality.detected_duplicates,
            "total_duplicates": quality.total_duplicates,
            "comparisons": quality.comparisons,
            "num_blocks": quality.num_blocks,
        },
        "stages": stages,
        "perf": {
            "wall_seconds": best_wall,
            "wall_seconds_mean": statistics.fmean(walls),
            "cpu_seconds": best_cpu,
            "peak_rss_mb": peak_rss_mb(),
        },
        "pairs_digest": pairs_digest(result.blocks.iter_distinct_pairs()),
    }


def run_cell_subprocess(
    cell_id: str,
    config_path: Path,
    *,
    repeats: int,
    smoke_profiles: int | None = None,
) -> dict[str, Any]:
    """Rerun one cell in a fresh interpreter and return its measurement.

    Reinvokes ``repro bench <config> --cell-probe <id>`` so ``ru_maxrss``
    is the probe's own peak.  The probe prints exactly one JSON object on
    stdout.
    """
    import os

    import repro

    command = [
        sys.executable, "-m", "repro", "bench", str(config_path),
        "--cell-probe", cell_id, "--repeats", str(repeats),
    ]
    if smoke_profiles is not None:
        command += ["--smoke-profiles", str(smoke_profiles)]
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, check=False
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"cell probe {cell_id!r} failed (exit {completed.returncode}):\n"
            f"{completed.stderr.strip()}"
        )
    try:
        return json.loads(completed.stdout)
    except json.JSONDecodeError as exc:
        raise RuntimeError(
            f"cell probe {cell_id!r} printed invalid JSON: "
            f"{completed.stdout[:200]!r}"
        ) from exc
