"""The regression comparator: diff a benchmark report against history.

A :class:`MetricSpec` names one number in the current report and one in a
baseline document (committed ``BENCH_*.json`` history, or a previous
engine report), a direction, and a tolerance.  :func:`compare_reports`
resolves both sides and produces a :class:`Comparison` of per-metric
verdicts; any ``regression``/``missing``/``invalid`` verdict makes the
comparison fail (and ``repro bench`` exit non-zero).

Tolerance policy
----------------
The allowance of a metric is ``max(absolute, relative * |baseline|)`` —
the larger of the two bounds, so a config can say "within 5%, but never
quibble below 0.01".  Directions:

* ``higher`` — higher is better (PC, PQ, F1, speedups, qps).  Regression
  when the current value falls more than the allowance *below* the
  baseline; an equally large move up is an ``improved`` note.
* ``lower`` — lower is better (seconds, RSS, latency).  Mirror image.
* ``match`` — equivalence metrics (retained edges, block counts,
  profiles).  Any deviation beyond the allowance, either way, is a
  regression.

Missing/new handling: a metric absent from the *baseline* is ``new``
(history hasn't recorded it yet — informational, never a failure); a
required metric absent from the *current* report is ``missing`` (a
failure: the benchmark stopped measuring something it gates on); an
optional one is ``skipped``.

Paths
-----
Metric paths are dotted key sequences with two bracket selectors:
``[3]`` (list index) and ``[key=value]`` (first list element whose
``key`` stringifies to ``value``) — enough to address both the legacy
``BENCH_metablocking.json`` shape (``runs[scheme=chi_h].retained_edges``)
and engine reports (``cells[id=ar1/chi_h/vectorized].quality.f1``).
"""

from __future__ import annotations

import math
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Comparison",
    "MetricSpec",
    "MetricVerdict",
    "PathError",
    "Tolerance",
    "compare_reports",
    "resolve_path",
]

_SEGMENT = re.compile(r"^(?P<key>[^\[\]]*)(?P<selectors>(\[[^\[\]]+\])*)$")
_SELECTOR = re.compile(r"\[([^\[\]]+)\]")

#: Verdict statuses that fail a comparison.
_FAILING = frozenset({"regression", "missing", "invalid"})


class PathError(KeyError):
    """A metric path does not resolve inside a document."""


def resolve_path(document: Any, path: str) -> Any:
    """The value at *path* inside *document* (see module docstring).

    Raises :class:`PathError` when any step does not resolve.
    """
    if not path:
        raise PathError("empty metric path")
    value = document
    for segment in path.split("."):
        match = _SEGMENT.match(segment)
        if match is None:
            raise PathError(f"malformed path segment {segment!r} in {path!r}")
        key = match.group("key")
        if key:
            if not isinstance(value, Mapping) or key not in value:
                raise PathError(f"{path!r}: no key {key!r}")
            value = value[key]
        for selector in _SELECTOR.findall(match.group("selectors")):
            value = _select(value, selector, path)
    return value


def _select(value: Any, selector: str, path: str) -> Any:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise PathError(f"{path!r}: selector [{selector}] applied to a non-list")
    if "=" in selector:
        key, _, wanted = selector.partition("=")
        for item in value:
            if isinstance(item, Mapping) and str(item.get(key)) == wanted:
                return item
        raise PathError(f"{path!r}: no element with {key}={wanted}")
    try:
        return value[int(selector)]
    except (ValueError, IndexError):
        raise PathError(f"{path!r}: bad list index [{selector}]") from None


@dataclass(frozen=True)
class Tolerance:
    """The allowance formula: ``max(absolute, relative * |baseline|)``."""

    relative: float = 0.0
    absolute: float = 0.0

    def __post_init__(self) -> None:
        for name in ("relative", "absolute"):
            bound = getattr(self, name)
            if not isinstance(bound, (int, float)) or not math.isfinite(bound):
                raise ValueError(f"tolerance {name} must be finite, got {bound!r}")
            if bound < 0:
                raise ValueError(f"tolerance {name} must be >= 0, got {bound}")

    def allowance(self, baseline: float) -> float:
        return max(self.absolute, self.relative * abs(baseline))


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives on both sides, and how it may move."""

    name: str
    baseline_path: str
    current_path: str | None = None
    direction: str = "match"
    tolerance: Tolerance = field(default_factory=Tolerance)
    required: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("metric name must be non-empty")
        if not self.baseline_path:
            raise ValueError(f"metric {self.name!r}: baseline path is empty")
        if self.direction not in ("higher", "lower", "match"):
            raise ValueError(
                f"metric {self.name!r}: direction must be 'higher', 'lower' "
                f"or 'match', got {self.direction!r}"
            )

    @property
    def resolved_current_path(self) -> str:
        return self.current_path or self.baseline_path


@dataclass(frozen=True)
class MetricVerdict:
    """The outcome of one metric comparison."""

    name: str
    status: str
    direction: str
    baseline: float | None = None
    current: float | None = None
    delta: float | None = None
    allowance: float | None = None
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in _FAILING

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "direction": self.direction,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "allowance": self.allowance,
            "note": self.note,
        }


@dataclass(frozen=True)
class Comparison:
    """Every verdict of one report-vs-baseline comparison."""

    baseline_source: str
    verdicts: tuple[MetricVerdict, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.failed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_source,
            "ok": self.ok,
            "metrics": [v.to_dict() for v in self.verdicts],
            "failed": [v.name for v in self.failures],
        }

    def summary(self) -> str:
        """One human-readable line per verdict, worst first."""
        ordered = sorted(self.verdicts, key=lambda v: (not v.failed, v.name))
        lines = []
        for v in ordered:
            detail = v.note
            if v.baseline is not None and v.current is not None:
                detail = (
                    f"baseline {v.baseline:g} -> current {v.current:g} "
                    f"(allowance {v.allowance:g}, {v.direction})"
                )
            lines.append(f"  {v.status.upper():>10}  {v.name}: {detail}")
        verdict = "CLEAN" if self.ok else (
            f"REGRESSED ({', '.join(v.name for v in self.failures)})"
        )
        lines.append(
            f"comparison vs {self.baseline_source}: {verdict} "
            f"({len(self.verdicts)} metrics)"
        )
        return "\n".join(lines)


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def compare_metric(
    current: Mapping[str, Any], baseline: Mapping[str, Any], spec: MetricSpec
) -> MetricVerdict:
    """Resolve and judge one metric (the unit :func:`compare_reports` sums)."""
    try:
        baseline_raw = resolve_path(baseline, spec.baseline_path)
    except PathError as exc:
        return MetricVerdict(
            name=spec.name, status="new", direction=spec.direction,
            note=f"not in baseline ({exc.args[0]})",
        )
    try:
        current_raw = resolve_path(current, spec.resolved_current_path)
    except PathError as exc:
        status = "missing" if spec.required else "skipped"
        return MetricVerdict(
            name=spec.name, status=status, direction=spec.direction,
            baseline=_as_number(baseline_raw),
            note=f"not in current report ({exc.args[0]})",
        )

    baseline_value = _as_number(baseline_raw)
    current_value = _as_number(current_raw)
    if baseline_value is None or current_value is None:
        # Non-numeric on either side: require exact equality.
        equal = baseline_raw == current_raw
        return MetricVerdict(
            name=spec.name, status="ok" if equal else "regression",
            direction=spec.direction,
            note="" if equal else (
                f"non-numeric mismatch: baseline {baseline_raw!r} "
                f"vs current {current_raw!r}"
            ),
        )
    if math.isnan(baseline_value) or math.isnan(current_value):
        return MetricVerdict(
            name=spec.name, status="invalid", direction=spec.direction,
            baseline=baseline_value, current=current_value,
            note="NaN on one side of the comparison",
        )

    allowance = spec.tolerance.allowance(baseline_value)
    delta = current_value - baseline_value
    if spec.direction == "higher":
        status = (
            "regression" if delta < -allowance
            else "improved" if delta > allowance
            else "ok"
        )
    elif spec.direction == "lower":
        status = (
            "regression" if delta > allowance
            else "improved" if delta < -allowance
            else "ok"
        )
    else:  # match
        status = "regression" if abs(delta) > allowance else "ok"
    return MetricVerdict(
        name=spec.name, status=status, direction=spec.direction,
        baseline=baseline_value, current=current_value,
        delta=delta, allowance=allowance,
    )


def compare_reports(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    metrics: Sequence[MetricSpec],
    *,
    baseline_source: str = "baseline",
) -> Comparison:
    """Judge every metric of *metrics*; the comparator's entry point.

    Comparing any report against itself with any specs is always clean:
    every resolvable metric has delta 0 (within every allowance), and
    both-sides-missing resolves to ``new``, which never fails.
    """
    verdicts = tuple(compare_metric(current, baseline, spec) for spec in metrics)
    return Comparison(baseline_source=baseline_source, verdicts=verdicts)
