"""Declarative experiment configs: datasets x pipelines x backends x workers.

An :class:`ExperimentConfig` is to the experiment engine what
:class:`~repro.core.config.BlastConfig` is to one pipeline: a frozen,
eagerly validated dataclass.  Configs load from TOML or JSON files
(:func:`load_config`); every component name is resolved against the live
registries at load time, so a config that references a renamed blocker,
weighting, pruning, backend or reporter fails with a full listing before
any work runs — drifted configs die in tier-1, not mid-benchmark.

Unknown keys are rejected everywhere (a typoed ``tolerence`` must not
silently disable a gate).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.core.config import BlastConfig
from repro.experiments.comparator import MetricSpec, Tolerance

__all__ = [
    "CompareSpec",
    "DatasetSpec",
    "ExperimentConfig",
    "MonitorSpec",
    "PipelineSpec",
    "load_config",
]

#: Backends that take no ``workers`` knob (mirrors core.config).
_SERIAL_BACKENDS = frozenset({"python", "vectorized"})


def _require_keys(mapping: Mapping[str, Any], allowed: Sequence[str],
                  where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValueError(
            f"{where}: unknown key(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


@dataclass(frozen=True)
class DatasetSpec:
    """One workload of the grid: a built-in dataset at a chosen size.

    ``profiles`` translates to a generator scale through the recorded
    base sizes (see ``runutils.BASE_PROFILES``); ``scale`` sets it
    directly.  Setting both is rejected — two sources of truth for one
    size invite silent drift.
    """

    name: str
    kind: str = "clean"
    scale: float | None = None
    profiles: int | None = None
    label: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        from repro.datasets.benchmarks import CLEAN_CLEAN_DATASETS
        from repro.datasets.dirty import DIRTY_DATASETS

        if self.kind not in ("clean", "dirty"):
            raise ValueError(
                f"dataset {self.name!r}: kind must be 'clean' or 'dirty', "
                f"got {self.kind!r}"
            )
        known = CLEAN_CLEAN_DATASETS if self.kind == "clean" else DIRTY_DATASETS
        if self.name not in known:
            raise ValueError(
                f"unknown {self.kind} dataset {self.name!r}; "
                f"choose from {', '.join(sorted(known))}"
            )
        if self.scale is not None and self.profiles is not None:
            raise ValueError(
                f"dataset {self.name!r}: set scale or profiles, not both"
            )
        if self.scale is not None and not self.scale > 0:
            raise ValueError(
                f"dataset {self.name!r}: scale must be positive, got {self.scale}"
            )
        if self.profiles is not None and self.profiles < 1:
            raise ValueError(
                f"dataset {self.name!r}: profiles must be positive, "
                f"got {self.profiles}"
            )

    @property
    def display_label(self) -> str:
        return self.label or self.name

    def effective_scale(self, smoke_profiles: int | None = None) -> float:
        """The generator scale, after an optional smoke-size cap."""
        from repro.experiments.runutils import scale_for_profiles

        if self.profiles is not None:
            scale = scale_for_profiles(self.name, self.profiles)
        else:
            scale = self.scale if self.scale is not None else 1.0
        if smoke_profiles is not None:
            scale = min(scale, scale_for_profiles(self.name, smoke_profiles))
        return scale

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "DatasetSpec":
        _require_keys(data, [f.name for f in fields(cls)],
                      f"dataset {data.get('name', '?')!r}")
        return cls(**data)


@dataclass(frozen=True)
class PipelineSpec:
    """One pipeline of the grid, named by registry components.

    ``config`` holds :class:`BlastConfig` field overrides (validated via
    :meth:`BlastConfig.from_mapping`, so a typoed knob fails at load).
    """

    label: str
    blocker: str = "token"
    weighting: str = "chi_h"
    pruning: str = "blast"
    config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.core.registry import BLOCKERS, PRUNERS, WEIGHTINGS

        if not self.label:
            raise ValueError("pipeline label must be non-empty")
        for registry, value in (
            (BLOCKERS, self.blocker),
            (WEIGHTINGS, self.weighting),
            (PRUNERS, self.pruning),
        ):
            if value not in registry:
                raise ValueError(
                    f"pipeline {self.label!r}: unknown {registry.kind} "
                    f"{value!r}; registered: {', '.join(registry.names())}"
                )
        # Reject unknown/forbidden BlastConfig overrides eagerly; the
        # execution knobs come from the grid, not per-pipeline overrides.
        for knob in ("backend", "workers", "weighting"):
            if knob in self.config:
                raise ValueError(
                    f"pipeline {self.label!r}: set {knob!r} through the "
                    "grid (backends/workers/weighting fields), not the "
                    "config overrides"
                )
        BlastConfig.from_mapping({"weighting": self.weighting, **self.config})

    def blast_config(self, backend: str, workers: int | None,
                     seed: int) -> BlastConfig:
        """The per-cell :class:`BlastConfig` for one grid point."""
        overrides: dict[str, Any] = dict(self.config)
        overrides.setdefault("seed", seed)
        if workers is not None and backend not in _SERIAL_BACKENDS:
            overrides["workers"] = workers
        return BlastConfig.from_mapping(
            {"weighting": self.weighting, "backend": backend, **overrides}
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        _require_keys(data, [f.name for f in fields(cls)],
                      f"pipeline {data.get('label', '?')!r}")
        return cls(**data)


@dataclass(frozen=True)
class MonitorSpec:
    """Per-run process monitoring options.

    ``subprocess=True`` runs every cell in a fresh interpreter so peak
    RSS is the cell's own high-water mark (``ru_maxrss`` is a lifetime
    maximum); in-process monitoring (the default) reports wall and CPU
    time exactly but an RSS ceiling shared with earlier cells.
    """

    subprocess: bool = False

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "MonitorSpec":
        _require_keys(data, [f.name for f in fields(cls)], "monitor")
        return cls(**data)


def _tolerance_from(data: Mapping[str, Any], where: str) -> Tolerance:
    _require_keys(data, ["relative", "absolute"], where)
    return Tolerance(**data)


@dataclass(frozen=True)
class CompareSpec:
    """The comparator section: which history to diff against, and how.

    ``cells=True`` auto-generates quality/equivalence metric specs for
    every cell shared with an engine-report baseline (PC/PQ/F1 gated
    higher-is-better, comparisons lower-is-better, retained blocks
    match); ``metrics`` adds explicit path-addressed specs — the form
    that reaches into the legacy ``BENCH_*.json`` shapes.
    """

    baseline: str
    cells: bool = False
    tolerance: Tolerance = field(default_factory=Tolerance)
    metrics: tuple[MetricSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.baseline:
            raise ValueError("compare.baseline must be a file path")
        if not self.cells and not self.metrics:
            raise ValueError(
                "compare section gates nothing: set cells=true or add "
                "[[compare.metrics]] entries"
            )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "CompareSpec":
        _require_keys(data, ["baseline", "cells", "tolerance", "metrics"],
                      "compare")
        default_tolerance = _tolerance_from(
            data.get("tolerance", {}), "compare.tolerance"
        )
        metrics = []
        for entry in data.get("metrics", ()):
            where = f"compare.metrics[{entry.get('name', '?')!r}]"
            _require_keys(
                entry,
                ["name", "baseline", "current", "direction", "tolerance",
                 "required"],
                where,
            )
            tolerance = (
                _tolerance_from(entry["tolerance"], f"{where}.tolerance")
                if "tolerance" in entry
                else default_tolerance
            )
            metrics.append(MetricSpec(
                name=entry["name"],
                baseline_path=entry["baseline"],
                current_path=entry.get("current"),
                direction=entry.get("direction", "match"),
                tolerance=tolerance,
                required=entry.get("required", True),
            ))
        return cls(
            baseline=data["baseline"],
            cells=data.get("cells", False),
            tolerance=default_tolerance,
            metrics=tuple(metrics),
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative experiment: the full grid plus its gates."""

    name: str
    datasets: tuple[DatasetSpec, ...]
    pipelines: tuple[PipelineSpec, ...]
    description: str = ""
    seed: int = 42
    repeats: int = 1
    backends: tuple[str, ...] = ("vectorized",)
    workers: tuple[int | None, ...] = (None,)
    monitor: MonitorSpec = field(default_factory=MonitorSpec)
    compare: CompareSpec | None = None
    reporters: tuple[str, ...] = ("json", "markdown")

    def __post_init__(self) -> None:
        from repro.core.registry import BACKENDS
        from repro.experiments.reporters import REPORTERS

        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if not self.datasets:
            raise ValueError(f"experiment {self.name!r}: no datasets")
        if not self.pipelines:
            raise ValueError(f"experiment {self.name!r}: no pipelines")
        if not self.backends:
            raise ValueError(f"experiment {self.name!r}: no backends")
        if self.repeats < 1:
            raise ValueError(
                f"experiment {self.name!r}: repeats must be positive, "
                f"got {self.repeats}"
            )
        for backend in self.backends:
            if backend not in BACKENDS:
                raise ValueError(
                    f"experiment {self.name!r}: unknown backend {backend!r}; "
                    f"registered: {', '.join(BACKENDS.names())}"
                )
        for count in self.workers:
            if count is not None and count < 1:
                raise ValueError(
                    f"experiment {self.name!r}: worker counts must be "
                    f"positive, got {count}"
                )
        for reporter in self.reporters:
            if reporter not in REPORTERS:
                raise ValueError(
                    f"experiment {self.name!r}: unknown reporter "
                    f"{reporter!r}; registered: {', '.join(REPORTERS.names())}"
                )
        labels = [d.display_label for d in self.datasets]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"experiment {self.name!r}: duplicate dataset labels"
            )
        pipeline_labels = [p.label for p in self.pipelines]
        if len(set(pipeline_labels)) != len(pipeline_labels):
            raise ValueError(
                f"experiment {self.name!r}: duplicate pipeline labels"
            )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        _require_keys(data, [f.name for f in fields(cls)],
                      f"experiment {data.get('name', '?')!r}")
        workers = tuple(
            None if count == 0 else count for count in data.get("workers", (None,))
        )
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            seed=data.get("seed", 42),
            repeats=data.get("repeats", 1),
            datasets=tuple(
                DatasetSpec.from_mapping(entry)
                for entry in data.get("datasets", ())
            ),
            pipelines=tuple(
                PipelineSpec.from_mapping(entry)
                for entry in data.get("pipelines", ())
            ),
            backends=tuple(data.get("backends", ("vectorized",))),
            workers=workers,
            monitor=MonitorSpec.from_mapping(data.get("monitor", {})),
            compare=(
                CompareSpec.from_mapping(data["compare"])
                if "compare" in data
                else None
            ),
            reporters=tuple(data.get("reporters", ("json", "markdown"))),
        )


def _load_toml(path: Path) -> dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # Python 3.10: tomllib landed in 3.11
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise ValueError(
                f"cannot read {path}: TOML support needs Python >= 3.11 "
                "(tomllib) or the tomli package; use a .json config instead"
            ) from None
    with path.open("rb") as handle:
        return tomllib.load(handle)


def load_config(path: Path | str) -> ExperimentConfig:
    """Load and validate an experiment config from a TOML or JSON file."""
    path = Path(path)
    if path.suffix == ".toml":
        data = _load_toml(path)
    elif path.suffix == ".json":
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        raise ValueError(
            f"unsupported config suffix {path.suffix!r} for {path}; "
            "use .toml or .json"
        )
    try:
        return ExperimentConfig.from_mapping(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from exc
