"""Locality-Sensitive Hashing pre-processing for attribute-match induction."""

from repro.lsh.banding import LSHBanding, choose_bands, lsh_candidate_pairs
from repro.lsh.minhash import MinHasher
from repro.lsh.scurve import candidate_probability, estimated_threshold, scurve_points

__all__ = [
    "MinHasher",
    "LSHBanding",
    "choose_bands",
    "lsh_candidate_pairs",
    "candidate_probability",
    "estimated_threshold",
    "scurve_points",
]
