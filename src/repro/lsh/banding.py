"""Banded LSH indexing of MinHash signatures (Section 3.1.2).

Signatures are split into ``b`` bands of ``r`` rows; two attributes become a
*candidate pair* when at least one band of their signatures is identical.
Only candidate pairs are handed to attribute-match induction, replacing the
quadratic all-pairs similarity pass.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.lsh.minhash import MinHasher
from repro.lsh.scurve import estimated_threshold
from repro.schema.attribute_profile import AttributeProfile
from repro.schema.partition import AttributeRef


class LSHBanding:
    """Bucket signatures by band and emit colliding pairs.

    Parameters
    ----------
    bands:
        Number of bands ``b``.
    rows:
        Rows per band ``r``.  Signatures must have exactly ``b * r`` values.
    """

    def __init__(self, bands: int, rows: int) -> None:
        if bands < 1 or rows < 1:
            raise ValueError("bands and rows must be positive")
        self.bands = bands
        self.rows = rows

    @property
    def num_hashes(self) -> int:
        """Required signature length ``b * r``."""
        return self.bands * self.rows

    @property
    def threshold(self) -> float:
        """The estimated Jaccard threshold of this configuration."""
        return estimated_threshold(self.rows, self.bands)

    def candidate_pairs(
        self,
        signatures: np.ndarray,
        sources: Sequence[int] | None = None,
    ) -> set[tuple[int, int]]:
        """Indices of signature rows colliding in at least one band.

        Parameters
        ----------
        signatures:
            ``(num_attributes, bands * rows)`` signature matrix.
        sources:
            Optional per-row source labels; when given, only cross-source
            pairs are emitted (the clean-clean case — same-source attribute
            pairs are never matched by LMI).
        """
        n, width = signatures.shape
        if width != self.num_hashes:
            raise ValueError(
                f"signature length {width} != bands*rows {self.num_hashes}"
            )
        pairs: set[tuple[int, int]] = set()
        for band in range(self.bands):
            chunk = signatures[:, band * self.rows : (band + 1) * self.rows]
            buckets: dict[bytes, list[int]] = {}
            for row in range(n):
                buckets.setdefault(chunk[row].tobytes(), []).append(row)
            for members in buckets.values():
                if len(members) < 2:
                    continue
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        a, b = members[i], members[j]
                        if sources is not None and sources[a] == sources[b]:
                            continue
                        pairs.add((a, b) if a < b else (b, a))
        return pairs


def choose_bands(num_hashes: int, threshold: float) -> LSHBanding:
    """The banding of *num_hashes* rows whose S-curve threshold is closest
    to *threshold*.

    Scans every factorization ``num_hashes = b * r`` and picks the one
    minimizing ``|(1/b)^(1/r) - threshold|``.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    best: LSHBanding | None = None
    best_gap = float("inf")
    for rows in range(1, num_hashes + 1):
        if num_hashes % rows:
            continue
        bands = num_hashes // rows
        gap = abs(estimated_threshold(rows, bands) - threshold)
        if gap < best_gap:
            best_gap = gap
            best = LSHBanding(bands, rows)
    assert best is not None  # rows=1 always divides num_hashes
    return best


def lsh_candidate_pairs(
    profiles1: Sequence[AttributeProfile],
    profiles2: Sequence[AttributeProfile] | None = None,
    threshold: float = 0.5,
    num_hashes: int = 150,
    seed: int | None = None,
    banding: LSHBanding | None = None,
) -> set[tuple[AttributeRef, AttributeRef]]:
    """End-to-end LSH step: profiles -> candidate attribute-ref pairs.

    This is the optional pre-processing step of Section 3.1.2, usable in
    front of both LMI and Attribute Clustering.  For clean-clean inputs only
    cross-source pairs are returned.

    Parameters
    ----------
    threshold:
        Target Jaccard threshold; ignored when *banding* is given.
    banding:
        Explicit banding configuration (e.g. ``LSHBanding(30, 5)``).
    """
    all_profiles = list(profiles1) + (list(profiles2) if profiles2 else [])
    if banding is None:
        banding = choose_bands(num_hashes, threshold)
    hasher = MinHasher(num_hashes=banding.num_hashes, seed=seed)
    signatures = hasher.signatures([p.tokens for p in all_profiles])
    sources = [p.source for p in all_profiles] if profiles2 is not None else None
    index_pairs = banding.candidate_pairs(signatures, sources)
    return {
        (all_profiles[i].ref, all_profiles[j].ref) for i, j in index_pairs
    }
