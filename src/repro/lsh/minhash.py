"""MinHash signatures (Section 3.1.2).

Each attribute profile (a token set, i.e. a binary column of the
attribute-token matrix) is compressed to a signature of ``n`` minhash
values.  The probability that two columns agree on one minhash equals their
Jaccard similarity [Broder 1997], so signatures preserve exactly the
similarity LMI measures.

Hashing uses the classic universal family ``h(x) = (a*x + b) mod p`` over a
Mersenne prime, vectorized with numpy across hash functions.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.rng import make_rng

_UINT64_MAX = np.uint64(np.iinfo(np.uint64).max)


def _token_id(token: str) -> int:
    """A stable 32-bit integer id for *token*, independent of call order
    and of ``PYTHONHASHSEED`` (blake2b content hash).

    The residual id-collision probability is negligible for LSH candidate
    generation.
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


class MinHasher:
    """Deterministic MinHash signature generator.

    Parameters
    ----------
    num_hashes:
        Signature length ``n``; must be compatible with the banding scheme
        (``n = bands * rows``).
    seed:
        Seed for the hash-function coefficients.
    """

    def __init__(self, num_hashes: int = 150, seed: int | None = None) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        rng = make_rng(seed)
        # Multiply-add over Z_2^64 with random ODD multipliers: the uint64
        # wrap-around is the mixing step (multiply-shift hashing), giving
        # near-uniform rank order over the 32-bit token-id space.
        self._a = rng.integers(0, 1 << 63, size=num_hashes, dtype=np.uint64)
        self._a = self._a * np.uint64(2) + np.uint64(1)
        self._b = rng.integers(0, 1 << 63, size=num_hashes, dtype=np.uint64)

    def signatures(self, token_sets: Sequence[Iterable[str]]) -> np.ndarray:
        """Signature matrix of shape ``(len(token_sets), num_hashes)``.

        Token identity is by content (blake2b of the string), so the same
        token hashes identically across sets, across calls, and across
        processes — signature agreement estimates Jaccard similarity, and
        signatures of the same set are reproducible regardless of which
        other sets share the call.

        Empty token sets receive unique sentinel signatures so they can
        never become candidates of anything (an empty attribute has Jaccard
        0 with every other attribute).
        """
        cache: dict[str, int] = {}
        encoded: list[np.ndarray] = []
        for tokens in token_sets:
            ids = [
                cache[token] if token in cache else cache.setdefault(token, _token_id(token))
                for token in tokens
            ]
            encoded.append(np.asarray(sorted(ids), dtype=np.uint64))

        out = np.empty((len(encoded), self.num_hashes), dtype=np.uint64)
        for row, ids in enumerate(encoded):
            if ids.size == 0:
                # Unique per-row sentinels: empty sets never collide with
                # anything (including each other).
                out[row] = _UINT64_MAX - np.uint64(row)
                continue
            # (n_hashes, n_tokens) hashes with implicit mod 2^64; min over
            # tokens is the minhash.
            hashed = self._a[:, None] * ids[None, :] + self._b[:, None]
            out[row] = hashed.min(axis=1)
        return out

    def estimate_jaccard(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing minhashes — an unbiased Jaccard estimate."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signature shapes differ")
        return float(np.mean(sig_a == sig_b))
