"""The LSH S-curve (Section 3.1.2, Figure 5).

With ``b`` bands of ``r`` rows, two attributes of Jaccard similarity ``s``
become candidates with probability ``1 - (1 - s^r)^b``.  The curve's
inflection marks the effective similarity threshold, approximated by
``(1/b)^(1/r)`` — e.g. roughly 0.5 for r=5, b=30.
"""

from __future__ import annotations

import numpy as np


def candidate_probability(s: float | np.ndarray, rows: int, bands: int):
    """P[candidate] = 1 - (1 - s^r)^b for similarity *s*."""
    if rows < 1 or bands < 1:
        raise ValueError("rows and bands must be positive")
    s = np.clip(np.asarray(s, dtype=float), 0.0, 1.0)
    result = 1.0 - (1.0 - s**rows) ** bands
    return float(result) if result.ndim == 0 else result


def estimated_threshold(rows: int, bands: int) -> float:
    """The similarity threshold approximation ``(1/b)^(1/r)``.

    >>> round(estimated_threshold(5, 30), 2)
    0.51
    """
    if rows < 1 or bands < 1:
        raise ValueError("rows and bands must be positive")
    return (1.0 / bands) ** (1.0 / rows)


def scurve_points(
    rows: int, bands: int, num: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """``(similarities, probabilities)`` arrays tracing the S-curve.

    This is exactly the data behind Figure 5 of the paper.
    """
    s = np.linspace(0.0, 1.0, num)
    return s, candidate_probability(s, rows, bands)
