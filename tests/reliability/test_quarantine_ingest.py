"""Quarantine-tolerant ingest: malformed, duplicate, and empty inputs."""

from __future__ import annotations

import gzip

import pytest

from repro.data import IngestIssue, IngestReport
from repro.data.io import load_collection, iter_collection
from repro.reliability import FAULTS
from repro.streaming import iter_stream


GOOD = '{"id": "a", "attributes": [["name", "john"]]}\n'


def write_lines(path, *lines):
    path.write_text("".join(lines), encoding="utf-8")
    return path


@pytest.fixture
def mixed_file(tmp_path):
    """Two good records around one malformed, one id-less, one duplicate."""
    return write_lines(
        tmp_path / "mixed.jsonl",
        GOOD,
        "this is not json\n",
        '{"attributes": [["name", "no id"]]}\n',
        '{"id": "b", "attributes": [["name", "ellen"]]}\n',
        '{"id": "a", "attributes": [["name", "john again"]]}\n',
    )


class TestRaiseMode:
    def test_malformed_line_aborts_with_path_and_line(self, mixed_file):
        with pytest.raises(ValueError, match=r"mixed\.jsonl:2.*malformed"):
            list(iter_collection(mixed_file))

    def test_raise_is_the_default(self, mixed_file):
        with pytest.raises(ValueError):
            load_collection(mixed_file)

    def test_clean_file_loads_without_a_report(self, tmp_path):
        path = write_lines(tmp_path / "clean.jsonl", GOOD)
        collection = load_collection(path)
        assert [p.profile_id for p in collection] == ["a"]


class TestSkipAndCollect:
    def test_skip_keeps_the_good_records(self, mixed_file):
        report = IngestReport()
        collection = load_collection(
            mixed_file, on_error="skip", report=report
        )
        assert [p.profile_id for p in collection] == ["a", "b"]
        assert (report.loaded, report.skipped) == (2, 3)
        assert report.issues == []  # detail is collect-only
        assert not report.ok

    def test_collect_records_one_issue_per_quarantined_line(self, mixed_file):
        report = IngestReport()
        load_collection(mixed_file, on_error="collect", report=report)
        assert len(report.issues) == 3
        reasons = [issue.reason for issue in report.issues]
        assert all("malformed" in r for r in reasons[:2])
        assert "duplicate profile_id 'a'" in reasons[2]
        # Line numbers point at the bad lines; the duplicate is a property
        # of the pair, not one line.
        assert [issue.line_no for issue in report.issues] == [2, 3, None]
        assert str(mixed_file) in str(report.issues[0])

    def test_duplicate_keeps_the_first_occurrence(self, mixed_file):
        report = IngestReport()
        collection = load_collection(
            mixed_file, on_error="collect", report=report
        )
        (kept,) = [p for p in collection if p.profile_id == "a"]
        assert kept.attributes == (("name", "john"),)

    def test_empty_file_is_a_clean_report(self, tmp_path):
        report = IngestReport()
        collection = load_collection(
            write_lines(tmp_path / "empty.jsonl"),
            on_error="collect",
            report=report,
        )
        assert len(collection) == 0
        assert report.ok
        assert report.summary() == "ingested 0 records"

    def test_skip_without_a_report_still_works(self, mixed_file):
        ids = [p.profile_id for p in load_collection(mixed_file, on_error="skip")]
        assert ids == ["a", "b"]

    def test_gzip_inputs_quarantine_the_same(self, mixed_file, tmp_path):
        gz = tmp_path / "mixed.jsonl.gz"
        gz.write_bytes(gzip.compress(mixed_file.read_bytes()))
        report = IngestReport()
        collection = load_collection(gz, on_error="collect", report=report)
        assert [p.profile_id for p in collection] == ["a", "b"]
        assert (report.loaded, report.skipped) == (2, 3)


class TestModeValidation:
    def test_unknown_mode_rejected(self, mixed_file):
        with pytest.raises(ValueError, match="on_error"):
            list(iter_collection(mixed_file, on_error="ignore"))

    def test_collect_requires_a_report(self, mixed_file):
        with pytest.raises(ValueError, match="report"):
            list(iter_collection(mixed_file, on_error="collect"))


class TestStreamIngest:
    def test_stream_records_quarantine_too(self, tmp_path):
        path = write_lines(
            tmp_path / "stream.jsonl",
            GOOD,
            '{"op": "explode", "id": "a"}\n',
            '{"op": "delete", "id": "a"}\n',
        )
        report = IngestReport()
        records = list(
            iter_stream(path, on_error="collect", report=report)
        )
        assert [r.op for r in records] == ["upsert", "delete"]
        assert (report.loaded, report.skipped) == (2, 1)
        assert "unknown stream op" in report.issues[0].reason


class TestInjectedIngestFaults:
    def test_injected_fault_aborts_in_raise_mode(self, tmp_path):
        path = write_lines(tmp_path / "ok.jsonl", GOOD)
        with FAULTS.injected("ingest.record", "raise"):
            with pytest.raises(ValueError, match="malformed record"):
                list(iter_collection(path))

    def test_injected_fault_is_quarantined_in_skip_mode(self, tmp_path):
        path = write_lines(
            tmp_path / "ok.jsonl",
            GOOD,
            '{"id": "b", "attributes": [["name", "ellen"]]}\n',
        )
        report = IngestReport()
        with FAULTS.injected("ingest.record", "raise", hits=1):
            ids = [
                p.profile_id
                for p in iter_collection(
                    path, on_error="collect", report=report
                )
            ]
        assert ids == ["b"]  # the faulted record was dropped, not fatal
        assert (report.loaded, report.skipped) == (1, 1)
        assert "injected" in report.issues[0].reason.lower()


class TestIngestIssueRendering:
    def test_issue_with_line_number(self):
        issue = IngestIssue("data.jsonl", 7, "malformed record: boom")
        assert str(issue) == "data.jsonl:7: malformed record: boom"

    def test_issue_without_line_number(self):
        issue = IngestIssue("data.jsonl", None, "duplicate profile_id 'a'")
        assert str(issue) == "data.jsonl: duplicate profile_id 'a'"
