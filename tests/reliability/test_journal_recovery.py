"""Journaled sessions: WAL semantics, torn tails, crash-point recovery.

The contract under test: ``StreamingSession.recover(snapshot, journal)``
is indistinguishable from the session that never crashed — same live
profiles, same neighborhoods, bit for bit — for any operation sequence
and any crash point, including a crash *between* the journal append and
the in-memory apply.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BlastConfig
from repro.data import EntityProfile
from repro.streaming import SnapshotCorruptionError, StreamingSession


def profile(pid: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": text})


def make_session(journal=None) -> StreamingSession:
    return StreamingSession(
        BlastConfig(purging_ratio=1.0), weighting="cbs", journal=journal
    )


def state_of(session: StreamingSession) -> dict:
    """Every live profile's full weighted neighborhood (the oracle view)."""
    index = session.index
    return {
        index.profile_of(node).profile_id: [
            (c.profile_id, c.weight)
            for c in session.neighborhood(index.profile_of(node).profile_id)
        ]
        for node in index.live_nodes()
    }


class TestJournalBasics:
    def test_operations_are_logged_before_they_apply(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        with make_session(journal=journal) as session:
            session.upsert(profile("a", "john abram"))
            session.delete("a")
        lines = [
            json.loads(line)
            for line in journal.read_text(encoding="utf-8").splitlines()
        ]
        assert [(r["seq"], r["op"]) for r in lines] == [
            (1, "upsert"), (2, "delete"),
        ]

    def test_unjournaled_session_writes_nothing(self, tmp_path):
        session = make_session()
        session.upsert(profile("a", "john abram"))
        session.close()
        assert list(tmp_path.iterdir()) == []
        assert session.journal_path is None

    def test_close_is_idempotent(self, tmp_path):
        session = make_session(journal=tmp_path / "wal.jsonl")
        session.close()
        session.close()

    def test_fresh_session_refuses_a_used_journal(self, tmp_path):
        # Appending seq 1.. on top of an earlier history would orphan
        # the crashed session's committed records — fail loudly instead.
        journal = tmp_path / "wal.jsonl"
        with make_session(journal=journal) as session:
            session.upsert(profile("a", "john abram"))
        with pytest.raises(ValueError, match="recover"):
            make_session(journal=journal)

    def test_fresh_session_accepts_an_empty_journal_file(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        journal.touch()
        with make_session(journal=journal) as session:
            session.upsert(profile("a", "john abram"))
        assert journal.read_text(encoding="utf-8").count("\n") == 1


class TestRecover:
    def test_recover_equals_never_crashed(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        session = make_session(journal=journal)
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john abram"))
        session.snapshot(snap)
        session.upsert(profile("c", "ellen smith"))
        session.upsert(profile("d", "ellen smith"))
        session.delete("b")
        expected = state_of(session)
        session.close()  # "crash": no further snapshot

        recovered = StreamingSession.recover(snap, journal)
        assert state_of(recovered) == expected
        recovered.close()

    def test_recovered_session_keeps_journaling(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        session = make_session(journal=journal)
        session.upsert(profile("a", "john abram"))
        session.snapshot(snap)
        session.close()

        recovered = StreamingSession.recover(snap, journal)
        recovered.upsert(profile("b", "john abram"))
        expected = state_of(recovered)
        recovered.close()
        # A second crash after the first recovery still recovers.
        again = StreamingSession.recover(snap, journal)
        assert state_of(again) == expected
        again.close()

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        session = make_session(journal=journal)
        session.upsert(profile("a", "john abram"))
        session.snapshot(snap)
        session.upsert(profile("b", "john abram"))
        expected = state_of(session)
        session.close()

        committed = journal.read_bytes()
        journal.write_bytes(committed + b'{"seq": 3, "op": "upse')
        recovered = StreamingSession.recover(snap, journal)
        assert state_of(recovered) == expected
        assert journal.read_bytes() == committed  # tail truncated away
        recovered.close()

    def test_missing_journal_reads_as_empty(self, tmp_path):
        snap = tmp_path / "snap.json.gz"
        session = make_session()
        session.upsert(profile("a", "john abram"))
        session.snapshot(snap)
        recovered = StreamingSession.recover(snap, tmp_path / "wal.jsonl")
        assert state_of(recovered) == state_of(session)
        recovered.close()

    def test_committed_garbage_line_is_corruption(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        make_session().snapshot(snap)
        journal.write_text("not json\n", encoding="utf-8")
        with pytest.raises(SnapshotCorruptionError, match="JSON"):
            StreamingSession.recover(snap, journal)

    def test_journal_behind_the_snapshot_is_corruption(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        session = make_session(journal=journal)
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john abram"))
        session.snapshot(snap)  # records journal position 2
        session.close()
        journal.write_text(
            '{"seq": 1, "op": "delete", "id": "a", "source": 0}\n',
            encoding="utf-8",
        )
        with pytest.raises(SnapshotCorruptionError, match="seq"):
            StreamingSession.recover(snap, journal)

    def test_crash_before_the_first_snapshot_recovers_via_factory(
        self, tmp_path
    ):
        # The whole history lives in the journal; the caller supplies
        # the configuration a snapshot would otherwise carry.
        journal = tmp_path / "wal.jsonl"
        session = make_session(journal=journal)
        session.upsert(profile("a", "john abram"))
        session.upsert(profile("b", "john abram"))
        expected = state_of(session)
        session.close()  # crash: no snapshot was ever written

        recovered = StreamingSession.recover(
            tmp_path / "never-written.json.gz",
            journal,
            session_factory=make_session,
        )
        assert state_of(recovered) == expected
        # The journal is re-attached with the sequence continued.
        recovered.upsert(profile("c", "ellen smith"))
        recovered.close()
        last = json.loads(
            journal.read_text(encoding="utf-8").splitlines()[-1]
        )
        assert last["seq"] == 3

    def test_recover_without_snapshot_or_factory_is_an_error(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        with pytest.raises(TypeError, match="session_factory"):
            StreamingSession.recover(None, journal)
        with pytest.raises(FileNotFoundError):
            StreamingSession.recover(tmp_path / "missing.json.gz", journal)

    def test_factory_must_not_attach_its_own_journal(self, tmp_path):
        journal = tmp_path / "wal.jsonl"
        with pytest.raises(ValueError, match="unjournaled"):
            StreamingSession.recover(
                None,
                journal,
                session_factory=lambda: make_session(
                    journal=tmp_path / "other.jsonl"
                ),
            )

    def test_sequence_gap_is_corruption(self, tmp_path):
        snap, journal = tmp_path / "snap.json.gz", tmp_path / "wal.jsonl"
        make_session().snapshot(snap)
        journal.write_text(
            '{"seq": 1, "op": "upsert", "id": "a", "source": 0,'
            ' "attributes": [["name", "x"]]}\n'
            '{"seq": 3, "op": "delete", "id": "a", "source": 0}\n',
            encoding="utf-8",
        )
        with pytest.raises(SnapshotCorruptionError, match="missing"):
            StreamingSession.recover(snap, journal)


class TestCrashInTheCommitWindow:
    def test_kill_between_append_and_apply_recovers_exactly(self, tmp_path):
        # The acceptance scenario: the process dies after the journal
        # line is durable but before the operation is applied in memory.
        # Recovery must include that operation — the journal is the truth.
        snap = tmp_path / "snap.json.gz"
        journal = tmp_path / "wal.jsonl"
        make_session().snapshot(snap)  # empty baseline, journal_seq 0

        code = (
            "from repro.core import BlastConfig\n"
            "from repro.data import EntityProfile\n"
            "from repro.streaming import StreamingSession\n"
            "s = StreamingSession(BlastConfig(purging_ratio=1.0),"
            f" weighting='cbs', journal={str(journal)!r})\n"
            "def prof(pid, name):\n"
            "    return EntityProfile.from_dict(pid, {'name': name})\n"
            "s.upsert(prof('a', 'john abram'))\n"
            "s.upsert(prof('b', 'john abram'))\n"
            "s.upsert(prof('c', 'ellen smith'))\n"
            "raise SystemExit('unreachable: the fault should have fired')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ, REPRO_FAULTS="journal.apply=kill@3"),
            capture_output=True,
        )
        assert result.returncode == 23, result.stderr.decode()

        oracle = make_session()
        oracle.upsert(profile("a", "john abram"))
        oracle.upsert(profile("b", "john abram"))
        oracle.upsert(profile("c", "ellen smith"))

        recovered = StreamingSession.recover(snap, journal)
        assert state_of(recovered) == state_of(oracle)
        recovered.close()

    def test_kill_before_append_loses_only_the_last_operation(self, tmp_path):
        # Dying before the line is durable loses exactly that operation:
        # the journal and the state agree on the prefix.
        snap = tmp_path / "snap.json.gz"
        journal = tmp_path / "wal.jsonl"
        make_session().snapshot(snap)

        code = (
            "from repro.core import BlastConfig\n"
            "from repro.data import EntityProfile\n"
            "from repro.streaming import StreamingSession\n"
            "s = StreamingSession(BlastConfig(purging_ratio=1.0),"
            f" weighting='cbs', journal={str(journal)!r})\n"
            "def prof(pid, name):\n"
            "    return EntityProfile.from_dict(pid, {'name': name})\n"
            "s.upsert(prof('a', 'john abram'))\n"
            "s.upsert(prof('b', 'john abram'))\n"
            "s.upsert(prof('c', 'ellen smith'))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ, REPRO_FAULTS="journal.append=kill@3"),
            capture_output=True,
        )
        assert result.returncode == 23, result.stderr.decode()

        oracle = make_session()
        oracle.upsert(profile("a", "john abram"))
        oracle.upsert(profile("b", "john abram"))

        recovered = StreamingSession.recover(snap, journal)
        assert state_of(recovered) == state_of(oracle)
        recovered.close()


# -- the property: any ops, any crash point ----------------------------------

IDS = ("p0", "p1", "p2", "p3")
WORDS = ("john abram", "ellen smith", "john smith", "abram street")

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"),
            st.sampled_from(IDS),
            st.sampled_from(WORDS),
        ),
        st.tuples(
            st.just("delete"),
            st.sampled_from(IDS),
            st.none(),
        ),
    ),
    min_size=1,
    max_size=12,
)


@given(ops=operations, data=st.data())
@settings(max_examples=30, deadline=None)
def test_recover_matches_uninterrupted_session_for_any_crash_point(
    tmp_path_factory, ops, data
):
    snapshot_at = data.draw(
        st.integers(min_value=0, max_value=len(ops)), label="snapshot_at"
    )
    tmp = tmp_path_factory.mktemp("recovery")
    snap, journal = tmp / "snap.json.gz", tmp / "wal.jsonl"

    def apply(session, op):
        kind, pid, text = op
        if kind == "upsert":
            session.upsert(profile(pid, text))
        else:
            session.delete(pid)

    session = make_session(journal=journal)
    for op in ops[:snapshot_at]:
        apply(session, op)
    session.snapshot(snap)
    for op in ops[snapshot_at:]:
        apply(session, op)
    expected = state_of(session)
    session.close()  # crash: the post-snapshot suffix lives only in the WAL

    oracle = make_session()
    for op in ops:
        apply(oracle, op)
    assert state_of(oracle) == expected  # journaling never changes results

    recovered = StreamingSession.recover(snap, journal)
    assert state_of(recovered) == expected
    recovered.close()
