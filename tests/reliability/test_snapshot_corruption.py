"""Crash-safe snapshots: atomic writes, checksums, corruption detection."""

from __future__ import annotations

import gzip
import json
import os
import subprocess
import sys

import pytest

from repro.core import BlastConfig
from repro.data import EntityProfile
from repro.reliability import FAULTS
from repro.streaming import SnapshotCorruptionError, StreamingSession


def profile(pid: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": text})


def warmed_session() -> StreamingSession:
    session = StreamingSession(
        BlastConfig(purging_ratio=1.0), weighting="cbs"
    )
    session.upsert(profile("a", "john abram"))
    session.upsert(profile("b", "john abram"))
    session.upsert(profile("c", "ellen smith"))
    return session


class TestCorruptionDetection:
    @pytest.mark.parametrize("suffix", ["snap.json", "snap.json.gz"])
    def test_truncated_snapshot_rejected(self, tmp_path, suffix):
        path = tmp_path / suffix
        warmed_session().snapshot(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptionError) as excinfo:
            StreamingSession.restore(path)
        assert str(path) in str(excinfo.value)

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        path = tmp_path / "snap.json"
        warmed_session().snapshot(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["default_k"] = 999  # any payload change
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(SnapshotCorruptionError, match="checksum"):
            StreamingSession.restore(path)

    def test_future_format_rejected_with_the_format_named(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format": 99}), encoding="utf-8")
        with pytest.raises(SnapshotCorruptionError, match="format"):
            StreamingSession.restore(path)

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("not a snapshot", encoding="utf-8")
        with pytest.raises(SnapshotCorruptionError, match="JSON"):
            StreamingSession.restore(path)

    def test_corruption_error_is_a_value_error(self):
        # The CLI's catch-all for user errors is (OSError, ValueError).
        assert issubclass(SnapshotCorruptionError, ValueError)

    def test_injected_truncation_at_the_write_site(self, tmp_path):
        # A torn write published anyway (bit rot between write and read)
        # must be caught by restore, not produce a silently-wrong session.
        path = tmp_path / "snap.json.gz"
        with FAULTS.injected("snapshot.write", "truncate", value=32):
            warmed_session().snapshot(path)
        with pytest.raises(SnapshotCorruptionError):
            StreamingSession.restore(path)

    def test_injected_bit_flip_at_the_write_site(self, tmp_path):
        path = tmp_path / "snap.json"
        with FAULTS.injected("snapshot.write", "corrupt"):
            warmed_session().snapshot(path)
        with pytest.raises(SnapshotCorruptionError):
            StreamingSession.restore(path)


class TestAtomicity:
    def test_crash_during_write_keeps_the_old_snapshot(self, tmp_path):
        path = tmp_path / "snap.json.gz"
        warmed_session().snapshot(path)
        before = path.read_bytes()

        code = (
            "from repro.core import BlastConfig\n"
            "from repro.data import EntityProfile\n"
            "from repro.streaming import StreamingSession\n"
            "s = StreamingSession(BlastConfig(purging_ratio=1.0),"
            " weighting='cbs')\n"
            "s.upsert(EntityProfile.from_dict('z', {'name': 'new state'}))\n"
            f"s.snapshot({str(path)!r})\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ, REPRO_FAULTS="snapshot.write=kill"),
            capture_output=True,
        )
        assert result.returncode == 23
        # The published snapshot is byte-identical to the previous one and
        # still restores; the torn temp file never replaced it.
        assert path.read_bytes() == before
        restored = StreamingSession.restore(path)
        assert restored.index.num_profiles == 3

    def test_no_temp_file_survives_a_clean_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        warmed_session().snapshot(path)
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_gzip_snapshot_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        session = warmed_session()
        session.snapshot(a)
        session.snapshot(b)
        assert a.read_bytes() == b.read_bytes()


class TestFormatCompatibility:
    def test_format_1_documents_still_restore(self, tmp_path):
        session = warmed_session()
        v2 = tmp_path / "v2.json.gz"
        session.snapshot(v2)
        with gzip.open(v2, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)["payload"]
        payload["format"] = 1
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps(payload), encoding="utf-8")
        restored = StreamingSession.restore(v1)
        assert restored.candidates("a") == session.candidates("a")
