"""Unit tests for the fault injector: spec parsing, arming, firing."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.reliability import (
    FAULT_ACTIONS,
    FAULTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_fault_specs,
)
from repro.reliability.faults import KILL_EXIT_CODE


class TestSpecParsing:
    def test_simple_spec(self):
        (spec,) = parse_fault_specs("parallel.worker=kill")
        assert spec == FaultSpec("parallel.worker", "kill")

    def test_value_and_hit_window(self):
        (spec,) = parse_fault_specs("journal.apply=delay:0.25@2-4")
        assert spec.action == "delay"
        assert spec.value == 0.25
        assert spec.hits == frozenset({2, 3, 4})

    def test_single_hit(self):
        (spec,) = parse_fault_specs("snapshot.write=truncate:64@1")
        assert spec.hits == frozenset({1})
        assert spec.value == 64.0

    def test_multiple_specs_with_either_separator(self):
        specs = parse_fault_specs(
            "a=kill; b=raise@1, c=delay:0.1"
        )
        assert [s.site for s in specs] == ["a", "b", "c"]

    def test_empty_spec_is_no_faults(self):
        assert parse_fault_specs("") == []
        assert parse_fault_specs(" ; , ") == []

    @pytest.mark.parametrize("text", [
        "noequals",
        "site=explode",          # unknown action
        "site=kill@0",           # hits are 1-based
        "site=kill@3-2",         # empty window
        "=kill",                 # empty site
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_specs(text)

    def test_every_documented_action_parses(self):
        for action in sorted(FAULT_ACTIONS):
            (spec,) = parse_fault_specs(f"site={action}:1")
            assert spec.action == action


class TestArming:
    def test_unarmed_fire_is_a_no_op(self):
        FaultInjector().fire("anything")  # must not raise

    def test_injected_context_manager_cleans_up(self):
        injector = FaultInjector()
        with injector.injected("site", "raise"):
            assert injector.active
            with pytest.raises(InjectedFault):
                injector.fire("site")
        assert not injector.active
        injector.fire("site")  # disarmed again

    def test_hit_window_limits_firing(self):
        injector = FaultInjector()
        injector.arm("site", action="raise", hits=2)
        injector.fire("site")  # hit 1: outside the window
        with pytest.raises(InjectedFault):
            injector.fire("site")  # hit 2
        injector.fire("site")  # hit 3: window passed
        injector.clear()

    def test_clear_by_site(self):
        injector = FaultInjector()
        injector.arm("a", action="raise")
        injector.arm("b", action="raise")
        injector.clear("a")
        injector.fire("a")
        with pytest.raises(InjectedFault):
            injector.fire("b")
        injector.clear()

    def test_from_env_arms_the_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "x=raise@1")
        injector = FaultInjector.from_env()
        assert [s.site for s in injector.armed_specs()] == ["x"]


class TestFileActions:
    def test_truncate_halves_by_default(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(b"x" * 100)
        injector = FaultInjector()
        with injector.injected("io", "truncate"):
            injector.fire("io", path=target)
        assert target.stat().st_size == 50

    def test_truncate_to_explicit_size(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(b"x" * 100)
        injector = FaultInjector()
        with injector.injected("io", "truncate", value=7):
            injector.fire("io", path=target)
        assert target.stat().st_size == 7

    def test_corrupt_flips_one_byte(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(bytes(range(10)))
        injector = FaultInjector()
        with injector.injected("io", "corrupt", value=3):
            injector.fire("io", path=target)
        data = target.read_bytes()
        assert data[3] == 3 ^ 0xFF
        assert [b for i, b in enumerate(data) if i != 3] == [
            b for i, b in enumerate(range(10)) if i != 3
        ]

    def test_file_actions_need_a_path(self):
        injector = FaultInjector()
        with injector.injected("io", "truncate"):
            with pytest.raises(ValueError, match="path"):
                injector.fire("io")


class TestKill:
    def test_kill_exits_with_the_marker_code(self):
        code = (
            "from repro.reliability import FaultInjector\n"
            "injector = FaultInjector()\n"
            "injector.arm('site', action='kill')\n"
            "injector.fire('site')\n"
            "raise SystemExit(0)  # unreachable\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True
        )
        assert result.returncode == KILL_EXIT_CODE


class TestGlobalInjector:
    def test_global_injector_starts_unarmed(self):
        # The suite environment must not leak REPRO_FAULTS into tests.
        assert not FAULTS.active
