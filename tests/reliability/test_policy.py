"""Unit tests for RetryPolicy: validation and deterministic backoff."""

from __future__ import annotations

import pytest

from repro.reliability import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.attempts == 3
        assert policy.task_timeout is None

    @pytest.mark.parametrize("kwargs, match", [
        ({"max_retries": -1}, "max_retries"),
        ({"task_timeout": 0}, "task_timeout"),
        ({"task_timeout": -1.5}, "task_timeout"),
        ({"backoff_base": -0.1}, "backoff_base"),
        ({"backoff_base": 3.0, "backoff_cap": 2.0}, "backoff_cap"),
    ])
    def test_bad_fields_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_zero_retries_still_runs_once(self):
        assert RetryPolicy(max_retries=0).attempts == 1
        assert RetryPolicy(max_retries=0).delays() == []


class TestBackoff:
    def test_delays_are_deterministic(self):
        a = RetryPolicy(max_retries=5, seed=7)
        b = RetryPolicy(max_retries=5, seed=7)
        assert a.delays() == b.delays()

    def test_seed_changes_the_jitter(self):
        assert RetryPolicy(seed=0).delays() != RetryPolicy(seed=1).delays()

    def test_nominal_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_retries=8, backoff_base=0.1, backoff_cap=0.4, seed=3
        )
        for attempt in range(1, 9):
            nominal = min(0.4, 0.1 * 2 ** (attempt - 1))
            delay = policy.delay(attempt)
            # Jitter scales by a factor in [0.5, 1.0].
            assert 0.5 * nominal <= delay <= nominal

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)
