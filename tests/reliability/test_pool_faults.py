"""Fault-injected persistent-pool execution and leaked-resource guards.

The persistent pool amortizes forks across runs, which raises the
stakes of every failure mode: a wedged worker must be replaced by
:meth:`PersistentPool.restart`, a degraded run must still match the
serial oracle bit for bit, and no exit path — normal, injected kill, or
interrupt — may leave a child process, a ``/dev/shm`` segment, or a
spill file behind.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings

import pytest

from repro.blocking.base import build_blocks
from repro.graph import WeightingScheme
from repro.graph.parallel import WORKER_FAULT_SITE, parallel_metablocking
from repro.graph.pool import live_segments, shutdown_pool
from repro.graph.pruning import BlastPruning
from repro.graph.vectorized import vectorized_metablocking
from repro.reliability import FAULTS, RetryPolicy


@pytest.fixture
def blocks():
    return build_blocks(
        {"a": {0, 1, 2}, "b": {1, 2, 3}, "c": {0, 3}, "d": {2, 3, 4},
         "e": {0, 4}, "f": {1, 4}},
        is_clean_clean=False,
    )


@pytest.fixture
def oracle(blocks):
    return vectorized_metablocking(
        blocks, weighting=WeightingScheme.CHI_H, pruning=BlastPruning()
    )


@pytest.fixture
def fork_only():
    if multiprocessing.get_start_method(allow_none=False) != "fork":
        pytest.skip("programmatically armed faults require fork workers")


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Fork AFTER each test arms its faults, and tear down afterwards.

    Armed faults travel to workers by fork-time memory sharing, so a
    pool forked before the arm would never see them; shutting the
    singleton down on both sides of the test makes the fork happen
    inside the armed window and leaves nothing for the next test.
    """
    shutdown_pool()
    yield
    shutdown_pool()
    assert live_segments() == frozenset()
    for child in multiprocessing.active_children():
        child.join(timeout=5)
    assert multiprocessing.active_children() == []


def run_persistent(blocks, **kwargs):
    return parallel_metablocking(
        blocks, weighting=WeightingScheme.CHI_H, pruning=BlastPruning(),
        workers=2, shard_size=3, pool="persistent", **kwargs,
    )


class TestPersistentHappyPath:
    def test_matches_oracle(self, blocks, oracle):
        assert run_persistent(blocks) == oracle

    def test_repeated_runs_reuse_the_pool(self, blocks, oracle):
        first = run_persistent(blocks)
        children = multiprocessing.active_children()
        assert children  # the pool stays alive between runs
        second = run_persistent(blocks)
        assert multiprocessing.active_children() == children
        assert first == second == oracle

    def test_segments_released_after_shutdown(self, blocks, oracle):
        assert run_persistent(blocks) == oracle
        # Publications are cached while the pool lives (that is the
        # amortization); shutdown must release every last segment.
        shutdown_pool()
        assert live_segments() == frozenset()


class TestPersistentInjectedFailure:
    def test_injected_raise_retries_to_oracle(self, blocks, oracle, fork_only):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise", hits=1):
            result = run_persistent(
                blocks,
                retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            )
        assert result == oracle

    def test_poisoned_tasks_degrade_to_serial(self, blocks, oracle, fork_only):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise"):
            with pytest.warns(RuntimeWarning, match="degrading to serial"):
                result = run_persistent(
                    blocks,
                    retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                )
        assert result == oracle

    def test_killed_worker_recovered_by_restart(
        self, blocks, oracle, fork_only
    ):
        # The kill wedges the batch; the dispatcher must restart the
        # persistent pool and the retry must still match the oracle.
        with FAULTS.injected(WORKER_FAULT_SITE, "kill", hits=1):
            result = run_persistent(
                blocks,
                retry_policy=RetryPolicy(
                    max_retries=2, task_timeout=2.0, backoff_base=0.0
                ),
            )
        assert result == oracle

    def test_no_leaks_after_total_worker_loss(self, blocks, fork_only):
        with FAULTS.injected(WORKER_FAULT_SITE, "kill"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_persistent(
                    blocks,
                    retry_policy=RetryPolicy(
                        max_retries=1, task_timeout=1.0, backoff_base=0.0
                    ),
                )
        shutdown_pool()
        assert live_segments() == frozenset()


class TestSpillLifecycle:
    def test_spill_directory_empty_after_run(self, blocks, oracle, tmp_path):
        result = parallel_metablocking(
            blocks, weighting=WeightingScheme.CHI_H, pruning=BlastPruning(),
            workers=2, shard_size=3,
            spill_dir=str(tmp_path), spill_threshold_mb=1e-6,
        )
        assert result == oracle
        assert os.listdir(tmp_path) == []

    def test_spill_cleaned_after_injected_failure(
        self, blocks, oracle, tmp_path, fork_only
    ):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise", hits=1):
            result = parallel_metablocking(
                blocks, weighting=WeightingScheme.CHI_H,
                pruning=BlastPruning(), workers=2, shard_size=3,
                spill_dir=str(tmp_path), spill_threshold_mb=1e-6,
                retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            )
        assert result == oracle
        assert os.listdir(tmp_path) == []

    def test_interrupt_releases_spill_and_segments(
        self, blocks, tmp_path, monkeypatch
    ):
        # A Ctrl-C between dispatch and merge must sweep the spill
        # directory (finally-guarded) and leave no owned segments once
        # the pool is shut down.
        import repro.graph.parallel as parallel_module

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel_module, "merge_shards", interrupted)
        with pytest.raises(KeyboardInterrupt):
            parallel_metablocking(
                blocks, weighting=WeightingScheme.CHI_H,
                pruning=BlastPruning(), workers=2, shard_size=3,
                pool="persistent",
                spill_dir=str(tmp_path), spill_threshold_mb=1e-6,
            )
        assert os.listdir(tmp_path) == []
        shutdown_pool()
        assert live_segments() == frozenset()
