"""Shared guard: no test may leak armed faults into the next one."""

from __future__ import annotations

import pytest

from repro.reliability import FAULTS


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    yield
    leaked = FAULTS.armed_specs()
    FAULTS.clear()
    assert not leaked, f"test leaked armed faults: {leaked}"
