"""Fault-injected parallel execution: retry, fallback, bit-identity.

The acceptance contract of the reliability layer: under injected worker
death, task failure, or task delay, ``parallel_metablocking`` returns
exactly what the serial oracle returns — the faults cost retries and
wall-clock, never edges.
"""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

from repro.blocking.base import build_blocks
from repro.graph import WeightingScheme
from repro.graph.parallel import WORKER_FAULT_SITE, parallel_metablocking
from repro.graph.pruning import BlastPruning
from repro.graph.vectorized import vectorized_metablocking
from repro.reliability import FAULTS, RetryPolicy


@pytest.fixture
def blocks():
    return build_blocks(
        {"a": {0, 1, 2}, "b": {1, 2, 3}, "c": {0, 3}, "d": {2, 3, 4},
         "e": {0, 4}, "f": {1, 4}},
        is_clean_clean=False,
    )


@pytest.fixture
def oracle(blocks):
    return vectorized_metablocking(
        blocks, weighting=WeightingScheme.CHI_H, pruning=BlastPruning()
    )


def run_parallel(blocks, **kwargs):
    return parallel_metablocking(
        blocks, weighting=WeightingScheme.CHI_H, pruning=BlastPruning(),
        workers=2, shard_size=3, **kwargs,
    )


@pytest.fixture
def fork_only():
    if multiprocessing.get_start_method(allow_none=False) != "fork":
        pytest.skip("programmatically armed faults require fork workers")


class TestInjectedTaskFailure:
    def test_first_task_fails_then_retry_succeeds(
        self, blocks, oracle, fork_only
    ):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise", hits=1):
            assert run_parallel(blocks) == oracle

    def test_poisoned_shards_degrade_to_serial(
        self, blocks, oracle, fork_only
    ):
        # Every pool attempt fails; the dispatcher must fall back to
        # in-process execution and still match the oracle bit for bit.
        with FAULTS.injected(WORKER_FAULT_SITE, "raise"):
            with pytest.warns(RuntimeWarning, match="degrading to serial"):
                result = run_parallel(
                    blocks,
                    retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                )
        assert result == oracle

    def test_zero_retries_still_completes_serially(
        self, blocks, oracle, fork_only
    ):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise"):
            with pytest.warns(RuntimeWarning, match="degrading to serial"):
                result = run_parallel(
                    blocks,
                    retry_policy=RetryPolicy(max_retries=0, backoff_base=0.0),
                )
        assert result == oracle

    def test_no_worker_processes_leak(self, blocks, fork_only):
        with FAULTS.injected(WORKER_FAULT_SITE, "raise"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_parallel(
                    blocks,
                    retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
                )
        for child in multiprocessing.active_children():
            child.join(timeout=5)
        assert multiprocessing.active_children() == []


class TestInjectedWorkerDeath:
    def test_killed_worker_detected_by_timeout_and_retried(
        self, blocks, oracle, fork_only
    ):
        # The first shard task os._exit()s mid-shard: the pool loses the
        # task silently, so only the per-task timeout can recover it.
        with FAULTS.injected(WORKER_FAULT_SITE, "kill", hits=1):
            result = run_parallel(
                blocks,
                retry_policy=RetryPolicy(
                    max_retries=2, task_timeout=2.0, backoff_base=0.0
                ),
            )
        assert result == oracle

    def test_every_worker_killed_degrades_to_serial(
        self, blocks, oracle, fork_only
    ):
        with FAULTS.injected(WORKER_FAULT_SITE, "kill"):
            with pytest.warns(RuntimeWarning, match="degrading to serial"):
                result = run_parallel(
                    blocks,
                    retry_policy=RetryPolicy(
                        max_retries=1, task_timeout=1.0, backoff_base=0.0
                    ),
                )
        assert result == oracle


class TestInjectedDelay:
    def test_slow_task_times_out_and_retries(self, blocks, oracle, fork_only):
        with FAULTS.injected(WORKER_FAULT_SITE, "delay", value=1.5, hits=1):
            result = run_parallel(
                blocks,
                retry_policy=RetryPolicy(
                    max_retries=2, task_timeout=0.3, backoff_base=0.0
                ),
            )
        assert result == oracle


class TestKnobPlumbing:
    def test_timeout_and_retry_shorthands(self, blocks, oracle):
        assert run_parallel(blocks, task_timeout=30.0, max_retries=1) == oracle

    def test_shorthands_conflict_with_explicit_policy(self, blocks):
        with pytest.raises(ValueError, match="retry_policy"):
            run_parallel(
                blocks, task_timeout=1.0, retry_policy=RetryPolicy()
            )

    def test_invalid_knobs_rejected(self, blocks):
        with pytest.raises(ValueError, match="task_timeout"):
            run_parallel(blocks, task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            run_parallel(blocks, max_retries=-1)

    def test_faultless_run_matches_oracle(self, blocks, oracle):
        assert run_parallel(blocks) == oracle
