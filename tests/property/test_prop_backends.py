"""Property-based equivalence: python vs vectorized meta-blocking backends.

The vectorized backend's contract is *result equivalence*: on any block
collection, any of the six weighting schemes (with and without the
``entropy_boost`` ablation), and any built-in pruning scheme, it must
produce edge weights within 1e-9 of the reference and the *identical*
retained edge set, for both clean-clean and dirty collections.  Hypothesis
hammers that contract with random collections.
"""

from hypothesis import given, settings, strategies as st

from repro.blocking.base import build_blocks
from repro.graph import BlockingGraph, WeightingScheme, compute_weights
from repro.graph.metablocking import reference_metablocking
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.vectorized import ArrayBlockingGraph, vectorized_metablocking

NUM_PROFILES = 12

dirty_keyed = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=4),
    values=st.sets(st.integers(0, NUM_PROFILES - 1), min_size=2, max_size=6),
    min_size=1,
    max_size=10,
)

# Clean-clean: E1 indices [0, 6), E2 indices [6, 12) — mirrors the global
# indexing convention (every E1 index below every E2 index).
clean_keyed = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=4),
    values=st.tuples(
        st.sets(st.integers(0, 5), min_size=1, max_size=4),
        st.sets(st.integers(6, 11), min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=10,
)

collections = st.one_of(
    dirty_keyed.map(lambda keyed: build_blocks(keyed, is_clean_clean=False)),
    clean_keyed.map(lambda keyed: build_blocks(keyed, is_clean_clean=True)),
)

#: Deterministic, non-trivial per-key entropies (or None for the neutral 1.0).
entropies = st.sampled_from(
    [None, lambda key: 0.25 + (sum(map(ord, key)) % 7) / 3.0]
)

PRUNINGS = [
    BlastPruning(),
    BlastPruning(c=1.5, d=3.0),
    WeightEdgePruning(),
    WeightEdgePruning(threshold=0.75),
    CardinalityEdgePruning(),
    CardinalityEdgePruning(k=3),
    WeightNodePruning(reciprocal=False),
    WeightNodePruning(reciprocal=True),
    CardinalityNodePruning(reciprocal=False),
    CardinalityNodePruning(reciprocal=True, k=2),
]


class TestWeightEquivalence:
    @given(collections, entropies, st.booleans())
    @settings(max_examples=60)
    def test_all_schemes_match_within_tolerance(
        self, collection, key_entropy, boost
    ):
        graph = BlockingGraph(collection, key_entropy=key_entropy)
        agraph = ArrayBlockingGraph(collection, key_entropy=key_entropy)
        for scheme in WeightingScheme:
            reference = compute_weights(graph, scheme, entropy_boost=boost)
            vectorized = dict(
                zip(
                    agraph.edge_list(),
                    agraph.weights(scheme, entropy_boost=boost).tolist(),
                )
            )
            assert set(reference) == set(vectorized)
            for edge, weight in reference.items():
                assert abs(weight - vectorized[edge]) <= 1e-9 * max(
                    1.0, abs(weight)
                ), (scheme, edge)

    @given(collections)
    @settings(max_examples=40)
    def test_edge_stats_match_reference(self, collection):
        graph = BlockingGraph(collection)
        agraph = ArrayBlockingGraph(collection)
        reference = {edge: stats for edge, stats in graph.edges()}
        assert agraph.edge_list() == sorted(reference)
        for position, edge in enumerate(agraph.edge_list()):
            stats = reference[edge]
            assert int(agraph.shared[position]) == stats.shared_blocks
            assert abs(float(agraph.arcs_mass[position]) - stats.arcs_mass) < 1e-12
        assert agraph.num_nodes == graph.num_nodes
        for node, count in graph.node_blocks.items():
            assert int(agraph.node_blocks[node]) == count


class TestRetainedEdgeEquivalence:
    @given(collections, entropies, st.sampled_from(PRUNINGS))
    @settings(max_examples=80)
    def test_chi_h_identical_retained_edges(
        self, collection, key_entropy, pruning
    ):
        reference = reference_metablocking(
            collection,
            weighting=WeightingScheme.CHI_H,
            pruning=pruning,
            key_entropy=key_entropy,
        )
        vectorized = vectorized_metablocking(
            collection,
            weighting=WeightingScheme.CHI_H,
            pruning=pruning,
            key_entropy=key_entropy,
        )
        assert reference == vectorized

    @given(
        collections,
        st.sampled_from(list(WeightingScheme)),
        st.sampled_from(PRUNINGS),
        st.booleans(),
    )
    @settings(max_examples=80)
    def test_every_scheme_identical_retained_edges(
        self, collection, scheme, pruning, boost
    ):
        kwargs = dict(
            weighting=scheme, pruning=pruning, entropy_boost=boost
        )
        assert reference_metablocking(
            collection, **kwargs
        ) == vectorized_metablocking(collection, **kwargs)


class TestStreamingPairs:
    @given(collections)
    @settings(max_examples=40)
    def test_iter_and_count_agree_with_set(self, collection):
        streamed = list(collection.iter_distinct_pairs())
        assert streamed == sorted(set(streamed))  # sorted, duplicate-free
        assert set(streamed) == {
            pair for block in collection for pair in block.iter_pairs()
        }
        assert collection.count_distinct_pairs() == len(streamed)
        assert collection.distinct_pairs() == set(streamed)
