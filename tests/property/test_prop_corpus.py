"""Property-based equivalence: interned corpus paths vs the string era.

The interned corpus refactor's headline guarantee: every consumer that
switched from re-tokenized strings to interned id arrays — the blockers,
entropy extraction, attribute profiling — produces *identical* output.
Hypothesis hammers that with random clean-clean and dirty datasets: same
blocks in the same order with the same members, the same pre-lowered CSR
entity index, and the same schema statistics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blocking.qgrams import QGramsBlocking
from repro.blocking.schema_aware import LooselySchemaAwareBlocking
from repro.blocking.suffix_array import SuffixArrayBlocking
from repro.blocking.token import TokenBlocking
from repro.core.stages import SchemaExtraction
from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth
from repro.graph.entity_index import EntityIndex
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.entropy import attribute_entropies

ATTRIBUTES = ("name", "job", "city")
WORDS = ("abram", "ellen", "smith", "jones", "retail", "seller",
         "york", "main", "street", "st", "a")

profiles = st.builds(
    lambda pid, pairs: EntityProfile(pid, tuple(pairs)),
    pid=st.uuids().map(str),
    pairs=st.lists(
        st.tuples(
            st.sampled_from(ATTRIBUTES),
            st.lists(
                st.sampled_from(WORDS), min_size=1, max_size=3
            ).map(" ".join),
        ),
        min_size=0,
        max_size=4,
    ),
)


def _unique_by_id(items):
    seen: set[str] = set()
    out = []
    for item in items:
        if item.profile_id not in seen:
            seen.add(item.profile_id)
            out.append(item)
    return out


profile_lists = st.lists(profiles, min_size=1, max_size=10).map(_unique_by_id)

dirty_datasets = profile_lists.map(
    lambda items: ERDataset(
        EntityCollection(items, "web"),
        None,
        GroundTruth([], clean_clean=False),
        name="prop-dirty",
    )
)

clean_clean_datasets = st.tuples(profile_lists, profile_lists).map(
    lambda pair: ERDataset(
        EntityCollection(pair[0], "S1"),
        EntityCollection(
            [
                EntityProfile("e2-" + p.profile_id, p.attributes)
                for p in pair[1]
            ],
            "S2",
        ),
        GroundTruth([]),
        name="prop-cc",
    )
)

datasets = st.one_of(dirty_datasets, clean_clean_datasets)


def assert_identical(interned, legacy):
    """Blocks, order, members and the CSR lowering must all agree."""
    assert [b.key for b in interned] == [b.key for b in legacy]
    for a, b in zip(interned, legacy):
        assert a.left == b.left and a.right == b.right
    ours = interned.entity_index
    reference = EntityIndex.from_collection(legacy)
    assert ours.keys == reference.keys
    for field in (
        "block_ptr",
        "block_split",
        "entity_ids",
        "block_comparisons",
        "node_block_counts",
    ):
        got, want = getattr(ours, field), getattr(reference, field)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


class TestInternedBlockingMatchesStrings:
    @settings(deadline=None, max_examples=40)
    @given(datasets, st.integers(min_value=1, max_value=4))
    def test_token_blocking(self, dataset, min_length):
        assert_identical(
            TokenBlocking(min_token_length=min_length).build(dataset),
            TokenBlocking(min_token_length=min_length, interned=False).build(
                dataset
            ),
        )

    @settings(deadline=None, max_examples=25)
    @given(datasets)
    def test_schema_aware_blocking(self, dataset):
        partitioning = SchemaExtraction().extract(dataset)
        assert_identical(
            LooselySchemaAwareBlocking(partitioning).build(dataset),
            LooselySchemaAwareBlocking(partitioning, interned=False).build(
                dataset
            ),
        )

    @settings(deadline=None, max_examples=25)
    @given(datasets, st.integers(min_value=2, max_value=4))
    def test_schema_aware_qgram_transformation(self, dataset, q):
        partitioning = SchemaExtraction().extract(dataset)
        assert_identical(
            LooselySchemaAwareBlocking(
                partitioning, transformation="qgram", q=q
            ).build(dataset),
            LooselySchemaAwareBlocking(
                partitioning, transformation="qgram", q=q, interned=False
            ).build(dataset),
        )

    @settings(deadline=None, max_examples=25)
    @given(datasets, st.integers(min_value=2, max_value=4))
    def test_qgrams_blocking(self, dataset, q):
        assert_identical(
            QGramsBlocking(q=q).build(dataset),
            QGramsBlocking(q=q, interned=False).build(dataset),
        )

    @settings(deadline=None, max_examples=25)
    @given(
        datasets,
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=8),
    )
    def test_suffix_array_blocking(self, dataset, min_suffix, max_size):
        assert_identical(
            SuffixArrayBlocking(min_suffix, max_size).build(dataset),
            SuffixArrayBlocking(min_suffix, max_size, interned=False).build(
                dataset
            ),
        )


class TestInternedSchemaMatchesStrings:
    @settings(deadline=None, max_examples=30)
    @given(datasets, st.integers(min_value=1, max_value=3))
    def test_attribute_entropies(self, dataset, min_length):
        corpus = dataset.corpus
        for source, collection in (
            (0, dataset.collection1),
            (1, dataset.collection2),
        ):
            if collection is None:
                continue
            assert attribute_entropies(
                collection, source, min_length, corpus=corpus
            ) == attribute_entropies(collection, source, min_length)

    @settings(deadline=None, max_examples=30)
    @given(datasets, st.integers(min_value=1, max_value=3))
    def test_attribute_profiles(self, dataset, min_length):
        corpus = dataset.corpus
        for source, collection in (
            (0, dataset.collection1),
            (1, dataset.collection2),
        ):
            if collection is None:
                continue
            assert build_attribute_profiles(
                collection, source, min_length, corpus=corpus
            ) == build_attribute_profiles(collection, source, min_length)

    @settings(deadline=None, max_examples=20)
    @given(datasets)
    def test_schema_extraction_partitionings_agree(self, dataset):
        interned = SchemaExtraction().extract(dataset)
        legacy = SchemaExtraction(interned=False).extract(dataset)
        assert interned.to_dict() == legacy.to_dict()


class TestMemmapRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(datasets)
    def test_round_trip_is_bit_identical(self, dataset):
        # Out-of-core persistence contract: reopening a saved corpus
        # yields byte-identical id arrays and the exact same token and
        # attribute id assignments, so every downstream consumer is
        # oblivious to whether the corpus lives on the heap or on disk.
        import tempfile

        from repro.data import InternedCorpus

        corpus = dataset.corpus
        with tempfile.TemporaryDirectory() as directory:
            corpus.to_memmap(directory)
            reopened = InternedCorpus.from_memmap(directory)
            assert reopened.offset2 == corpus.offset2
            assert reopened.is_clean_clean == corpus.is_clean_clean
            assert reopened.attributes == corpus.attributes
            for name in ("profile_ptr", "attr_ids", "token_ids"):
                original = getattr(corpus, name)
                restored = getattr(reopened, name)
                assert restored.dtype == original.dtype
                assert restored.tobytes() == original.tobytes()
            for token in corpus.dictionary:
                assert reopened.dictionary.id_of(token) == (
                    corpus.dictionary.id_of(token)
                )
