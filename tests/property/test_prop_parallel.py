"""Property-based shard invariance of the parallel meta-blocking backend.

The sharded backend's contract is stronger than result equivalence: the
*merged edge arrays* must be bit-identical to the serial vectorized
graph's — same edges, same order, same float masses down to the last ulp
— no matter how the entity-id space is partitioned.  Hypothesis hammers
that with random collections and pathological shard plans: 1/2/7/16-way
balanced plans, arbitrary boundary sets, empty ranges, and single-entity
ranges.
"""

from hypothesis import given, settings, strategies as st

from repro.blocking.base import build_blocks
from repro.graph import WeightingScheme
from repro.graph.metablocking import reference_metablocking
from repro.graph.parallel import merge_shards, parallel_metablocking
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    WeightEdgePruning,
    WeightNodePruning,
)
from repro.graph.sharding import (
    ShardableIndex,
    pair_counts_by_entity,
    plan_shards,
    shard_edge_arrays,
)
from repro.graph.vectorized import ArrayBlockingGraph

NUM_PROFILES = 12

dirty_keyed = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=4),
    values=st.sets(st.integers(0, NUM_PROFILES - 1), min_size=2, max_size=6),
    min_size=1,
    max_size=10,
)

clean_keyed = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=4),
    values=st.tuples(
        st.sets(st.integers(0, 5), min_size=1, max_size=4),
        st.sets(st.integers(6, 11), min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=10,
)

collections = st.one_of(
    dirty_keyed.map(lambda keyed: build_blocks(keyed, is_clean_clean=False)),
    clean_keyed.map(lambda keyed: build_blocks(keyed, is_clean_clean=True)),
)

#: Deterministic, non-trivial per-key entropies (or None for the neutral 1.0).
entropies = st.sampled_from(
    [None, lambda key: 0.25 + (sum(map(ord, key)) % 7) / 3.0]
)

PRUNINGS = [
    BlastPruning(),
    WeightEdgePruning(),
    CardinalityEdgePruning(),
    WeightNodePruning(reciprocal=True),
    CardinalityNodePruning(reciprocal=False),
]

SHARD_COUNTS = [1, 2, 7, 16]


def _arbitrary_plans(num_ids: int):
    """Shard plans from arbitrary boundary multisets over ``[0, num_ids]``.

    Repeated boundaries produce empty ranges; adjacent boundaries produce
    single-entity ranges — the pathological layouts the backend must
    absorb without changing a single bit.
    """
    return st.lists(
        st.integers(0, num_ids), min_size=0, max_size=6
    ).map(
        lambda cuts: [
            (lo, hi)
            for lo, hi in zip(
                [0] + sorted(cuts), sorted(cuts) + [num_ids]
            )
        ]
    )


def _bit_identical(merged, graph: ArrayBlockingGraph) -> None:
    assert merged.src.tobytes() == graph.src.tobytes()
    assert merged.dst.tobytes() == graph.dst.tobytes()
    assert merged.shared.tobytes() == graph.shared.tobytes()
    assert merged.arcs_mass.tobytes() == graph.arcs_mass.tobytes()
    assert merged.entropy_mass.tobytes() == graph.entropy_mass.tobytes()


class TestMergedArraysBitIdentical:
    @given(collections, entropies, st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=60)
    def test_balanced_plans(self, collection, key_entropy, num_shards):
        index = collection.entity_index
        slim = ShardableIndex.from_entity_index(index)
        graph = ArrayBlockingGraph(collection, key_entropy=key_entropy)
        block_entropies = index.block_entropies(key_entropy)
        plan = plan_shards(slim, num_shards=num_shards)
        merged = merge_shards(
            [
                shard_edge_arrays(
                    slim,
                    lo,
                    hi,
                    block_entropies=block_entropies,
                    need_arcs=True,
                )
                for lo, hi in plan
            ]
        )
        _bit_identical(merged, graph)

    @given(collections, entropies, st.data())
    @settings(max_examples=60)
    def test_arbitrary_plans_with_empty_and_unit_ranges(
        self, collection, key_entropy, data
    ):
        index = collection.entity_index
        slim = ShardableIndex.from_entity_index(index)
        plan = data.draw(_arbitrary_plans(slim.num_ids))
        graph = ArrayBlockingGraph(collection, key_entropy=key_entropy)
        block_entropies = index.block_entropies(key_entropy)
        merged = merge_shards(
            [
                shard_edge_arrays(
                    slim,
                    lo,
                    hi,
                    block_entropies=block_entropies,
                    need_arcs=True,
                )
                for lo, hi in plan
            ]
        )
        _bit_identical(merged, graph)


class TestRetainedEdgesShardInvariant:
    @given(
        collections,
        entropies,
        st.sampled_from(list(WeightingScheme)),
        st.sampled_from(PRUNINGS),
        st.sampled_from(SHARD_COUNTS),
        st.booleans(),
    )
    @settings(max_examples=80)
    def test_every_shard_count_matches_the_oracle(
        self, collection, key_entropy, scheme, pruning, num_shards, boost
    ):
        slim = ShardableIndex.from_entity_index(collection.entity_index)
        plan = plan_shards(slim, num_shards=num_shards)
        reference = reference_metablocking(
            collection,
            weighting=scheme,
            pruning=pruning,
            entropy_boost=boost,
            key_entropy=key_entropy,
        )
        parallel = parallel_metablocking(
            collection,
            weighting=scheme,
            pruning=pruning,
            entropy_boost=boost,
            key_entropy=key_entropy,
            workers=1,
            shard_plan=plan,
        )
        assert parallel == reference

    @given(
        collections,
        st.sampled_from(list(WeightingScheme)),
        st.sampled_from(PRUNINGS),
        st.data(),
    )
    @settings(max_examples=60)
    def test_arbitrary_plans_match_the_oracle(
        self, collection, scheme, pruning, data
    ):
        slim = ShardableIndex.from_entity_index(collection.entity_index)
        plan = data.draw(_arbitrary_plans(slim.num_ids))
        reference = reference_metablocking(
            collection, weighting=scheme, pruning=pruning
        )
        parallel = parallel_metablocking(
            collection,
            weighting=scheme,
            pruning=pruning,
            workers=1,
            shard_plan=plan,
        )
        assert parallel == reference


class TestPlanner:
    @given(collections, st.integers(1, 20))
    @settings(max_examples=60)
    def test_plans_partition_the_id_space(self, collection, num_shards):
        slim = ShardableIndex.from_entity_index(collection.entity_index)
        plan = plan_shards(slim, num_shards=num_shards)
        assert plan[0][0] == 0
        assert plan[-1][1] == slim.num_ids
        for (_, hi), (lo, _) in zip(plan[:-1], plan[1:]):
            assert hi == lo
        assert all(lo < hi for lo, hi in plan)
        assert len(plan) <= num_shards

    @given(collections, st.integers(1, 50))
    @settings(max_examples=60)
    def test_max_pairs_caps_shards_up_to_one_entity(
        self, collection, max_pairs
    ):
        slim = ShardableIndex.from_entity_index(collection.entity_index)
        counts = pair_counts_by_entity(slim)
        plan = plan_shards(slim, max_pairs=max_pairs)
        for lo, hi in plan:
            owned = int(counts[lo:hi].sum())
            # A range may only exceed the cap when shrinking it further is
            # impossible (a single entity already exceeds it on its own).
            assert owned <= max_pairs or hi - lo == 1

    @given(collections)
    @settings(max_examples=30)
    def test_pair_counts_sum_to_total_comparisons(self, collection):
        index = collection.entity_index
        counts = pair_counts_by_entity(
            ShardableIndex.from_entity_index(index)
        )
        assert int(counts.sum()) == index.total_comparisons


class TestSpilledMergeBitIdentical:
    @given(collections, entropies, st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=40, deadline=None)
    def test_spilled_shards_merge_like_heap_shards(
        self, collection, key_entropy, num_shards
    ):
        # Force every shard through disk (threshold of one byte) and
        # merge into memmap-backed outputs: the merged arrays must be
        # byte-for-byte the serial vectorized graph's.
        import tempfile

        from repro.graph.spill import (
            SpillSpec,
            resolve_shard,
            spill_shard,
        )

        index = collection.entity_index
        slim = ShardableIndex.from_entity_index(index)
        graph = ArrayBlockingGraph(collection, key_entropy=key_entropy)
        block_entropies = index.block_entropies(key_entropy)
        plan = plan_shards(slim, num_shards=num_shards)
        with tempfile.TemporaryDirectory() as spill_dir:
            spec = SpillSpec(directory=spill_dir, threshold_bytes=1)
            shards = []
            for lo, hi in plan:
                edges = shard_edge_arrays(
                    slim, lo, hi,
                    block_entropies=block_entropies, need_arcs=True,
                )
                spilled, _ = spill_shard(edges, None, spec, f"shard-{lo}")
                shards.append(resolve_shard(spilled))
            merged = merge_shards(shards, spill=spec)
            _bit_identical(merged, graph)


class TestSpilledPipelineEquivalence:
    @given(collections, st.sampled_from(PRUNINGS))
    @settings(max_examples=25, deadline=None)
    def test_spill_mode_matches_in_memory_backend(self, collection, pruning):
        import os
        import tempfile

        serial = parallel_metablocking(
            collection, weighting=WeightingScheme.CHI_H, pruning=pruning,
            workers=1, shard_size=5,
        )
        with tempfile.TemporaryDirectory() as spill_dir:
            spilled = parallel_metablocking(
                collection, weighting=WeightingScheme.CHI_H, pruning=pruning,
                workers=1, shard_size=5,
                spill_dir=spill_dir, spill_threshold_mb=1e-6,
            )
            assert os.listdir(spill_dir) == []  # job dir swept on exit
        assert spilled == serial
