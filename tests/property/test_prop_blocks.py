"""Property-based tests: block collections and their invariants.

Random dirty block collections are generated as key -> member-set mappings;
the invariants cover comparison accounting, purging/filtering monotonicity,
and the redundancy-free guarantee of meta-blocking.
"""

from hypothesis import given, strategies as st

from repro.blocking.base import BlockCollection, build_blocks
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.graph import BlockingGraph, MetaBlocker, WeightingScheme, compute_weights

NUM_PROFILES = 12

keyed_blocks = st.dictionaries(
    keys=st.text(alphabet="abcdef", min_size=1, max_size=4),
    values=st.sets(st.integers(0, NUM_PROFILES - 1), min_size=2, max_size=6),
    min_size=1,
    max_size=10,
)


def _collection(keyed) -> BlockCollection:
    return build_blocks(keyed, is_clean_clean=False)


class TestAccounting:
    @given(keyed_blocks)
    def test_aggregate_cardinality_equals_sum(self, keyed):
        collection = _collection(keyed)
        assert collection.aggregate_cardinality == sum(
            b.num_comparisons for b in collection
        )

    @given(keyed_blocks)
    def test_profile_block_sets_cover_blocks(self, keyed):
        collection = _collection(keyed)
        for profile, positions in collection.profile_block_sets.items():
            for pos in positions:
                assert profile in collection[pos].profiles

    @given(keyed_blocks)
    def test_distinct_pairs_canonical_and_bounded(self, keyed):
        collection = _collection(keyed)
        pairs = collection.distinct_pairs()
        assert all(i < j for i, j in pairs)
        assert len(pairs) <= collection.aggregate_cardinality


class TestPurgingFiltering:
    @given(keyed_blocks, st.floats(min_value=0.1, max_value=1.0))
    def test_purging_never_adds_comparisons(self, keyed, ratio):
        collection = _collection(keyed)
        purged = block_purging(collection, NUM_PROFILES, max_profile_ratio=ratio)
        assert purged.aggregate_cardinality <= collection.aggregate_cardinality
        assert len(purged) <= len(collection)

    @given(keyed_blocks, st.floats(min_value=0.1, max_value=1.0))
    def test_filtering_never_adds_comparisons(self, keyed, ratio):
        collection = _collection(keyed)
        filtered = block_filtering(collection, ratio=ratio)
        assert filtered.aggregate_cardinality <= collection.aggregate_cardinality

    @given(keyed_blocks)
    def test_filtering_keeps_pairs_subset(self, keyed):
        collection = _collection(keyed)
        filtered = block_filtering(collection, ratio=0.7)
        assert filtered.distinct_pairs() <= collection.distinct_pairs()

    @given(keyed_blocks)
    def test_filtered_blocks_still_imply_comparisons(self, keyed):
        filtered = block_filtering(_collection(keyed), ratio=0.5)
        assert all(b.num_comparisons >= 1 for b in filtered)


class TestGraphInvariants:
    @given(keyed_blocks)
    def test_edges_match_distinct_pairs(self, keyed):
        collection = _collection(keyed)
        graph = BlockingGraph(collection)
        assert {e for e, _ in graph.edges()} == collection.distinct_pairs()

    @given(keyed_blocks)
    def test_shared_blocks_bounded_by_node_blocks(self, keyed):
        graph = BlockingGraph(_collection(keyed))
        for (i, j), stats in graph.edges():
            assert stats.shared_blocks <= min(
                graph.node_blocks[i], graph.node_blocks[j]
            )

    @given(keyed_blocks)
    def test_weights_nonnegative_all_schemes(self, keyed):
        graph = BlockingGraph(_collection(keyed))
        for scheme in WeightingScheme:
            weights = compute_weights(graph, scheme)
            assert all(w >= 0.0 for w in weights.values())


class TestMetaBlockingInvariants:
    @given(keyed_blocks)
    def test_output_is_redundancy_free_subset(self, keyed):
        collection = _collection(keyed)
        out = MetaBlocker().run(collection)
        assert out.aggregate_cardinality == len(out)
        assert out.distinct_pairs() <= collection.distinct_pairs()

    @given(keyed_blocks)
    def test_never_more_comparisons_than_input(self, keyed):
        collection = _collection(keyed)
        out = MetaBlocker().run(collection)
        assert out.aggregate_cardinality <= max(
            1, collection.aggregate_cardinality
        )
