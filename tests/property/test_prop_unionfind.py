"""Property-based tests: union-find against a naive reference."""

from hypothesis import given, strategies as st

from repro.utils.unionfind import UnionFind

operations = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
)


def _naive_components(items: set[int], unions: list[tuple[int, int]]) -> set[frozenset]:
    groups: list[set[int]] = [{i} for i in items]
    for a, b in unions:
        ga = next(g for g in groups if a in g)
        gb = next(g for g in groups if b in g)
        if ga is not gb:
            groups.remove(gb)
            ga |= gb
    return {frozenset(g) for g in groups}


class TestAgainstReference:
    @given(operations)
    def test_components_match_naive(self, unions):
        items = {x for pair in unions for x in pair}
        uf = UnionFind(items)
        for a, b in unions:
            uf.union(a, b)
        assert {frozenset(c) for c in uf.components()} == _naive_components(
            items, unions
        )

    @given(operations, st.integers(0, 15), st.integers(0, 15))
    def test_connected_consistent_with_components(self, unions, x, y):
        uf = UnionFind(range(16))
        for a, b in unions:
            uf.union(a, b)
        same = any({x, y} <= set(c) for c in uf.components())
        assert uf.connected(x, y) == same

    @given(operations)
    def test_union_is_commutative_in_outcome(self, unions):
        forward = UnionFind(range(16))
        backward = UnionFind(range(16))
        for a, b in unions:
            forward.union(a, b)
        for a, b in reversed(unions):
            backward.union(b, a)
        assert {frozenset(c) for c in forward.components()} == {
            frozenset(c) for c in backward.components()
        }
