"""Property-based tests: MinHash preserves Jaccard similarity."""

from hypothesis import given, settings, strategies as st

from repro.lsh import MinHasher, candidate_probability, estimated_threshold
from repro.schema.similarity import jaccard

token_pool = [f"tok{i}" for i in range(40)]
token_sets = st.sets(st.sampled_from(token_pool), min_size=1, max_size=30)


class TestMinHashProperties:
    @settings(max_examples=30, deadline=None)
    @given(token_sets, token_sets)
    def test_estimate_within_tolerance(self, a, b):
        hasher = MinHasher(num_hashes=256, seed=11)
        sigs = hasher.signatures([a, b])
        estimate = hasher.estimate_jaccard(sigs[0], sigs[1])
        assert abs(estimate - jaccard(a, b)) < 0.25

    @settings(max_examples=30, deadline=None)
    @given(token_sets)
    def test_identical_sets_estimate_one(self, a):
        hasher = MinHasher(num_hashes=64, seed=11)
        sigs = hasher.signatures([a, set(a)])
        assert hasher.estimate_jaccard(sigs[0], sigs[1]) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(token_sets, token_sets)
    def test_order_of_input_rows_irrelevant(self, a, b):
        hasher = MinHasher(num_hashes=64, seed=11)
        fwd = hasher.signatures([a, b])
        rev = hasher.signatures([b, a])
        assert (fwd[0] == rev[1]).all() and (fwd[1] == rev[0]).all()


class TestSCurveProperties:
    @given(st.integers(1, 10), st.integers(1, 50),
           st.floats(min_value=0.0, max_value=1.0))
    def test_probability_in_unit_interval(self, rows, bands, s):
        p = candidate_probability(s, rows, bands)
        assert 0.0 <= p <= 1.0

    @given(st.integers(1, 10), st.integers(1, 50))
    def test_threshold_in_unit_interval(self, rows, bands):
        assert 0.0 < estimated_threshold(rows, bands) <= 1.0

    @given(st.integers(1, 10), st.integers(2, 50),
           st.floats(min_value=0.01, max_value=0.99),
           st.floats(min_value=0.01, max_value=0.99))
    def test_monotone_in_similarity(self, rows, bands, s1, s2):
        lo, hi = sorted((s1, s2))
        assert candidate_probability(lo, rows, bands) <= candidate_probability(
            hi, rows, bands
        ) + 1e-12

    @given(st.integers(1, 8), st.integers(1, 40))
    def test_more_bands_lower_threshold(self, rows, bands):
        t1 = estimated_threshold(rows, bands)
        t2 = estimated_threshold(rows, bands + 5)
        assert t2 <= t1
