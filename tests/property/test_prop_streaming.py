"""Property-based equivalence: stream replay vs the batch pipeline.

The streaming subsystem's headline guarantee: replaying a dataset through
an :class:`~repro.streaming.IncrementalBlockIndex` and querying every
profile over the ``exact`` view reproduces the batch pipeline's retained
neighbourhoods — token blocking (plain or cluster-disambiguated) ->
Block Purging -> Block Filtering -> weighting -> node-centric pruning —
*for every profile*, on any clean-clean or dirty collection, for every
supported weighting scheme and node-centric pruning scheme, with either
query backend, and regardless of interleaved deletes.  Hypothesis hammers
that contract with random collections.
"""

from hypothesis import given, settings, strategies as st

from repro.blocking.schema_aware import make_key_entropy
from repro.core import prepare_blocks
from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth
from repro.graph import BlockingGraph, WeightingScheme, compute_weights
from repro.graph.pruning import (
    BlastPruning,
    CardinalityNodePruning,
    WeightNodePruning,
)
from repro.schema.partition import AttributePartitioning
from repro.streaming import IncrementalBlockIndex, StreamingMetaBlocker

ATTRIBUTES = ("name", "job", "city")
WORDS = ("abram", "ellen", "smith", "jones", "retail", "seller",
         "york", "main", "street")

profiles = st.builds(
    lambda pid, pairs: EntityProfile(pid, tuple(pairs)),
    pid=st.uuids().map(str),
    pairs=st.lists(
        st.tuples(
            st.sampled_from(ATTRIBUTES),
            st.lists(
                st.sampled_from(WORDS), min_size=1, max_size=3
            ).map(" ".join),
        ),
        min_size=0,
        max_size=4,
    ),
)


def _unique_by_id(items):
    seen: set[str] = set()
    out = []
    for item in items:
        if item.profile_id not in seen:
            seen.add(item.profile_id)
            out.append(item)
    return out


profile_lists = st.lists(profiles, min_size=1, max_size=12).map(_unique_by_id)

dirty_datasets = profile_lists.map(
    lambda ps: ERDataset(
        EntityCollection(ps, "E"),
        None,
        GroundTruth([], clean_clean=False),
        name="prop-dirty",
    )
)

clean_clean_datasets = st.tuples(profile_lists, profile_lists).map(
    lambda pair: ERDataset(
        EntityCollection(pair[0], "E1"),
        EntityCollection(pair[1], "E2"),
        GroundTruth([], clean_clean=True),
        name="prop-cc",
    )
)

datasets = st.one_of(dirty_datasets, clean_clean_datasets)

PRUNINGS = [
    BlastPruning(),
    BlastPruning(c=1.5, d=3.0),
    WeightNodePruning(reciprocal=False),
    WeightNodePruning(reciprocal=True),
    CardinalityNodePruning(reciprocal=False),
    CardinalityNodePruning(reciprocal=True, k=2),
]

SCHEMES = [
    WeightingScheme.CHI_H,
    WeightingScheme.CBS,
    WeightingScheme.JS,
    WeightingScheme.ECBS,
    WeightingScheme.ARCS,
]


def partitioning_for(dataset: ERDataset) -> AttributePartitioning:
    """A deterministic two-cluster loose schema with non-trivial entropies."""
    sources = (0, 1) if dataset.is_clean_clean else (0,)
    return AttributePartitioning(
        clusters=[
            [(s, "name") for s in sources],
            [(s, "job") for s in sources],
        ],
        glue=[(s, "city") for s in sources],
        entropies={0: 0.5, 1: 1.75, 2: 0.25},
    )


def batch_neighbourhoods(dataset, scheme, pruning, partitioning=None):
    """gidx -> retained partner set from the batch pipeline."""
    blocks = prepare_blocks(dataset, partitioning=partitioning)
    graph = BlockingGraph(
        blocks,
        key_entropy=(
            None if partitioning is None else make_key_entropy(partitioning)
        ),
    )
    weights = compute_weights(graph, scheme)
    retained = pruning.prune(graph, weights)
    out: dict[int, set[int]] = {g: set() for g, _ in dataset.iter_profiles()}
    for i, j in retained:
        out[i].add(j)
        out[j].add(i)
    return out


def stream_neighbourhoods(
    dataset, scheme, pruning, partitioning=None, backend="vectorized",
    deletions=(),
):
    """gidx -> retained partner set from per-profile streaming queries.

    *deletions* is a set of gidx to upsert, delete, and re-upsert during
    the replay — exercising mutation without changing the final state.
    """
    index = IncrementalBlockIndex(
        clean_clean=dataset.is_clean_clean, partitioning=partitioning
    )
    for gidx, profile in dataset.iter_profiles():
        index.upsert(profile, source=dataset.source_of(gidx))
        if gidx in deletions:
            index.delete(profile.profile_id, source=dataset.source_of(gidx))
            index.upsert(profile, source=dataset.source_of(gidx))
    meta = StreamingMetaBlocker(
        index,
        weighting=scheme,
        pruning=pruning,
        consistency="exact",
        backend=backend,
    )
    offset2 = dataset.offset2 if dataset.is_clean_clean else 0
    out: dict[int, set[int]] = {}
    for gidx, profile in dataset.iter_profiles():
        partners = set()
        for c in meta.candidates(
            profile.profile_id, source=dataset.source_of(gidx)
        ):
            if c.source == 0:
                partners.add(dataset.collection1.index_of(c.profile_id))
            else:
                partners.add(
                    offset2 + dataset.collection2.index_of(c.profile_id)
                )
        out[gidx] = partners
    return out


class TestStreamMatchesBatch:
    @given(
        datasets,
        st.sampled_from(SCHEMES),
        st.sampled_from(PRUNINGS),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_profile_neighbourhood_token_blocking(
        self, dataset, scheme, pruning
    ):
        batch = batch_neighbourhoods(dataset, scheme, pruning)
        stream = stream_neighbourhoods(dataset, scheme, pruning)
        assert stream == batch

    @given(
        datasets,
        st.sampled_from(SCHEMES),
        st.sampled_from(PRUNINGS),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_profile_neighbourhood_schema_aware(
        self, dataset, scheme, pruning
    ):
        partitioning = partitioning_for(dataset)
        batch = batch_neighbourhoods(dataset, scheme, pruning, partitioning)
        stream = stream_neighbourhoods(dataset, scheme, pruning, partitioning)
        assert stream == batch

    @given(datasets, st.sampled_from(PRUNINGS))
    @settings(max_examples=30, deadline=None)
    def test_python_backend_agrees(self, dataset, pruning):
        vectorized = stream_neighbourhoods(
            dataset, WeightingScheme.CHI_H, pruning, backend="vectorized"
        )
        python = stream_neighbourhoods(
            dataset, WeightingScheme.CHI_H, pruning, backend="python"
        )
        assert vectorized == python

    @given(datasets, st.data())
    @settings(max_examples=30, deadline=None)
    def test_interleaved_delete_reupsert_cycles_are_transparent(
        self, dataset, data
    ):
        gidxs = [g for g, _ in dataset.iter_profiles()]
        deletions = data.draw(
            st.sets(st.sampled_from(gidxs)), label="deletions"
        )
        batch = batch_neighbourhoods(
            dataset, WeightingScheme.CHI_H, BlastPruning()
        )
        stream = stream_neighbourhoods(
            dataset,
            WeightingScheme.CHI_H,
            BlastPruning(),
            deletions=deletions,
        )
        assert stream == batch
