"""Property-based tests: the regression comparator's tolerance algebra.

The comparator is the piece of the experiment engine that turns numbers
into CI verdicts, so its arithmetic must hold for arbitrary baselines,
deltas and tolerances — not just the handful of values the integration
tests exercise.  Core invariants:

* comparing any report against itself is always clean;
* the allowance is ``max(absolute, relative * |baseline|)``, exactly;
* ``higher``/``lower`` are mirror images, and a within-allowance move is
  ``ok`` in both directions;
* a metric missing from the baseline is ``new`` (never a failure); a
  required metric missing from the current report is ``missing`` (always
  a failure); an optional one is ``skipped``.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.experiments.comparator import (
    MetricSpec,
    Tolerance,
    compare_metric,
    compare_reports,
)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
bounds = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
directions = st.sampled_from(["higher", "lower", "match"])

metric_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="_"),
    min_size=1, max_size=12,
).filter(lambda name: not name.isdigit())

#: Flat numeric documents plus one nested level — enough structure to
#: exercise the dotted-path resolution without inventing path syntax the
#: generator would have to mirror.
documents = st.dictionaries(
    metric_names,
    st.one_of(finite, st.dictionaries(metric_names, finite, max_size=3)),
    max_size=6,
)


def _paths(document: dict) -> list[str]:
    paths = []
    for key, value in document.items():
        if isinstance(value, dict):
            paths.extend(f"{key}.{inner}" for inner in value)
        else:
            paths.append(key)
    return paths


@given(documents, directions, bounds, bounds)
def test_self_comparison_is_always_clean(document, direction, relative, absolute):
    """A report diffed against itself never regresses, whatever the specs."""
    tolerance = Tolerance(relative=relative, absolute=absolute)
    specs = [
        MetricSpec(name=f"m{i}", baseline_path=path, direction=direction,
                   tolerance=tolerance)
        for i, path in enumerate(_paths(document))
    ]
    # Plus one spec whose path resolves on neither side: "new", not a failure.
    specs.append(MetricSpec(name="ghost", baseline_path="no_such_metric",
                            direction=direction, tolerance=tolerance))
    comparison = compare_reports(document, document, specs)
    assert comparison.ok
    assert not comparison.failures


@given(finite, bounds, bounds)
def test_allowance_is_max_of_absolute_and_relative(baseline, relative, absolute):
    tolerance = Tolerance(relative=relative, absolute=absolute)
    assert tolerance.allowance(baseline) == max(
        absolute, relative * abs(baseline)
    )


@given(finite, finite, bounds, bounds, directions)
def test_verdict_matches_the_tolerance_arithmetic(
    baseline, current, relative, absolute, direction
):
    """The status is a pure function of delta vs allowance and direction."""
    tolerance = Tolerance(relative=relative, absolute=absolute)
    spec = MetricSpec(name="m", baseline_path="m", direction=direction,
                      tolerance=tolerance)
    verdict = compare_metric({"m": current}, {"m": baseline}, spec)
    allowance = tolerance.allowance(baseline)
    delta = current - baseline
    if direction == "match":
        expected = "regression" if abs(delta) > allowance else "ok"
    elif direction == "higher":
        expected = ("regression" if delta < -allowance
                    else "improved" if delta > allowance else "ok")
    else:
        expected = ("regression" if delta > allowance
                    else "improved" if delta < -allowance else "ok")
    assert verdict.status == expected
    assert verdict.failed == (expected == "regression")
    assert verdict.delta is not None and math.isclose(
        verdict.delta, delta, rel_tol=0, abs_tol=0
    )


@given(finite, finite, bounds, bounds)
def test_higher_and_lower_are_mirror_images(baseline, current, relative, absolute):
    """Negating both sides swaps the better-is-higher/lower verdicts."""
    tolerance = Tolerance(relative=relative, absolute=absolute)
    higher = compare_metric(
        {"m": current}, {"m": baseline},
        MetricSpec(name="m", baseline_path="m", direction="higher",
                   tolerance=tolerance),
    )
    mirrored = compare_metric(
        {"m": -current}, {"m": -baseline},
        MetricSpec(name="m", baseline_path="m", direction="lower",
                   tolerance=tolerance),
    )
    assert higher.status == mirrored.status


@given(finite, bounds, bounds, directions)
def test_improvement_is_never_a_regression(baseline, relative, absolute, direction):
    """Moving in the better direction can only be ok or improved."""
    if direction == "match":
        return
    better = baseline + 1.0 if direction == "higher" else baseline - 1.0
    verdict = compare_metric(
        {"m": better}, {"m": baseline},
        MetricSpec(name="m", baseline_path="m", direction=direction,
                   tolerance=Tolerance(relative=relative, absolute=absolute)),
    )
    assert verdict.status in ("ok", "improved")
    assert not verdict.failed


@given(finite, directions, st.booleans())
def test_missing_and_new_metric_handling(value, direction, required):
    """Baseline-missing is informational; current-missing fails iff required."""
    spec = MetricSpec(name="m", baseline_path="m", direction=direction,
                      required=required)
    new = compare_metric({"m": value}, {}, spec)
    assert new.status == "new"
    assert not new.failed

    absent = compare_metric({}, {"m": value}, spec)
    assert absent.status == ("missing" if required else "skipped")
    assert absent.failed == required

    both_absent = compare_metric({}, {}, spec)
    assert both_absent.status == "new"  # baseline checked first
    assert not both_absent.failed


@given(finite, finite)
def test_nan_is_invalid_and_fails(baseline, current):
    spec = MetricSpec(name="m", baseline_path="m")
    for left, right in ((math.nan, current), (baseline, math.nan)):
        verdict = compare_metric({"m": right}, {"m": left}, spec)
        assert verdict.status == "invalid"
        assert verdict.failed


@given(documents, documents, directions, bounds, bounds)
def test_comparison_failure_set_matches_verdicts(
    current, baseline, direction, relative, absolute
):
    """Comparison.ok/failures are consistent with the per-verdict flags."""
    tolerance = Tolerance(relative=relative, absolute=absolute)
    paths = sorted(set(_paths(current)) | set(_paths(baseline)))
    specs = [
        MetricSpec(name=f"m{i}", baseline_path=path, direction=direction,
                   tolerance=tolerance)
        for i, path in enumerate(paths)
    ]
    comparison = compare_reports(current, baseline, specs)
    assert comparison.ok == (not comparison.failures)
    assert set(comparison.failures) == {
        v for v in comparison.verdicts if v.failed
    }
    payload = comparison.to_dict()
    assert payload["ok"] == comparison.ok
    assert payload["failed"] == [v.name for v in comparison.failures]
