"""Property-based tests: contingency tables, chi-squared, pruning."""

from hypothesis import assume, given, strategies as st

from repro.blocking.base import Block, BlockCollection
from repro.graph import BlockingGraph
from repro.graph.contingency import ContingencyTable
from repro.graph.pruning import (
    BlastPruning,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    WeightEdgePruning,
    WeightNodePruning,
)


@st.composite
def consistent_counts(draw):
    total = draw(st.integers(min_value=1, max_value=200))
    blocks_u = draw(st.integers(min_value=0, max_value=total))
    blocks_v = draw(st.integers(min_value=0, max_value=total))
    low = max(0, blocks_u + blocks_v - total)
    high = min(blocks_u, blocks_v)
    shared = draw(st.integers(min_value=low, max_value=high))
    return shared, blocks_u, blocks_v, total


class TestContingencyProperties:
    @given(consistent_counts())
    def test_cells_nonnegative_and_margins_sum(self, counts):
        shared, bu, bv, total = counts
        t = ContingencyTable.from_counts(shared, bu, bv, total)
        assert min(t.n11, t.n12, t.n21, t.n22) >= 0
        assert t.total == total
        assert t.row_totals[0] == bu
        assert t.col_totals[0] == bv

    @given(consistent_counts())
    def test_chi_squared_nonnegative_and_bounded(self, counts):
        shared, bu, bv, total = counts
        t = ContingencyTable.from_counts(shared, bu, bv, total)
        statistic = t.chi_squared()
        assert statistic >= 0.0
        # for a 2x2 table the statistic is at most n (phi^2 <= 1)
        assert statistic <= total + 1e-9

    @given(consistent_counts())
    def test_transpose_invariance(self, counts):
        shared, bu, bv, total = counts
        a = ContingencyTable.from_counts(shared, bu, bv, total).chi_squared()
        b = ContingencyTable.from_counts(shared, bv, bu, total).chi_squared()
        assert abs(a - b) < 1e-9


@st.composite
def weighted_graphs(draw):
    """A random star-free dirty collection plus positive edge weights."""
    keyed = draw(
        st.dictionaries(
            keys=st.text(alphabet="xyz", min_size=1, max_size=3),
            values=st.sets(st.integers(0, 9), min_size=2, max_size=5),
            min_size=1,
            max_size=8,
        )
    )
    blocks = [
        Block(key, frozenset(members)) for key, members in sorted(keyed.items())
    ]
    graph = BlockingGraph(BlockCollection(blocks, False))
    edges = [edge for edge, _ in graph.edges()]
    assume(edges)
    weights = {
        edge: draw(st.floats(min_value=0.01, max_value=10.0)) for edge in edges
    }
    return graph, weights


ALL_SCHEMES = [
    WeightEdgePruning(),
    CardinalityEdgePruning(k=3),
    WeightNodePruning(reciprocal=False),
    WeightNodePruning(reciprocal=True),
    CardinalityNodePruning(reciprocal=False, k=2),
    CardinalityNodePruning(reciprocal=True, k=2),
    BlastPruning(),
]


class TestPruningProperties:
    @given(weighted_graphs())
    def test_retained_subset_of_edges(self, graph_weights):
        graph, weights = graph_weights
        for scheme in ALL_SCHEMES:
            assert scheme.prune(graph, weights) <= set(weights)

    @given(weighted_graphs())
    def test_reciprocal_subset_of_redefined(self, graph_weights):
        graph, weights = graph_weights
        wnp1 = WeightNodePruning(False).prune(graph, weights)
        wnp2 = WeightNodePruning(True).prune(graph, weights)
        cnp1 = CardinalityNodePruning(False, k=2).prune(graph, weights)
        cnp2 = CardinalityNodePruning(True, k=2).prune(graph, weights)
        assert wnp2 <= wnp1
        assert cnp2 <= cnp1

    @given(weighted_graphs())
    def test_every_scheme_retains_something(self, graph_weights):
        graph, weights = graph_weights
        for scheme in ALL_SCHEMES:
            assert scheme.prune(graph, weights)

    @given(weighted_graphs())
    def test_blast_keeps_global_max(self, graph_weights):
        graph, weights = graph_weights
        best = max(weights, key=lambda e: weights[e])
        assert best in BlastPruning().prune(graph, weights)

    @given(weighted_graphs(), st.floats(min_value=1.0, max_value=8.0))
    def test_blast_monotone_in_c(self, graph_weights, c):
        graph, weights = graph_weights
        strict = BlastPruning(c=1.0).prune(graph, weights)
        lenient = BlastPruning(c=c).prune(graph, weights)
        assert strict <= lenient

    @given(weighted_graphs())
    def test_cep_cardinality_bound(self, graph_weights):
        graph, weights = graph_weights
        kept = CardinalityEdgePruning(k=3).prune(graph, weights)
        assert len(kept) <= 3
