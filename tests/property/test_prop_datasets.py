"""Property-based tests: generated datasets always satisfy ER invariants."""

from hypothesis import given, settings, strategies as st

from repro.datasets.generator import (
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_clean_clean_dataset,
    make_dirty_dataset,
)

FIELDS = (
    FieldSpec("name", lambda rng, v: v.pick(rng, v.first_names)),
    FieldSpec("year", lambda rng, v: str(int(rng.integers(1980, 1990)))),
)
SCHEMA_A = SourceSchema("A", {"name": ("name",), "year": ("year",)})
SCHEMA_B = SourceSchema("B", {"n": ("name",), "y": ("year",)})


class TestCleanCleanInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        size1=st.integers(2, 30),
        size2=st.integers(2, 30),
        seed=st.integers(0, 10_000),
    )
    def test_sizes_ids_and_truth(self, size1, size2, seed):
        matches = min(size1, size2) // 2
        ds = make_clean_clean_dataset(
            "t", FIELDS, SCHEMA_A, SCHEMA_B, size1, size2, matches, seed
        )
        assert len(ds.collection1) == size1
        assert len(ds.collection2) == size2
        assert ds.num_duplicates == matches
        # every truth pair references an E1 index and an E2 index
        for i, j in ds.truth_pairs:
            assert ds.source_of(i) == 0
            assert ds.source_of(j) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_each_profile_matched_at_most_once(self, seed):
        ds = make_clean_clean_dataset(
            "t", FIELDS, SCHEMA_A, SCHEMA_B, 20, 15, 7, seed
        )
        left = [i for i, _ in ds.truth_pairs]
        right = [j for _, j in ds.truth_pairs]
        assert len(left) == len(set(left))  # clean source 1
        assert len(right) == len(set(right))  # clean source 2


class TestDirtyInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 5), min_size=1, max_size=15),
        seed=st.integers(0, 10_000),
    )
    def test_profile_count_and_match_count(self, sizes, seed):
        ds = make_dirty_dataset("t", FIELDS, SCHEMA_A, sizes, seed)
        assert ds.num_profiles == sum(sizes)
        assert ds.num_duplicates == sum(s * (s - 1) // 2 for s in sizes)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_truth_pairs_have_distinct_members(self, seed):
        ds = make_dirty_dataset("t", FIELDS, SCHEMA_A, [3, 3, 2], seed)
        for i, j in ds.truth_pairs:
            assert i < j


class TestNoiseProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        value=st.text(
            alphabet="abcdefghij ", min_size=1, max_size=30
        ).filter(lambda v: v.strip()),
        seed=st.integers(0, 10_000),
    )
    def test_corrupt_never_returns_blank(self, value, seed):
        from repro.utils.rng import make_rng

        noise = NoiseModel(typo_prob=0.5, token_drop_prob=0.5,
                           abbreviate_prob=0.5, missing_prob=0.0)
        out = noise.corrupt(make_rng(seed), value)
        assert out is None or out.strip()

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_zero_noise_identity(self, seed):
        from repro.utils.rng import make_rng

        noise = NoiseModel(0, 0, 0, 0)
        assert noise.corrupt(make_rng(seed), "stable value") == "stable value"
