"""Property-based tests: text transformations and set similarities."""

import math

from hypothesis import given, strategies as st

from repro.schema.similarity import cosine, dice, jaccard
from repro.utils.tokenize import normalize, qgrams, tokenize

text = st.text(max_size=60)
token_sets = st.sets(st.text(alphabet="abcdefg", min_size=1, max_size=4), max_size=12)


class TestNormalizeProperties:
    @given(text)
    def test_idempotent(self, value):
        assert normalize(normalize(value)) == normalize(value)

    @given(text)
    def test_output_alphabet(self, value):
        out = normalize(value)
        assert out == out.strip()
        assert "  " not in out

    @given(text)
    def test_case_insensitive(self, value):
        assert normalize(value.upper()) == normalize(value.lower())


class TestTokenizeProperties:
    @given(text, st.integers(min_value=1, max_value=5))
    def test_tokens_respect_min_length(self, value, min_length):
        assert all(len(t) >= min_length for t in tokenize(value, min_length))

    @given(text)
    def test_tokens_are_normalized_words(self, value):
        for token in tokenize(value):
            assert token == normalize(token)

    @given(text, st.integers(min_value=2, max_value=5))
    def test_qgrams_have_bounded_length(self, value, q):
        for gram in qgrams(value, q):
            assert 1 <= len(gram) <= q


class TestSimilarityProperties:
    @given(token_sets, token_sets)
    def test_bounds(self, a, b):
        for fn in (jaccard, dice, cosine):
            assert 0.0 <= fn(a, b) <= 1.0 + 1e-12

    @given(token_sets, token_sets)
    def test_symmetry(self, a, b):
        for fn in (jaccard, dice, cosine):
            assert fn(a, b) == fn(b, a)

    @given(token_sets)
    def test_identity(self, a):
        for fn in (jaccard, dice, cosine):
            assert fn(a, a) == (1.0 if a else 0.0)

    @given(token_sets, token_sets)
    def test_zero_iff_disjoint(self, a, b):
        disjoint = not (a & b) or not a or not b
        for fn in (jaccard, dice, cosine):
            assert (fn(a, b) == 0.0) == disjoint

    @given(token_sets, token_sets)
    def test_dice_dominates_jaccard(self, a, b):
        assert dice(a, b) >= jaccard(a, b) - 1e-12

    @given(token_sets, token_sets)
    def test_jaccard_triangle_via_distance(self, a, b):
        # jaccard distance d = 1 - j satisfies d(a,b) <= d(a,c) + d(c,b)
        # check the degenerate c = a case, which must always hold
        d_ab = 1 - jaccard(a, b)
        d_aa = 1 - jaccard(a, a) if a else 1.0
        assert d_ab <= d_aa + d_ab + 1e-12


class TestEntropyProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=12))
    def test_entropy_bounds(self, counts):
        from repro.schema.entropy import shannon_entropy

        h = shannon_entropy(counts)
        assert h >= 0.0
        positive = [c for c in counts if c > 0]
        if positive:
            assert h <= math.log2(len(positive)) + 1e-9

    @given(st.integers(min_value=1, max_value=64))
    def test_uniform_is_maximal(self, n):
        from repro.schema.entropy import shannon_entropy

        assert shannon_entropy([5] * n) <= math.log2(n) + 1e-9
        assert shannon_entropy([5] * n) >= math.log2(n) - 1e-9
