"""Property-based tests: the full BLAST pipeline on random tiny datasets.

Random clean-clean tasks are generated with the library's own generator
(different field layouts, sizes and seeds per example) and pushed through
the complete pipeline; the properties are the structural guarantees the
system must never violate, whatever the data looks like.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Blast, BlastConfig
from repro.datasets import samplers as s
from repro.datasets.generator import (
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_clean_clean_dataset,
)
from repro.metrics import evaluate_blocks

FIELD_CHOICES = (
    FieldSpec("name", s.person_name),
    FieldSpec("title", s.title),
    FieldSpec("year", s.year),
    FieldSpec("city", s.city),
    FieldSpec("brand", s.brand),
)


@st.composite
def random_datasets(draw):
    num_fields = draw(st.integers(min_value=2, max_value=5))
    fields = FIELD_CHOICES[:num_fields]
    noise = NoiseModel(
        typo_prob=draw(st.floats(0, 0.2)),
        token_drop_prob=draw(st.floats(0, 0.2)),
        abbreviate_prob=draw(st.floats(0, 0.2)),
        missing_prob=draw(st.floats(0, 0.1)),
    )
    schema1 = SourceSchema(
        "A", {f.name: (f.name,) for f in fields}, noise=noise
    )
    schema2 = SourceSchema(
        "B", {f"{f.name}_2": (f.name,) for f in fields}, noise=noise
    )
    size1 = draw(st.integers(min_value=5, max_value=40))
    size2 = draw(st.integers(min_value=5, max_value=40))
    matches = draw(st.integers(min_value=1, max_value=min(size1, size2)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return make_clean_clean_dataset(
        "prop", fields, schema1, schema2, size1, size2, matches, seed
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_datasets())
def test_output_pairs_subset_of_initial(dataset):
    result = Blast().run(dataset)
    final_pairs = {tuple(sorted(b.profiles)) for b in result.blocks}
    initial_pairs = result.initial_blocks.distinct_pairs()
    assert final_pairs <= initial_pairs


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_datasets())
def test_output_is_redundancy_free(dataset):
    result = Blast().run(dataset)
    assert result.blocks.aggregate_cardinality == len(result.blocks)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_datasets())
def test_meta_blocking_never_lowers_pq(dataset):
    result = Blast().run(dataset)
    before = evaluate_blocks(result.initial_blocks, dataset)
    after = evaluate_blocks(result.blocks, dataset)
    if before.comparisons > 0 and after.comparisons > 0:
        assert after.pair_quality >= before.pair_quality


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_datasets())
def test_partitioning_covers_every_attribute(dataset):
    partitioning = Blast().extract_loose_schema(dataset)
    for source, collection in ((0, dataset.collection1),
                               (1, dataset.collection2)):
        for attribute in collection.attribute_names:
            assert partitioning.cluster_of(source, attribute) is not None


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_datasets(), st.floats(min_value=1.0, max_value=4.0))
def test_pc_monotone_in_pruning_c(dataset, c):
    strict = Blast(BlastConfig(pruning_c=1.0)).run(dataset)
    lenient = Blast(BlastConfig(pruning_c=c)).run(dataset)
    pc_strict = evaluate_blocks(strict.blocks, dataset).pair_completeness
    pc_lenient = evaluate_blocks(lenient.blocks, dataset).pair_completeness
    assert pc_lenient >= pc_strict - 1e-12
