"""Shared fixtures: the paper's Figure 1 example and small datasets."""

from __future__ import annotations

import pytest

from repro.data import EntityCollection, EntityProfile, ERDataset, GroundTruth


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the committed golden CLI fixtures "
        "(tests/integration/goldens/) instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """Whether golden-file tests should refresh their fixtures."""
    return bool(request.config.getoption("--update-goldens"))


def _figure1_profiles() -> tuple[EntityProfile, ...]:
    """The four entity profiles of Figure 1a, verbatim."""
    p1 = EntityProfile.from_dict(
        "p1",
        {"Name": "John Abram Jr", "profession": "car seller", "year": "1985",
         "Addr.": "Main street"},
    )
    p2 = EntityProfile.from_dict(
        "p2",
        {"FirstName": "Ellen", "SecondName": "Smith", "year": "85",
         "occupation": "retail", "mail": "Abram st. 30 NY"},
    )
    p3 = EntityProfile.from_dict(
        "p3",
        {"name1": "Jon Jr", "name2": "Abram", "birth year": "85",
         "job": "car retail", "Loc": "Main st."},
    )
    p4 = EntityProfile.from_dict(
        "p4",
        {"full name": "Ellen Smith", "b. date": "May 10 1985",
         "work info": "retailer", "loc": "Abram street NY"},
    )
    return p1, p2, p3, p4


@pytest.fixture
def figure1_clean_clean() -> ERDataset:
    """Figure 1 as a clean-clean task: {p1, p2} vs {p3, p4}.

    Global indices: p1=0, p2=1, p3=2, p4=3.  Matches: p1~p3, p2~p4.
    """
    p1, p2, p3, p4 = _figure1_profiles()
    return ERDataset(
        EntityCollection([p1, p2], "S1"),
        EntityCollection([p3, p4], "S2"),
        GroundTruth([("p1", "p3"), ("p2", "p4")]),
        name="figure1-cc",
    )


@pytest.fixture
def figure1_dirty() -> ERDataset:
    """Figure 1 as the paper draws it: one collection of four profiles
    "from four different data sources".  Indices p1=0 .. p4=3."""
    profiles = _figure1_profiles()
    return ERDataset(
        EntityCollection(profiles, "web"),
        None,
        GroundTruth([("p1", "p3"), ("p2", "p4")], clean_clean=False),
        name="figure1-dirty",
    )


@pytest.fixture
def tiny_clean_clean() -> ERDataset:
    """A minimal fully-mappable pair for fast pipeline tests."""
    left = [
        EntityProfile.from_dict("a0", {"name": "alice carol", "city": "rome"}),
        EntityProfile.from_dict("a1", {"name": "bob dylan", "city": "oslo"}),
        EntityProfile.from_dict("a2", {"name": "carol danvers", "city": "kyoto"}),
    ]
    right = [
        EntityProfile.from_dict("b0", {"fullname": "alice carol", "town": "rome"}),
        EntityProfile.from_dict("b1", {"fullname": "bob dilan", "town": "oslo"}),
        EntityProfile.from_dict("b2", {"fullname": "eve moneypenny", "town": "quito"}),
    ]
    return ERDataset(
        EntityCollection(left, "L"),
        EntityCollection(right, "R"),
        GroundTruth([("a0", "b0"), ("a1", "b1")]),
        name="tiny",
    )
