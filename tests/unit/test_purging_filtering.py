"""Tests for Block Purging and Block Filtering."""

import pytest

from repro.blocking import TokenBlocking, block_filtering, block_purging
from repro.blocking.base import Block, BlockCollection


class TestBlockPurging:
    def test_drops_blocks_covering_most_profiles(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        purged = block_purging(blocks, num_profiles=4, max_profile_ratio=0.5)
        # "abram" covers 4/4 profiles > 0.5 -> purged; all others stay.
        assert "abram" not in {b.key for b in purged}
        assert len(purged) == len(blocks) - 1

    def test_ratio_one_keeps_everything(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        purged = block_purging(blocks, num_profiles=4, max_profile_ratio=1.0)
        assert len(purged) == len(blocks)

    def test_max_comparisons_cap(self):
        big = Block("big", frozenset(range(10)), frozenset(range(10, 25)))
        small = Block("small", frozenset({0}), frozenset({10}))
        bc = BlockCollection([big, small], True)
        purged = block_purging(bc, num_profiles=1000, max_comparisons=100)
        assert [b.key for b in purged] == ["small"]

    def test_invalid_ratio_rejected(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        with pytest.raises(ValueError):
            block_purging(blocks, num_profiles=4, max_profile_ratio=0.0)

    def test_invalid_profile_count_rejected(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        with pytest.raises(ValueError):
            block_purging(blocks, num_profiles=0)


class TestBlockFiltering:
    def test_never_increases_comparisons(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        filtered = block_filtering(blocks, ratio=0.8)
        assert filtered.aggregate_cardinality <= blocks.aggregate_cardinality

    def test_ratio_one_is_identity_on_cardinality(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        filtered = block_filtering(blocks, ratio=1.0)
        assert filtered.aggregate_cardinality == blocks.aggregate_cardinality

    def test_keeps_profiles_in_their_smallest_blocks(self):
        # profile 0 sits in one small and one large block; at ratio 0.5 it
        # must remain only in the small one.
        small = Block("small", frozenset({0}), frozenset({10}))
        large = Block("large", frozenset({0, 1, 2}), frozenset({10, 11, 12}))
        bc = BlockCollection([small, large], True)
        filtered = block_filtering(bc, ratio=0.5)
        by_key = {b.key: b for b in filtered}
        assert 0 in by_key["small"].profiles
        assert 0 not in by_key.get("large", Block("x", frozenset())).profiles

    def test_drops_blocks_left_without_comparisons(self):
        small1 = Block("s1", frozenset({0}), frozenset({10}))
        small2 = Block("s2", frozenset({1}), frozenset({10}))
        large = Block("large", frozenset({0, 1}), frozenset({10, 11, 12}))
        bc = BlockCollection([small1, small2, large], True)
        filtered = block_filtering(bc, ratio=0.5)
        # 11 and 12 appear only in "large"; they are retained there, but 0
        # and 1 left it, so no left-side remains -> block dropped.
        assert "large" not in {b.key for b in filtered}

    def test_dirty_mode(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        filtered = block_filtering(blocks, ratio=0.5)
        assert filtered.aggregate_cardinality < blocks.aggregate_cardinality
        assert not filtered.is_clean_clean

    def test_invalid_ratio_rejected(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        with pytest.raises(ValueError):
            block_filtering(blocks, ratio=1.5)
