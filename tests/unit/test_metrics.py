"""Tests for PC / PQ / F1 and the delta metrics."""

import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.metrics import delta_pc, delta_pq, evaluate_blocks, f1_score
from repro.metrics.quality import BlockingQuality


class TestEvaluateBlocks:
    def test_figure1_baseline(self, figure1_clean_clean):
        blocks = TokenBlocking().build(figure1_clean_clean)
        q = evaluate_blocks(blocks, figure1_clean_clean)
        assert q.pair_completeness == 1.0  # both matches co-occur
        assert q.detected_duplicates == 2
        assert q.comparisons == blocks.aggregate_cardinality
        assert q.pair_quality == pytest.approx(2 / q.comparisons)

    def test_missing_match_lowers_pc(self, figure1_clean_clean):
        # keep only the p1-p3 comparison
        blocks = BlockCollection(
            [Block("only", frozenset({0}), frozenset({2}))], True
        )
        q = evaluate_blocks(blocks, figure1_clean_clean)
        assert q.pair_completeness == 0.5
        assert q.pair_quality == 1.0

    def test_pq_charges_for_redundancy(self, figure1_clean_clean):
        once = BlockCollection([Block("a", frozenset({0}), frozenset({2}))], True)
        twice = BlockCollection(
            [
                Block("a", frozenset({0}), frozenset({2})),
                Block("b", frozenset({0}), frozenset({2})),
            ],
            True,
        )
        assert evaluate_blocks(twice, figure1_clean_clean).pair_quality == pytest.approx(
            evaluate_blocks(once, figure1_clean_clean).pair_quality / 2
        )

    def test_empty_collection(self, figure1_clean_clean):
        q = evaluate_blocks(BlockCollection([], True), figure1_clean_clean)
        assert q.pair_completeness == 0.0
        assert q.pair_quality == 0.0
        assert q.f1 == 0.0


class TestF1:
    def test_harmonic_mean(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_property_on_quality_object(self):
        q = BlockingQuality(0.8, 0.2, 4, 5, 20, 3)
        assert q.f1 == pytest.approx(f1_score(0.8, 0.2))


class TestDeltas:
    def _quality(self, pc: float, pq: float) -> BlockingQuality:
        return BlockingQuality(pc, pq, 0, 0, 0, 0)

    def test_delta_pc_sign_convention(self):
        base, other = self._quality(0.8, 0.1), self._quality(0.88, 0.1)
        assert delta_pc(base, other) == pytest.approx(0.1)
        assert delta_pc(other, base) == pytest.approx(-0.0909, abs=1e-3)

    def test_delta_pq(self):
        base, other = self._quality(0.9, 0.01), self._quality(0.9, 0.05)
        assert delta_pq(base, other) == pytest.approx(4.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            delta_pc(self._quality(0.0, 0.1), self._quality(0.5, 0.1))
        with pytest.raises(ValueError):
            delta_pq(self._quality(0.5, 0.0), self._quality(0.5, 0.1))
