"""Tests for the component registry (repro.core.registry)."""

import pytest

from repro.core import BlastConfig, build_pipeline
from repro.core.registry import BLOCKERS, PRUNERS, WEIGHTINGS, Registry
from repro.graph.pruning import PruningScheme
from repro.graph.weights import WeightingScheme


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("factory")
        def make():
            return "made"

        assert registry.get("factory") is make
        assert make() == "made"  # the decorator returns the function intact

    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        assert registry.get("a") == 1  # first registration wins

    def test_unknown_name_lists_valid_names(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(ValueError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message

    def test_empty_or_non_string_names_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register("", 1)
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register(3, 1)

    def test_names_sorted(self):
        registry = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, name)
        assert registry.names() == ("alpha", "mid", "zeta")
        assert list(registry) == ["alpha", "mid", "zeta"]


class TestBuiltinRegistrations:
    def test_blockers(self):
        assert set(BLOCKERS.names()) >= {
            "canopy", "qgrams", "schema-aware", "suffix-array", "token"
        }

    def test_weightings_cover_every_scheme(self):
        for scheme in WeightingScheme:
            assert WEIGHTINGS.get(scheme.value) is scheme

    def test_prunings(self):
        assert set(PRUNERS.names()) >= {
            "blast", "cep", "cnp1", "cnp2", "wep", "wnp1", "wnp2"
        }
        for name in PRUNERS.names():
            assert isinstance(PRUNERS.get(name)(BlastConfig()), PruningScheme)

    def test_unknown_blocker_error_names_the_alternatives(self):
        with pytest.raises(ValueError) as excinfo:
            BLOCKERS.get("sorted-neighborhood")
        assert "suffix-array" in str(excinfo.value)


class TestBuildPipeline:
    def test_schema_aware_gets_schema_stage_prepended(self):
        assert build_pipeline().stage_names == (
            "schema-extraction",
            "schema-aware-blocking",
            "block-purging",
            "block-filtering",
            "meta-blocking",
        )

    def test_schema_free_blocker_skips_schema_stage(self):
        assert build_pipeline(blocker="token").stage_names == (
            "token-blocking",
            "block-purging",
            "block-filtering",
            "meta-blocking",
        )

    def test_registry_names_resolve_end_to_end(self, tiny_clean_clean):
        pipeline = build_pipeline(
            blocker="suffix-array", weighting="cbs", pruning="wnp1"
        )
        result = pipeline.run(tiny_clean_clean)
        assert result.blocks.aggregate_cardinality == len(result.blocks)

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown blocker"):
            build_pipeline(blocker="nope")
        with pytest.raises(ValueError, match="unknown weighting"):
            build_pipeline(weighting="nope")
        with pytest.raises(ValueError, match="unknown pruning"):
            build_pipeline(pruning="nope")
