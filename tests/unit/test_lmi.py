"""Tests for Loose attribute-Match Induction (Algorithm 1)."""

import pytest

from repro.schema.attribute_profile import AttributeProfile
from repro.schema.lmi import LooseAttributeMatchInduction


def _profile(source: int, name: str, tokens: set[str]) -> AttributeProfile:
    return AttributeProfile(source, name, frozenset(tokens))


class TestClustering:
    def test_identical_attributes_cluster(self):
        p1 = [_profile(0, "name", {"john", "ellen", "smith"})]
        p2 = [_profile(1, "fullname", {"john", "ellen", "smith"})]
        part = LooseAttributeMatchInduction().induce(p1, p2)
        assert part.cluster_of(0, "name") == part.cluster_of(1, "fullname") != 0

    def test_dissimilar_attributes_fall_to_glue(self):
        p1 = [_profile(0, "name", {"john", "ellen"})]
        p2 = [_profile(1, "year", {"1985", "1990"})]
        part = LooseAttributeMatchInduction().induce(p1, p2)
        assert part.cluster_of(0, "name") == 0
        assert part.cluster_of(1, "year") == 0

    def test_mutuality_required(self):
        # b is a's best match, but b's best match is c (by a wide margin):
        # with a strict alpha, a<->b is not mutual and no cluster forms
        # containing a.
        a = _profile(0, "a", {"x", "y", "q1", "q2", "q3", "q4"})
        b = _profile(1, "b", {"x", "y", "z", "w"})
        c = _profile(0, "c", {"x", "y", "z", "w"})
        part = LooseAttributeMatchInduction(alpha=0.99).induce([a, c], [b])
        assert part.cluster_of(0, "c") == part.cluster_of(1, "b") != 0
        assert part.cluster_of(0, "a") == 0

    def test_alpha_relaxes_candidates(self):
        # same topology, forgiving alpha: a joins the component.
        # sim(a,b) = 2/8 = 0.25, sim(c,b) = 1.0 -> a is a candidate of b
        # only when 0.25 >= alpha * 1.0, i.e. alpha <= 0.25.
        a = _profile(0, "a", {"x", "y", "q1", "q2", "q3", "q4"})
        b = _profile(1, "b", {"x", "y", "z", "w"})
        c = _profile(0, "c", {"x", "y", "z", "w"})
        part = LooseAttributeMatchInduction(alpha=0.2).induce([a, c], [b])
        assert part.cluster_of(0, "a") == part.cluster_of(1, "b")

    def test_zero_similarity_never_links(self):
        p1 = [_profile(0, "a", {"x"})]
        p2 = [_profile(1, "b", {"y"})]
        part = LooseAttributeMatchInduction(alpha=0.1).induce(p1, p2)
        assert part.num_clusters == 1  # glue only

    def test_glue_disabled(self):
        p1 = [_profile(0, "a", {"x"})]
        p2 = [_profile(1, "b", {"y"})]
        part = LooseAttributeMatchInduction(glue_cluster=False).induce(p1, p2)
        assert part.num_clusters == 0
        assert part.cluster_of(0, "a") is None


class TestDirtyMode:
    def test_within_source_pairs(self):
        profiles = [
            _profile(0, "first", {"john", "ellen", "ann"}),
            _profile(0, "nick", {"john", "ellen", "ann"}),
            _profile(0, "year", {"1985"}),
        ]
        part = LooseAttributeMatchInduction().induce(profiles, None)
        assert part.cluster_of(0, "first") == part.cluster_of(0, "nick") != 0
        assert part.cluster_of(0, "year") == 0


class TestCandidatePairs:
    def test_restricts_scored_pairs(self):
        name1 = _profile(0, "name1", {"a", "b", "c"})
        name2 = _profile(1, "name2", {"a", "b", "c"})
        street1 = _profile(0, "street1", {"a", "b", "c"})
        # without candidates street1 would also cluster with name2; the
        # candidate list excludes it.
        part = LooseAttributeMatchInduction().induce(
            [name1, street1], [name2],
            candidate_pairs=[((0, "name1"), (1, "name2"))],
        )
        assert part.cluster_of(0, "name1") == part.cluster_of(1, "name2") != 0
        assert part.cluster_of(0, "street1") == 0

    def test_unknown_refs_in_candidates_ignored(self):
        p1 = [_profile(0, "a", {"x"})]
        p2 = [_profile(1, "b", {"x"})]
        part = LooseAttributeMatchInduction().induce(
            p1, p2,
            candidate_pairs=[((0, "a"), (1, "b")), ((0, "ghost"), (1, "b"))],
        )
        assert part.cluster_of(0, "a") == part.cluster_of(1, "b") != 0


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            LooseAttributeMatchInduction(alpha=0.0)
        with pytest.raises(ValueError):
            LooseAttributeMatchInduction(alpha=1.5)

    def test_duplicate_refs_rejected(self):
        p = _profile(0, "a", {"x"})
        with pytest.raises(ValueError, match="duplicate"):
            LooseAttributeMatchInduction().induce([p], [p])
