"""Tests for the array-backed meta-blocking backend (repro.graph.vectorized)."""

import numpy as np
import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.core import BlastConfig
from repro.core.registry import BACKENDS
from repro.graph import (
    ArrayBlockingGraph,
    BlockingGraph,
    MetaBlocker,
    WeightingScheme,
    compute_weights,
)
from repro.graph.metablocking import reference_metablocking
from repro.graph.pruning import (
    BlastPruning,
    CardinalityNodePruning,
    PruningScheme,
    WeightEdgePruning,
)
from repro.graph.vectorized import (
    prune_mask,
    supports_pruning,
    vectorized_metablocking,
)


def _blocks(figure1_dirty):
    return TokenBlocking().build(figure1_dirty)


class TestArrayGraph:
    def test_edges_sorted_and_match_reference(self, figure1_dirty):
        collection = _blocks(figure1_dirty)
        agraph = ArrayBlockingGraph(collection)
        graph = BlockingGraph(collection)
        assert agraph.edge_list() == [edge for edge, _ in graph.edges()]
        assert agraph.num_edges == graph.num_edges
        assert agraph.num_nodes == graph.num_nodes
        assert agraph.num_blocks == graph.num_blocks

    def test_shared_blocks_match_figure_1c(self, figure1_dirty):
        agraph = ArrayBlockingGraph(_blocks(figure1_dirty))
        cbs = dict(zip(agraph.edge_list(), agraph.shared.tolist()))
        assert cbs[(0, 2)] == 4
        assert cbs[(0, 1)] == 1

    def test_degrees_dense(self, figure1_dirty):
        agraph = ArrayBlockingGraph(_blocks(figure1_dirty))
        assert agraph.degrees[:4].tolist() == [3, 3, 3, 3]

    def test_empty_collection(self):
        agraph = ArrayBlockingGraph(BlockCollection([], True))
        assert agraph.num_edges == 0
        assert agraph.weights(WeightingScheme.CHI_H).size == 0
        assert prune_mask(BlastPruning(), agraph, np.zeros(0)).size == 0

    def test_entropy_mass_uses_key_entropy(self):
        blocks = BlockCollection(
            [
                Block("high#1", frozenset({0}), frozenset({5})),
                Block("low#2", frozenset({0}), frozenset({5})),
            ],
            True,
        )
        entropies = {"high#1": 3.0, "low#2": 1.0}
        agraph = ArrayBlockingGraph(blocks, key_entropy=entropies.__getitem__)
        assert agraph.entropy_mass.tolist() == [4.0]
        assert agraph.shared.tolist() == [2]


class TestWeights:
    @pytest.mark.parametrize("scheme", list(WeightingScheme))
    def test_matches_reference_exactly(self, figure1_dirty, scheme):
        collection = _blocks(figure1_dirty)
        reference = compute_weights(BlockingGraph(collection), scheme)
        agraph = ArrayBlockingGraph(collection)
        vectorized = agraph.weights(scheme)
        for position, edge in enumerate(agraph.edge_list()):
            assert vectorized[position] == pytest.approx(
                reference[edge], abs=1e-12
            )

    def test_chi_h_zeroes_negative_association(self, figure1_dirty):
        # p1-p2 share only the ambiguous "abram" block: below expectation.
        collection = _blocks(figure1_dirty)
        agraph = ArrayBlockingGraph(collection)
        weights = dict(
            zip(agraph.edge_list(), agraph.weights(WeightingScheme.CHI_H))
        )
        assert weights[(0, 1)] == 0.0
        assert weights[(0, 2)] > 0.0


class TestPruneDispatch:
    def test_supports_builtin_schemes_only(self):
        assert supports_pruning(BlastPruning())
        assert supports_pruning(WeightEdgePruning())
        assert supports_pruning(CardinalityNodePruning(reciprocal=True))

        class Custom(PruningScheme):
            def prune(self, graph, weights):
                return set(weights)

        class SubclassedBlast(BlastPruning):
            def prune(self, graph, weights):
                return set()

        assert not supports_pruning(Custom())
        # Subclasses must not be silently routed to the base vectorization.
        assert not supports_pruning(SubclassedBlast())

    def test_prune_mask_rejects_unknown_scheme(self, figure1_dirty):
        class Custom(PruningScheme):
            def prune(self, graph, weights):
                return set(weights)

        agraph = ArrayBlockingGraph(_blocks(figure1_dirty))
        with pytest.raises(TypeError, match="no vectorized pruning"):
            prune_mask(Custom(), agraph, agraph.weights())

    def test_backend_falls_back_for_custom_components(self, figure1_dirty):
        collection = _blocks(figure1_dirty)

        class KeepAll(PruningScheme):
            def prune(self, graph, weights):
                return set(weights)

        def constant_weighting(graph):
            return {edge: 1.0 for edge, _ in graph.edges()}

        for weighting, pruning in (
            (WeightingScheme.CBS, KeepAll()),
            (constant_weighting, BlastPruning()),
        ):
            assert vectorized_metablocking(
                collection, weighting=weighting, pruning=pruning
            ) == reference_metablocking(
                collection, weighting=weighting, pruning=pruning
            )


class TestBackendSelection:
    def test_registry_has_both_backends(self):
        assert set(BACKENDS.names()) >= {"python", "vectorized"}

    def test_metablocker_backends_agree(self, figure1_dirty):
        collection = _blocks(figure1_dirty)
        vec = MetaBlocker(backend="vectorized").run(collection)
        ref = MetaBlocker(backend="python").run(collection)
        assert vec.distinct_pairs() == ref.distinct_pairs()
        assert [b.key for b in vec] == [b.key for b in ref]

    def test_metablocker_accepts_scheme_name_string(self, figure1_dirty):
        collection = _blocks(figure1_dirty)
        named = MetaBlocker(weighting="cbs").run(collection)
        typed = MetaBlocker(weighting=WeightingScheme.CBS).run(collection)
        assert named.distinct_pairs() == typed.distinct_pairs()

    def test_unknown_backend_raises_with_choices(self, figure1_dirty):
        collection = _blocks(figure1_dirty)
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            MetaBlocker(backend="gpu").run(collection)

    def test_config_carries_backend(self):
        assert BlastConfig().backend == "vectorized"
        assert BlastConfig(backend="python").backend == "python"
        with pytest.raises(ValueError, match="backend"):
            BlastConfig(backend="")

    def test_run_detailed_matches_run(self, figure1_dirty):
        collection = _blocks(figure1_dirty)
        meta = MetaBlocker()
        blocks, graph, weights, retained = meta.run_detailed(collection)
        assert blocks.distinct_pairs() == meta.run(collection).distinct_pairs()
        assert set(weights) == {edge for edge, _ in graph.edges()}
        assert retained <= set(weights)
