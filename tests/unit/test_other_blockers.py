"""Tests for Standard, Q-grams and Suffix-Array blocking."""

import pytest

from repro.blocking import QGramsBlocking, StandardBlocking, SuffixArrayBlocking


class TestStandardBlocking:
    def test_value_mode_keys_whole_values(self, tiny_clean_clean):
        sb = StandardBlocking({"name": "fullname"}, key_mode="value")
        blocks = sb.build(tiny_clean_clean)
        by_key = {b.key: b for b in blocks}
        # exact value match: only "alice carol" pairs up across sources
        assert by_key["alice carol@0"].profiles == {0, 3}
        assert len(blocks) == 1

    def test_token_mode_is_finer(self, tiny_clean_clean):
        sb = StandardBlocking({"name": "fullname"}, key_mode="token")
        keys = {b.key for b in sb.build(tiny_clean_clean)}
        # "bob dylan" vs "bob dilan": token mode still links on "bob"
        assert "bob@0" in keys

    def test_multiple_aligned_attributes_get_distinct_groups(self, tiny_clean_clean):
        sb = StandardBlocking({"name": "fullname", "city": "town"}, key_mode="token")
        keys = {b.key for b in sb.build(tiny_clean_clean)}
        assert "rome@0" in keys or "rome@1" in keys
        groups = {key.rsplit("@", 1)[1] for key in keys}
        assert groups == {"0", "1"}

    def test_tokens_do_not_cross_attribute_groups(self, figure1_clean_clean):
        # Align names only: "abram" from p2's mail must not block with
        # p3's name2 "Abram" because mail is not aligned.
        sb = StandardBlocking({"Name": "name2"}, key_mode="token")
        blocks = sb.build(figure1_clean_clean)
        abram = next(b for b in blocks if b.key.startswith("abram"))
        assert abram.profiles == {0, 2}

    def test_rejects_empty_alignment(self):
        with pytest.raises(ValueError, match="alignment"):
            StandardBlocking({})

    def test_rejects_unknown_key_mode(self):
        with pytest.raises(ValueError, match="key_mode"):
            StandardBlocking({"a": "b"}, key_mode="chars")

    def test_for_dirty_constructor(self, figure1_dirty):
        sb = StandardBlocking.for_dirty(["year"], key_mode="token")
        blocks = sb.build(figure1_dirty)
        # p2 (year=85) and p3 (birth year=85): different attribute names,
        # only "year" is aligned, so just p1/p2 could collide on "year".
        keys = {b.key for b in blocks}
        assert all(k.endswith("@0") for k in keys)


class TestQGramsBlocking:
    def test_trigram_keys(self, tiny_clean_clean):
        blocks = QGramsBlocking(q=3).build(tiny_clean_clean)
        keys = {b.key for b in blocks}
        assert "ali" in keys  # from "alice"

    def test_tolerates_typos(self, tiny_clean_clean):
        # dylan vs dilan share the trigram "lan": q-grams still block them.
        blocks = QGramsBlocking(q=3).build(tiny_clean_clean)
        lan = next(b for b in blocks if b.key == "lan")
        assert {1, 4} <= lan.profiles

    def test_more_comparisons_than_token_blocking(self, figure1_clean_clean):
        from repro.blocking import TokenBlocking

        q = QGramsBlocking(q=3).build(figure1_clean_clean)
        t = TokenBlocking().build(figure1_clean_clean)
        assert q.aggregate_cardinality >= t.aggregate_cardinality

    def test_rejects_tiny_q(self):
        with pytest.raises(ValueError):
            QGramsBlocking(q=1)

    def test_dirty_mode(self, figure1_dirty):
        blocks = QGramsBlocking(q=4).build(figure1_dirty)
        abram_grams = [b for b in blocks if b.key in ("abra", "bram")]
        assert abram_grams
        for b in abram_grams:
            assert b.profiles == {0, 1, 2, 3}


class TestSuffixArrayBlocking:
    def test_suffix_keys(self, tiny_clean_clean):
        blocks = SuffixArrayBlocking(min_suffix_length=4).build(tiny_clean_clean)
        keys = {b.key for b in blocks}
        assert "alice" in keys and "lice" in keys

    def test_max_block_size_prunes_frequent_suffixes(self, figure1_dirty):
        small = SuffixArrayBlocking(min_suffix_length=2, max_block_size=3)
        blocks = small.build(figure1_dirty)
        assert all(b.size <= 3 for b in blocks)
        # "abram" suffixes index all 4 profiles -> dropped at cap 3
        assert "abram" not in {b.key for b in blocks}

    def test_validation(self):
        with pytest.raises(ValueError):
            SuffixArrayBlocking(min_suffix_length=0)
        with pytest.raises(ValueError):
            SuffixArrayBlocking(max_block_size=1)
