"""Tests for the TF-IDF attribute representation model."""

import pytest

from repro.data import EntityCollection, EntityProfile
from repro.schema.representation import (
    TfIdfAttributeModel,
    tfidf_attribute_match_induction,
)


@pytest.fixture
def collections():
    left = EntityCollection(
        [
            EntityProfile.from_dict("a1", {"name": "john abram", "year": "1985"}),
            EntityProfile.from_dict("a2", {"name": "ellen smith", "year": "1990"}),
        ],
        "L",
    )
    right = EntityCollection(
        [
            EntityProfile.from_dict("b1", {"fullname": "john abram", "born": "1985"}),
            EntityProfile.from_dict("b2", {"fullname": "ellen smith", "born": "1990"}),
        ],
        "R",
    )
    return left, right


class TestModel:
    def test_identical_attributes_have_cosine_one(self, collections):
        model = TfIdfAttributeModel(*collections)
        assert model.cosine((0, "name"), (1, "fullname")) == pytest.approx(1.0)
        assert model.cosine((0, "year"), (1, "born")) == pytest.approx(1.0)

    def test_disjoint_attributes_have_cosine_zero(self, collections):
        model = TfIdfAttributeModel(*collections)
        assert model.cosine((0, "name"), (1, "born")) == 0.0

    def test_unknown_ref_is_zero(self, collections):
        model = TfIdfAttributeModel(*collections)
        assert model.cosine((0, "ghost"), (1, "born")) == 0.0

    def test_refs_cover_both_sources(self, collections):
        model = TfIdfAttributeModel(*collections)
        assert (0, "name") in model.refs and (1, "born") in model.refs

    def test_idf_downweights_common_tokens(self):
        # "common" appears in every attribute; "rare" in one pair only.
        left = EntityCollection(
            [EntityProfile.from_dict("a", {"x": "common rare", "y": "common abc"})],
            "L",
        )
        right = EntityCollection(
            [EntityProfile.from_dict("b", {"u": "common rare", "v": "common xyz"})],
            "R",
        )
        model = TfIdfAttributeModel(left, right)
        # x-u share the rare token too: must be more similar than y-v,
        # which share only the ubiquitous one.
        assert model.cosine((0, "x"), (1, "u")) > model.cosine((0, "y"), (1, "v"))

    def test_vector_access(self, collections):
        model = TfIdfAttributeModel(*collections)
        vector = model.vector((0, "name"))
        assert set(vector) == {"john", "abram", "ellen", "smith"}
        assert all(weight > 0 for weight in vector.values())


class TestTfIdfInduction:
    def test_lmi_clusters_aligned_attributes(self, collections):
        model = TfIdfAttributeModel(*collections)
        part = tfidf_attribute_match_induction(model, method="lmi")
        assert part.cluster_of(0, "name") == part.cluster_of(1, "fullname") != 0
        assert part.cluster_of(0, "year") == part.cluster_of(1, "born") != 0

    def test_ac_variant(self, collections):
        model = TfIdfAttributeModel(*collections)
        part = tfidf_attribute_match_induction(model, method="ac")
        assert part.cluster_of(0, "name") == part.cluster_of(1, "fullname") != 0

    def test_dirty_single_source(self):
        collection = EntityCollection(
            [EntityProfile.from_dict("d", {"first": "ann bea",
                                           "alias": "ann bea",
                                           "year": "1985"})],
            "D",
        )
        model = TfIdfAttributeModel(collection)
        part = tfidf_attribute_match_induction(model, method="lmi")
        assert part.cluster_of(0, "first") == part.cluster_of(0, "alias") != 0

    def test_unknown_method_rejected(self, collections):
        model = TfIdfAttributeModel(*collections)
        with pytest.raises(ValueError, match="method"):
            tfidf_attribute_match_induction(model, method="magic")
