"""Tests for the edge weighting schemes."""

import math

import pytest

from repro.blocking import TokenBlocking
from repro.blocking.base import Block, BlockCollection
from repro.graph import BlockingGraph, WeightingScheme, compute_weights


@pytest.fixture
def fig1_graph(figure1_dirty) -> BlockingGraph:
    return BlockingGraph(TokenBlocking().build(figure1_dirty))


class TestCBS:
    def test_counts_shared_blocks(self, fig1_graph):
        w = compute_weights(fig1_graph, WeightingScheme.CBS)
        assert w[(0, 2)] == 4.0
        assert w[(0, 1)] == 1.0


class TestJS:
    def test_jaccard_of_block_sets(self, fig1_graph):
        w = compute_weights(fig1_graph, WeightingScheme.JS)
        # p1: 7 blocks, p3: 6 blocks, shared 4 -> 4/(7+6-4)
        assert w[(0, 2)] == pytest.approx(4 / 9)

    def test_bounded_by_one(self, fig1_graph):
        w = compute_weights(fig1_graph, WeightingScheme.JS)
        assert all(0.0 < v <= 1.0 for v in w.values())


class TestECBS:
    def test_formula(self, fig1_graph):
        w = compute_weights(fig1_graph, WeightingScheme.ECBS)
        expected = 4 * math.log10(12 / 7) * math.log10(12 / 6)
        assert w[(0, 2)] == pytest.approx(expected)

    def test_node_in_every_block_contributes_zero(self):
        blocks = BlockCollection(
            [Block("k", frozenset({0}), frozenset({5}))], True
        )
        w = compute_weights(BlockingGraph(blocks), WeightingScheme.ECBS)
        assert w[(0, 5)] == 0.0  # log(1/1) clamps to 0


class TestEJS:
    def test_scales_js_by_degree_idf(self, fig1_graph):
        js = compute_weights(fig1_graph, WeightingScheme.JS)
        ejs = compute_weights(fig1_graph, WeightingScheme.EJS)
        # all nodes have degree 3 of 6 edges: factor log10(2)^2 for every edge
        factor = math.log10(6 / 3) ** 2
        for edge in js:
            assert ejs[edge] == pytest.approx(js[edge] * factor)


class TestARCS:
    def test_small_blocks_weigh_more(self):
        blocks = BlockCollection(
            [
                Block("small", frozenset({0}), frozenset({5})),
                Block("big", frozenset({0, 1, 2}), frozenset({5, 6, 7})),
            ],
            True,
        )
        w = compute_weights(BlockingGraph(blocks), WeightingScheme.ARCS)
        assert w[(0, 5)] == pytest.approx(1.0 + 1 / 9)
        assert w[(1, 6)] == pytest.approx(1 / 9)


class TestChiH:
    def test_equals_chi_squared_when_entropy_neutral(self, fig1_graph):
        from repro.graph.contingency import chi_squared

        w = compute_weights(fig1_graph, WeightingScheme.CHI_H)
        assert w[(0, 2)] == pytest.approx(chi_squared(4, 7, 6, 12))

    def test_entropy_scales_weight(self):
        blocks = BlockCollection(
            [Block("k#1", frozenset({0}), frozenset({5})),
             Block("j#1", frozenset({1}), frozenset({6}))],
            True,
        )
        neutral = compute_weights(BlockingGraph(blocks), WeightingScheme.CHI_H)
        boosted = compute_weights(
            BlockingGraph(blocks, key_entropy=lambda key: 3.5),
            WeightingScheme.CHI_H,
        )
        assert boosted[(0, 5)] == pytest.approx(3.5 * neutral[(0, 5)])

    def test_figure3_entropy_reorders_edges(self):
        """Figure 2b -> 3b: entropy weighting flips the edge ordering.

        The name-cluster blocks (entropy 3.5) lift p1-p3 and p2-p4 above
        the other-attribute blocks (entropy 2.0)."""
        name = 3.5
        other = 2.0
        entropies = {"a#1": name, "b#1": name, "c#2": other, "d#2": other,
                     "f1#0": 1.0, "f2#0": 1.0}
        blocks = BlockCollection(
            [
                Block("a#1", frozenset({0}), frozenset({2})),  # p1-p3 names
                Block("b#1", frozenset({0}), frozenset({2})),
                Block("c#2", frozenset({1}), frozenset({2})),  # p2-p3 other
                Block("d#2", frozenset({1}), frozenset({2})),
                # filler blocks on unrelated profiles keep the contingency
                # tables non-degenerate (n22 > 0)
                Block("f1#0", frozenset({5}), frozenset({6})),
                Block("f2#0", frozenset({5}), frozenset({6})),
            ],
            True,
        )
        w = compute_weights(
            BlockingGraph(blocks, key_entropy=entropies.__getitem__),
            WeightingScheme.CHI_H,
        )
        assert w[(0, 2)] > w[(1, 2)] > 0.0


class TestEntropyBoost:
    def test_boost_multiplies_traditional_scheme(self, figure1_dirty):
        blocks = TokenBlocking().build(figure1_dirty)
        graph = BlockingGraph(blocks, key_entropy=lambda key: 2.0)
        plain = compute_weights(graph, WeightingScheme.JS)
        boosted = compute_weights(graph, WeightingScheme.JS, entropy_boost=True)
        for edge in plain:
            assert boosted[edge] == pytest.approx(2.0 * plain[edge])

    def test_traditional_list(self):
        assert WeightingScheme.CHI_H not in WeightingScheme.traditional()
        assert len(WeightingScheme.traditional()) == 5

    def test_scheme_accepts_string(self, fig1_graph):
        assert compute_weights(fig1_graph, "cbs") == compute_weights(
            fig1_graph, WeightingScheme.CBS
        )
