"""Unit tests: out-of-core spill files and the memmap-backed merge.

Whole-pipeline bit-identity of the spill tier is asserted by the
conformance ``TestSpillMode`` class and the parallel property suite;
these tests pin the file-level mechanics — atomic publication,
threshold gating, cleanup — on hand-sized arrays.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph.sharding import ShardEdges
from repro.graph.spill import (
    MB,
    SpillJob,
    SpillSpec,
    SpilledArray,
    SpilledShardEdges,
    concat_spillable,
    load_array,
    resolve_shard,
    spill_array,
    spill_shard,
)


def _edges(n: int, with_mass: bool = True) -> ShardEdges:
    rng = np.random.default_rng(7)
    return ShardEdges(
        src=np.arange(n, dtype=np.int64),
        dst=np.arange(n, dtype=np.int64)[::-1].copy(),
        shared=rng.integers(1, 5, size=n).astype(np.int64),
        arcs_mass=rng.random(n) if with_mass else None,
        entropy_mass=rng.random(n) if with_mass else None,
    )


class TestSpillJob:
    def test_creates_private_subdirectory(self, tmp_path):
        job = SpillJob(str(tmp_path), spill_threshold_mb=1.0)
        try:
            assert os.path.isdir(job.directory)
            assert os.path.dirname(job.directory) == str(tmp_path)
            assert os.path.basename(job.directory).startswith("repro-spill-")
            assert job.spec == SpillSpec(
                directory=job.directory, threshold_bytes=MB
            )
        finally:
            job.cleanup()

    def test_concurrent_jobs_do_not_collide(self, tmp_path):
        first = SpillJob(str(tmp_path), spill_threshold_mb=1.0)
        second = SpillJob(str(tmp_path), spill_threshold_mb=1.0)
        try:
            assert first.directory != second.directory
        finally:
            first.cleanup()
            second.cleanup()

    def test_cleanup_removes_tree_and_is_idempotent(self, tmp_path):
        job = SpillJob(str(tmp_path), spill_threshold_mb=1.0)
        spill_array(np.arange(10, dtype=np.int64), job.directory, "x")
        job.cleanup()
        assert not os.path.exists(job.directory)
        job.cleanup()  # second call must not raise

    def test_rejects_nonpositive_threshold(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            SpillJob(str(tmp_path), spill_threshold_mb=0)

    def test_creates_missing_parent(self, tmp_path):
        parent = tmp_path / "nested" / "spill"
        job = SpillJob(str(parent), spill_threshold_mb=1.0)
        try:
            assert os.path.isdir(job.directory)
        finally:
            job.cleanup()


class TestSpillArray:
    def test_round_trip_and_no_temp_leftovers(self, tmp_path):
        original = np.linspace(0.0, 1.0, 50)
        spilled = spill_array(original, str(tmp_path), "weights")
        assert spilled.path == str(tmp_path / "weights.npy")
        assert sorted(os.listdir(tmp_path)) == ["weights.npy"]  # no .tmp
        loaded = load_array(spilled)
        assert isinstance(loaded, np.memmap)
        assert np.array_equal(loaded, original)

    def test_load_array_passthrough(self):
        array = np.arange(4, dtype=np.int64)
        assert load_array(array) is array
        assert load_array(None) is None


class TestSpillShard:
    def test_below_threshold_returns_inputs_unchanged(self, tmp_path):
        edges = _edges(8)
        weights = np.ones(8)
        spec = SpillSpec(directory=str(tmp_path), threshold_bytes=MB)
        out_edges, out_weights = spill_shard(edges, weights, spec, "shard-0")
        assert out_edges is edges
        assert out_weights is weights
        assert os.listdir(tmp_path) == []

    def test_no_spec_is_a_no_op(self, tmp_path):
        edges = _edges(8)
        out_edges, out_weights = spill_shard(edges, None, None, "shard-0")
        assert out_edges is edges
        assert out_weights is None

    def test_above_threshold_spills_and_round_trips(self, tmp_path):
        edges = _edges(64)
        weights = np.random.default_rng(3).random(64)
        spec = SpillSpec(directory=str(tmp_path), threshold_bytes=1)
        out_edges, out_weights = spill_shard(edges, weights, spec, "shard-0")
        assert isinstance(out_edges, SpilledShardEdges)
        assert isinstance(out_weights, SpilledArray)
        restored = resolve_shard(out_edges)
        assert np.array_equal(restored.src, edges.src)
        assert np.array_equal(restored.dst, edges.dst)
        assert np.array_equal(restored.shared, edges.shared)
        assert np.array_equal(restored.arcs_mass, edges.arcs_mass)
        assert np.array_equal(restored.entropy_mass, edges.entropy_mass)
        loaded_weights = load_array(out_weights)
        assert np.array_equal(loaded_weights, weights)

    def test_optional_mass_arrays_stay_none(self, tmp_path):
        edges = _edges(32, with_mass=False)
        spec = SpillSpec(directory=str(tmp_path), threshold_bytes=1)
        out_edges, _ = spill_shard(edges, None, spec, "shard-0")
        assert isinstance(out_edges, SpilledShardEdges)
        assert out_edges.arcs_mass is None
        assert out_edges.entropy_mass is None
        restored = resolve_shard(out_edges)
        assert restored.arcs_mass is None
        assert restored.entropy_mass is None

    def test_resolve_shard_passthrough_for_heap_edges(self):
        edges = _edges(4)
        assert resolve_shard(edges) is edges


class TestConcatSpillable:
    def _chunks(self) -> list[np.ndarray]:
        rng = np.random.default_rng(11)
        return [rng.integers(0, 100, size=n).astype(np.int64) for n in (5, 0, 9, 3)]

    def test_heap_path_matches_concatenate(self):
        chunks = self._chunks()
        merged = concat_spillable(chunks, None, "merged")
        expected = np.concatenate(chunks)
        assert merged.dtype == expected.dtype
        assert np.array_equal(merged, expected)

    def test_memmap_path_is_bit_identical(self, tmp_path):
        chunks = self._chunks()
        spec = SpillSpec(directory=str(tmp_path), threshold_bytes=1)
        merged = concat_spillable(chunks, spec, "merged")
        expected = np.concatenate(chunks)
        assert isinstance(merged, np.memmap)
        assert merged.dtype == expected.dtype
        assert merged.tobytes() == expected.tobytes()

    def test_under_budget_stays_on_heap(self, tmp_path):
        chunks = self._chunks()
        spec = SpillSpec(directory=str(tmp_path), threshold_bytes=MB)
        merged = concat_spillable(chunks, spec, "merged")
        assert not isinstance(merged, np.memmap)
        assert os.listdir(tmp_path) == []

    def test_empty_input_yields_canonical_empty(self):
        merged = concat_spillable([], None, "merged")
        assert merged.size == 0
        assert merged.dtype == np.int64

    def test_memmap_inputs_merge_identically(self, tmp_path):
        chunks = self._chunks()
        spilled = [
            load_array(spill_array(chunk, str(tmp_path), f"chunk-{i}"))
            for i, chunk in enumerate(chunks)
        ]
        merged = concat_spillable(spilled, None, "merged")
        assert np.array_equal(merged, np.concatenate(chunks))
