"""Unit tests: experiment configs, path resolution, grid expansion.

The declarative surface of :mod:`repro.experiments` — everything that
must fail loudly at config-load time (unknown keys, unregistered
component names, impossible sizes) and the deterministic pieces the
engine builds on (metric paths, grid expansion, run utilities).
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BlastConfig
from repro.experiments import (
    DatasetSpec,
    ExperimentConfig,
    PathError,
    PipelineSpec,
    Tolerance,
    expand_grid,
    load_config,
    resolve_path,
)
from repro.experiments.config import CompareSpec
from repro.experiments.runutils import (
    BASE_PROFILES,
    pairs_digest,
    percentiles_ms,
    scale_for_profiles,
)


class TestResolvePath:
    DOC = {
        "profiles": 10,
        "runs": [
            {"scheme": "chi_h", "retained_edges": 4712},
            {"scheme": "cbs", "retained_edges": 10564},
        ],
        "cells": [{"id": "ar1/chi_h/vectorized", "quality": {"f1": 0.9}}],
    }

    def test_plain_key(self):
        assert resolve_path(self.DOC, "profiles") == 10

    def test_key_value_selector(self):
        assert (
            resolve_path(self.DOC, "runs[scheme=cbs].retained_edges") == 10564
        )

    def test_selector_value_may_contain_slashes(self):
        assert (
            resolve_path(self.DOC, "cells[id=ar1/chi_h/vectorized].quality.f1")
            == 0.9
        )

    def test_index_selector(self):
        assert resolve_path(self.DOC, "runs[1].scheme") == "cbs"

    @pytest.mark.parametrize("path", [
        "nope",
        "runs[scheme=zzz].retained_edges",
        "runs[9].scheme",
        "profiles.deeper",
        "profiles[0]",
        "",
    ])
    def test_unresolvable_paths_raise(self, path):
        with pytest.raises(PathError):
            resolve_path(self.DOC, path)


class TestTolerance:
    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Tolerance(relative=-0.1)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Tolerance(absolute=float("inf"))


class TestSpecs:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown clean dataset"):
            DatasetSpec(name="nope")

    def test_dirty_kind_selects_dirty_catalogue(self):
        assert DatasetSpec(name="census", kind="dirty").display_label == "census"
        with pytest.raises(ValueError, match="unknown dirty dataset"):
            DatasetSpec(name="ar1", kind="dirty")

    def test_scale_and_profiles_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            DatasetSpec(name="ar1", scale=1.0, profiles=100)

    def test_smoke_cap_only_shrinks(self):
        spec = DatasetSpec(name="ar1", profiles=10_000)
        assert spec.effective_scale(500) == scale_for_profiles("ar1", 500)
        small = DatasetSpec(name="ar1", profiles=100)
        assert small.effective_scale(500) == scale_for_profiles("ar1", 100)

    def test_unknown_pipeline_component_rejected(self):
        with pytest.raises(ValueError, match="unknown weighting"):
            PipelineSpec(label="x", weighting="nope")
        with pytest.raises(ValueError, match="unknown pruning"):
            PipelineSpec(label="x", pruning="nope")

    def test_pipeline_overrides_validated_eagerly(self):
        with pytest.raises(ValueError, match="unknown BlastConfig field"):
            PipelineSpec(label="x", config={"use_entropee": False})

    def test_execution_knobs_rejected_in_overrides(self):
        with pytest.raises(ValueError, match="through the grid"):
            PipelineSpec(label="x", config={"workers": 4})

    def test_blast_config_carries_overrides_and_grid_point(self):
        spec = PipelineSpec(label="x", config={"use_entropy": False})
        config = spec.blast_config("parallel", 3, seed=7)
        assert config.use_entropy is False
        assert config.backend == "parallel"
        assert config.workers == 3
        assert config.seed == 7
        serial = spec.blast_config("vectorized", 3, seed=7)
        assert serial.workers is None  # serial backends take no workers knob

    def test_compare_spec_must_gate_something(self):
        with pytest.raises(ValueError, match="gates nothing"):
            CompareSpec(baseline="b.json")


class TestExperimentConfig:
    def _minimal(self, **overrides):
        data = {
            "name": "t",
            "datasets": [{"name": "ar1", "profiles": 100}],
            "pipelines": [{"label": "p", "blocker": "token"}],
        }
        data.update(overrides)
        return data

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ExperimentConfig.from_mapping(self._minimal(typo=1))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentConfig.from_mapping(self._minimal(backends=["nope"]))

    def test_unknown_reporter_rejected(self):
        with pytest.raises(ValueError, match="unknown reporter"):
            ExperimentConfig.from_mapping(self._minimal(reporters=["nope"]))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate pipeline labels"):
            ExperimentConfig.from_mapping(self._minimal(
                pipelines=[{"label": "p"}, {"label": "p"}]
            ))

    def test_grid_expansion_serial_vs_parallel(self):
        config = ExperimentConfig.from_mapping(self._minimal(
            backends=["vectorized", "parallel"], workers=[1, 2]
        ))
        cells = expand_grid(config)
        ids = [cell.id for cell in cells]
        assert ids == [
            "ar1/p/vectorized",
            "ar1/p/parallel/w1",
            "ar1/p/parallel/w2",
        ]

    def test_json_config_round_trip(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(self._minimal()), encoding="utf-8")
        config = load_config(path)
        assert config.name == "t"
        assert config.datasets[0].profiles == 100

    def test_load_errors_name_the_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(self._minimal(typo=1)), encoding="utf-8")
        with pytest.raises(ValueError, match="exp.json"):
            load_config(path)

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "exp.yaml"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported config suffix"):
            load_config(path)


class TestRunUtils:
    def test_scale_round_trips_base_profiles(self):
        for name, base in BASE_PROFILES.items():
            assert scale_for_profiles(name, base) == pytest.approx(1.0)

    def test_scale_rejects_unknown_and_nonpositive(self):
        with pytest.raises(ValueError, match="no base profile count"):
            scale_for_profiles("nope", 10)
        with pytest.raises(ValueError, match="positive"):
            scale_for_profiles("ar1", 0)

    def test_pairs_digest_is_order_independent(self):
        forward = pairs_digest([(1, 2), (3, 4)])
        assert forward == pairs_digest([(3, 4), (1, 2)])
        assert forward != pairs_digest([(1, 2)])

    def test_percentiles_of_empty_sample_are_zero(self):
        assert percentiles_ms([]) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }


class TestBlastConfigFromMapping:
    def test_unknown_keys_listed(self):
        with pytest.raises(ValueError, match="unknown BlastConfig field"):
            BlastConfig.from_mapping({"alpha": 0.5, "alphaa": 0.5})

    def test_valid_mapping_builds(self):
        config = BlastConfig.from_mapping({"alpha": 0.5, "weighting": "cbs"})
        assert config.alpha == 0.5
