"""Tests for contingency tables and the chi-squared statistic."""

import pytest

from repro.graph.contingency import ContingencyTable, chi_squared


class TestConstruction:
    def test_table_1_example(self):
        # Table 1 of the paper: p1/p3 over the Figure 1b blocks.
        # n11=4 shared; |B_p1|=6, |B_p3|=7, |B|=12.
        t = ContingencyTable.from_counts(
            shared=4, blocks_u=6, blocks_v=7, total_blocks=12
        )
        assert (t.n11, t.n12, t.n21, t.n22) == (4, 2, 3, 3)
        assert t.row_totals == (6, 6)
        assert t.col_totals == (7, 5)
        assert t.total == 12

    def test_inconsistent_shared_rejected(self):
        with pytest.raises(ValueError, match="shared"):
            ContingencyTable.from_counts(5, 3, 10, 20)

    def test_inconsistent_total_rejected(self):
        with pytest.raises(ValueError, match="total"):
            ContingencyTable.from_counts(1, 5, 5, 6)


class TestExpectedCounts:
    def test_margins_preserved(self):
        t = ContingencyTable.from_counts(4, 6, 7, 12)
        e11, e12, e21, e22 = t.expected()
        assert e11 + e12 == pytest.approx(t.row_totals[0])
        assert e11 + e21 == pytest.approx(t.col_totals[0])
        assert e11 + e12 + e21 + e22 == pytest.approx(t.total)

    def test_independence_formula(self):
        t = ContingencyTable.from_counts(4, 6, 7, 12)
        assert t.expected()[0] == pytest.approx(6 * 7 / 12)


class TestChiSquared:
    def test_nonnegative(self):
        assert chi_squared(4, 6, 7, 12) >= 0.0

    def test_zero_under_exact_independence(self):
        # P(u)=1/2, P(v)=1/2, joint 1/4 of 40 blocks: perfectly independent.
        assert chi_squared(10, 20, 20, 40) == pytest.approx(0.0)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        t = ContingencyTable.from_counts(5, 9, 8, 30)
        observed = [[t.n11, t.n12], [t.n21, t.n22]]
        expected, _ = scipy_stats.chi2_contingency(observed, correction=False)[:2]
        assert t.chi_squared() == pytest.approx(expected)

    def test_stronger_association_scores_higher(self):
        weak = chi_squared(3, 10, 10, 40)
        strong = chi_squared(9, 10, 10, 40)
        assert strong > weak

    def test_empty_table(self):
        t = ContingencyTable(0, 0, 0, 0)
        assert t.chi_squared() == 0.0

    def test_saturated_co_occurrence(self):
        # u and v appear together in every one of their blocks.
        value = chi_squared(6, 6, 6, 20)
        assert value > chi_squared(3, 6, 6, 20)
