"""Tests for the benchmark dataset configurations (Table 2 / Table 7)."""

import pytest

from repro.datasets import (
    dataset_characteristics,
    load_clean_clean,
    load_dirty,
)
from repro.datasets.benchmarks import CLEAN_CLEAN_DATASETS, PAPER_SCALE
from repro.datasets.dirty import DIRTY_DATASETS


class TestCleanCleanConfigs:
    def test_all_names_load(self):
        for name in CLEAN_CLEAN_DATASETS:
            ds = load_clean_clean(name, scale=0.05)
            assert ds.is_clean_clean
            assert ds.num_duplicates > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_clean_clean("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            load_clean_clean("ar1", scale=0)

    def test_scale_grows_sizes(self):
        small = load_clean_clean("prd", scale=0.2)
        large = load_clean_clean("prd", scale=0.4)
        assert large.num_profiles > small.num_profiles

    def test_deterministic_given_seed(self):
        a = load_clean_clean("ar1", scale=0.1, seed=3)
        b = load_clean_clean("ar1", scale=0.1, seed=3)
        assert [p.attributes for p in a.collection1] == \
            [p.attributes for p in b.collection1]
        assert a.truth_pairs == b.truth_pairs

    def test_ar1_is_fully_mappable_4x4(self):
        stats = dataset_characteristics(load_clean_clean("ar1", scale=0.2))
        assert stats.attributes1 == 4 and stats.attributes2 == 4

    def test_mov_is_partially_mappable_4x7(self):
        stats = dataset_characteristics(load_clean_clean("mov", scale=0.2))
        assert stats.attributes1 == 4 and stats.attributes2 == 7

    def test_dbp_has_wide_schemas(self):
        stats = dataset_characteristics(load_clean_clean("dbp", scale=0.2))
        assert stats.attributes1 > 50 and stats.attributes2 > 50

    def test_ar2_size_asymmetry(self):
        stats = dataset_characteristics(load_clean_clean("ar2", scale=0.2))
        assert stats.size2 > 5 * stats.size1  # DBLP vs Scholar imbalance

    def test_paper_scale_recorded_for_all(self):
        assert set(PAPER_SCALE) == set(CLEAN_CLEAN_DATASETS)

    def test_characteristics_rejects_dirty(self):
        with pytest.raises(ValueError):
            dataset_characteristics(load_dirty("census", scale=0.2))

    def test_dbp_wide_variant(self):
        from repro.datasets.benchmarks import load_dbp_wide

        narrow = dataset_characteristics(load_dbp_wide(num_rare=40, scale=0.1))
        wide = dataset_characteristics(load_dbp_wide(num_rare=120, scale=0.1))
        assert wide.attributes1 > narrow.attributes1

    def test_dbp_wide_validation(self):
        from repro.datasets.benchmarks import load_dbp_wide

        with pytest.raises(ValueError, match="num_rare"):
            load_dbp_wide(num_rare=0)


class TestDirtyConfigs:
    def test_all_names_load(self):
        for name in DIRTY_DATASETS:
            ds = load_dirty(name, scale=0.1)
            assert not ds.is_clean_clean

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dirty("nope")

    def test_census_structure(self):
        ds = load_dirty("census", scale=1.0)
        assert len(ds.collection1.attribute_names) == 5
        # duplicates come in pairs: matches == duplicated entities
        assert ds.num_duplicates == 300

    def test_cora_heavy_duplication(self):
        ds = load_dirty("cora", scale=1.0)
        # few entities, many duplicates each: matches far exceed profiles
        assert ds.num_duplicates > 5 * ds.num_profiles

    def test_cddb_wide_schema(self):
        ds = load_dirty("cddb", scale=0.3)
        assert len(ds.collection1.attribute_names) > 30

    def test_ground_truth_pairs_resolvable(self):
        ds = load_dirty("census", scale=0.2)
        for i, j in ds.truth_pairs:
            assert i != j
            assert ds.profile(i) is not None and ds.profile(j) is not None
