"""Tests for repro.blocking.base: Block, BlockCollection, build_blocks."""

import pytest

from repro.blocking.base import Block, BlockCollection, build_blocks


class TestBlock:
    def test_clean_clean_comparisons(self):
        b = Block("k", frozenset({0, 1}), frozenset({5, 6, 7}))
        assert b.num_comparisons == 6
        assert b.size == 5

    def test_dirty_comparisons(self):
        b = Block("k", frozenset({0, 1, 2, 3}))
        assert b.num_comparisons == 6
        assert b.size == 4

    def test_clean_clean_pairs_cross_source_only(self):
        b = Block("k", frozenset({0}), frozenset({5, 6}))
        assert set(b.iter_pairs()) == {(0, 5), (0, 6)}

    def test_dirty_pairs_canonical(self):
        b = Block("k", frozenset({3, 1, 2}))
        assert set(b.iter_pairs()) == {(1, 2), (1, 3), (2, 3)}

    def test_profiles_union(self):
        b = Block("k", frozenset({0}), frozenset({5}))
        assert b.profiles == {0, 5}

    def test_singleton_dirty_block_has_no_pairs(self):
        b = Block("k", frozenset({9}))
        assert b.num_comparisons == 0
        assert list(b.iter_pairs()) == []

    def test_iter_pairs_sort_is_cached_and_stable(self):
        b = Block("k", frozenset({3, 1, 2}), frozenset({7, 5}))
        first = list(b.iter_pairs())
        assert first == [(1, 5), (1, 7), (2, 5), (2, 7), (3, 5), (3, 7)]
        # Second enumeration reuses the cached sorted tuples ...
        assert b._pair_order() is b._pair_order()
        assert list(b.iter_pairs()) == first

    def test_sort_cache_does_not_leak_into_identity(self):
        a = Block("k", frozenset({1, 2}), frozenset({5}))
        b = Block("k", frozenset({1, 2}), frozenset({5}))
        list(a.iter_pairs())  # populate a's cache only
        assert a == b
        assert hash(a) == hash(b)
        assert "sorted" not in repr(a)


class TestBlockCollection:
    def test_kind_mismatch_rejected(self):
        dirty_block = Block("k", frozenset({1, 2}))
        with pytest.raises(ValueError, match="kind"):
            BlockCollection([dirty_block], is_clean_clean=True)

    def test_aggregate_cardinality_sums_blocks(self):
        blocks = [
            Block("a", frozenset({0}), frozenset({5, 6})),
            Block("b", frozenset({0, 1}), frozenset({5})),
        ]
        assert BlockCollection(blocks, True).aggregate_cardinality == 4

    def test_profile_block_sets(self):
        blocks = [
            Block("a", frozenset({0}), frozenset({5})),
            Block("b", frozenset({0}), frozenset({6})),
        ]
        bc = BlockCollection(blocks, True)
        assert bc.profile_block_sets[0] == {0, 1}
        assert bc.profile_block_sets[5] == {0}
        assert bc.num_indexed_profiles == 3

    def test_distinct_pairs_removes_redundancy(self):
        blocks = [
            Block("a", frozenset({0}), frozenset({5})),
            Block("b", frozenset({0}), frozenset({5})),
        ]
        assert BlockCollection(blocks, True).distinct_pairs() == {(0, 5)}

    def test_filter_blocks(self):
        blocks = [
            Block("tiny", frozenset({0}), frozenset({5})),
            Block("big", frozenset({0, 1, 2}), frozenset({5, 6, 7})),
        ]
        bc = BlockCollection(blocks, True)
        kept = bc.filter_blocks(lambda b: b.size <= 2)
        assert [b.key for b in kept] == ["tiny"]

    def test_sequence_protocol(self):
        bc = BlockCollection([Block("a", frozenset({1, 2}))], False)
        assert len(bc) == 1
        assert bc[0].key == "a"


class TestBuildBlocks:
    def test_clean_clean_drops_one_sided_keys(self):
        keyed = {"both": ({0}, {5}), "left_only": ({0}, set())}
        bc = build_blocks(keyed, is_clean_clean=True)
        assert [b.key for b in bc] == ["both"]

    def test_dirty_drops_singletons(self):
        keyed = {"pair": {0, 1}, "single": {2}}
        bc = build_blocks(keyed, is_clean_clean=False)
        assert [b.key for b in bc] == ["pair"]

    def test_keys_sorted_for_determinism(self):
        keyed = {"zz": {0, 1}, "aa": {2, 3}}
        bc = build_blocks(keyed, is_clean_clean=False)
        assert [b.key for b in bc] == ["aa", "zz"]
