"""Tests for MinHash, LSH banding and the S-curve."""

import numpy as np
import pytest

from repro.lsh import (
    LSHBanding,
    MinHasher,
    candidate_probability,
    choose_bands,
    estimated_threshold,
    lsh_candidate_pairs,
    scurve_points,
)
from repro.schema.attribute_profile import AttributeProfile
from repro.schema.similarity import jaccard


class TestMinHasher:
    def test_signature_shape(self):
        sigs = MinHasher(num_hashes=32, seed=1).signatures([{"a", "b"}, {"c"}])
        assert sigs.shape == (2, 32)

    def test_identical_sets_identical_signatures(self):
        sigs = MinHasher(num_hashes=64, seed=1).signatures(
            [{"a", "b", "c"}, {"a", "b", "c"}]
        )
        assert np.array_equal(sigs[0], sigs[1])

    def test_deterministic_given_seed(self):
        sets = [{"a", "b"}, {"b", "c"}]
        s1 = MinHasher(num_hashes=16, seed=7).signatures(sets)
        s2 = MinHasher(num_hashes=16, seed=7).signatures(sets)
        assert np.array_equal(s1, s2)

    def test_estimate_approximates_jaccard(self):
        a = {f"t{i}" for i in range(100)}
        b = {f"t{i}" for i in range(50, 150)}  # true jaccard = 50/150
        hasher = MinHasher(num_hashes=512, seed=3)
        sigs = hasher.signatures([a, b])
        estimate = hasher.estimate_jaccard(sigs[0], sigs[1])
        assert estimate == pytest.approx(jaccard(a, b), abs=0.08)

    def test_empty_sets_never_collide(self):
        sigs = MinHasher(num_hashes=8, seed=1).signatures([set(), set(), {"a"}])
        assert not np.array_equal(sigs[0], sigs[1])

    def test_shape_mismatch_rejected(self):
        hasher = MinHasher(num_hashes=8, seed=1)
        sigs = hasher.signatures([{"a"}])
        with pytest.raises(ValueError):
            hasher.estimate_jaccard(sigs[0], sigs[0][:4])

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)


class TestSCurve:
    def test_paper_example_threshold(self):
        # Section 3.1.2: b=30, r=5 -> threshold ~0.5
        assert estimated_threshold(5, 30) == pytest.approx(0.506, abs=0.01)

    def test_probability_monotone_in_similarity(self):
        s, p = scurve_points(5, 30, num=50)
        assert np.all(np.diff(p) >= -1e-12)

    def test_probability_extremes(self):
        assert candidate_probability(0.0, 5, 30) == 0.0
        assert candidate_probability(1.0, 5, 30) == pytest.approx(1.0)

    def test_probability_at_threshold_is_transitional(self):
        t = estimated_threshold(5, 30)
        p = candidate_probability(t, 5, 30)
        assert 0.3 < p < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            estimated_threshold(0, 30)
        with pytest.raises(ValueError):
            candidate_probability(0.5, 5, 0)


class TestBanding:
    def test_num_hashes(self):
        assert LSHBanding(bands=30, rows=5).num_hashes == 150

    def test_identical_signatures_are_candidates(self):
        sigs = MinHasher(num_hashes=20, seed=1).signatures([{"a", "b"}, {"a", "b"}])
        pairs = LSHBanding(bands=4, rows=5).candidate_pairs(sigs)
        assert (0, 1) in pairs

    def test_disjoint_sets_rarely_candidates(self):
        sets = [{f"x{i}"} for i in range(10)]
        sigs = MinHasher(num_hashes=20, seed=1).signatures(sets)
        pairs = LSHBanding(bands=4, rows=5).candidate_pairs(sigs)
        assert pairs == set()

    def test_cross_source_filter(self):
        sigs = MinHasher(num_hashes=20, seed=1).signatures(
            [{"a", "b"}, {"a", "b"}, {"a", "b"}]
        )
        pairs = LSHBanding(bands=4, rows=5).candidate_pairs(sigs, sources=[0, 0, 1])
        assert (0, 1) not in pairs  # same source
        assert (0, 2) in pairs and (1, 2) in pairs

    def test_wrong_signature_width_rejected(self):
        sigs = MinHasher(num_hashes=10, seed=1).signatures([{"a"}])
        with pytest.raises(ValueError, match="bands\\*rows"):
            LSHBanding(bands=4, rows=5).candidate_pairs(sigs)


class TestChooseBands:
    def test_matches_requested_threshold(self):
        banding = choose_bands(150, 0.5)
        assert banding.num_hashes == 150
        assert banding.threshold == pytest.approx(0.5, abs=0.05)

    def test_low_threshold_gives_many_bands(self):
        low = choose_bands(150, 0.1)
        high = choose_bands(150, 0.8)
        assert low.bands > high.bands

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            choose_bands(150, 0.0)


class TestLshCandidatePairs:
    def _profiles(self):
        p1 = [
            AttributeProfile(0, "name", frozenset(f"n{i}" for i in range(60))),
            AttributeProfile(0, "year", frozenset({"1985", "1990", "2001"})),
        ]
        p2 = [
            AttributeProfile(1, "fullname", frozenset(f"n{i}" for i in range(55))),
            AttributeProfile(1, "when", frozenset({"1985", "1990"})),
        ]
        return p1, p2

    def test_similar_attributes_become_candidates(self):
        p1, p2 = self._profiles()
        pairs = lsh_candidate_pairs(p1, p2, threshold=0.3, num_hashes=100, seed=5)
        assert ((0, "name"), (1, "fullname")) in pairs

    def test_only_cross_source_pairs(self):
        p1, p2 = self._profiles()
        pairs = lsh_candidate_pairs(p1, p2, threshold=0.1, num_hashes=100, seed=5)
        assert all(a[0] != b[0] for a, b in pairs)

    def test_dirty_mode_allows_within_source(self):
        profiles = [
            AttributeProfile(0, "a", frozenset({"x", "y", "z"})),
            AttributeProfile(0, "b", frozenset({"x", "y", "z"})),
        ]
        pairs = lsh_candidate_pairs(profiles, None, threshold=0.3,
                                    num_hashes=100, seed=5)
        assert ((0, "a"), (0, "b")) in pairs

    def test_explicit_banding_overrides_threshold(self):
        p1, p2 = self._profiles()
        banding = LSHBanding(bands=25, rows=4)
        pairs = lsh_candidate_pairs(p1, p2, banding=banding, seed=5)
        assert ((0, "name"), (1, "fullname")) in pairs
