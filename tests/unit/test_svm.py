"""Tests for the from-scratch linear SVM."""

import numpy as np
import pytest

from repro.supervised.svm import LinearSVM


def _separable(n: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=2.0, scale=0.5, size=(n // 2, 2))
    neg = rng.normal(loc=-2.0, scale=0.5, size=(n // 2, 2))
    X = np.vstack([pos, neg])
    y = np.array([1.0] * (n // 2) + [-1.0] * (n // 2))
    return X, y


class TestTraining:
    def test_separates_linearly_separable_data(self):
        X, y = _separable()
        svm = LinearSVM(seed=1).fit(X, y)
        accuracy = np.mean(svm.predict(X) == y)
        assert accuracy > 0.98

    def test_accepts_zero_one_labels(self):
        X, y = _separable()
        svm = LinearSVM(seed=1).fit(X, (y > 0).astype(float))
        assert np.mean(svm.predict(X) == y) > 0.98

    def test_deterministic_given_seed(self):
        X, y = _separable()
        w1 = LinearSVM(seed=3).fit(X, y).weights
        w2 = LinearSVM(seed=3).fit(X, y).weights
        assert np.allclose(w1, w2)

    def test_decision_function_sign_matches_predict(self):
        X, y = _separable()
        svm = LinearSVM(seed=1).fit(X, y)
        scores = svm.decision_function(X)
        assert np.array_equal(np.where(scores >= 0, 1, -1), svm.predict(X))

    def test_standardization_handles_constant_feature(self):
        X, y = _separable()
        X = np.hstack([X, np.ones((X.shape[0], 1))])  # zero-variance column
        svm = LinearSVM(seed=1).fit(X, y)
        assert np.isfinite(svm.decision_function(X)).all()

    def test_margin_correlates_with_distance(self):
        X, y = _separable()
        svm = LinearSVM(seed=1).fit(X, y)
        far = svm.decision_function(np.array([[5.0, 5.0]]))[0]
        near = svm.decision_function(np.array([[0.2, 0.2]]))[0]
        assert far > near


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 2)))

    def test_single_class_rejected(self):
        X = np.zeros((5, 2))
        y = np.ones(5)
        with pytest.raises(ValueError, match="both classes"):
            LinearSVM().fit(X, y)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            LinearSVM().fit(np.zeros((4, 2)), np.ones(3))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LinearSVM(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)
