"""Tests for edge features and supervised meta-blocking."""

import numpy as np
import pytest

from repro.blocking import TokenBlocking
from repro.graph import BlockingGraph
from repro.metrics import evaluate_blocks
from repro.supervised import EDGE_FEATURE_NAMES, SupervisedMetaBlocking, edge_features


class TestEdgeFeatures:
    def test_shape_and_names(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        edges = [edge for edge, _ in graph.edges()]
        X = edge_features(graph, edges)
        assert X.shape == (len(edges), len(EDGE_FEATURE_NAMES))
        assert np.isfinite(X).all()

    def test_js_feature_matches_weighting_scheme(self, figure1_dirty):
        from repro.graph import WeightingScheme, compute_weights

        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        edges = [edge for edge, _ in graph.edges()]
        X = edge_features(graph, edges)
        js = compute_weights(graph, WeightingScheme.JS)
        js_column = EDGE_FEATURE_NAMES.index("js")
        for row, edge in enumerate(edges):
            assert X[row, js_column] == pytest.approx(js[edge])

    def test_degree_features_normalized(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        edges = [edge for edge, _ in graph.edges()]
        X = edge_features(graph, edges)
        nd = X[:, [3, 4]]
        assert (nd > 0).all() and (nd <= 1).all()

    def test_matching_edges_score_higher_on_raccb(self, figure1_dirty):
        graph = BlockingGraph(TokenBlocking().build(figure1_dirty))
        edges = [edge for edge, _ in graph.edges()]
        X = edge_features(graph, edges)
        raccb = dict(zip(edges, X[:, 1]))
        # true matches p1-p3 and p2-p4 accumulate more small-block mass
        # than the "abram"-only pairs p1-p2, p3-p4
        assert raccb[(0, 2)] > raccb[(0, 1)]
        assert raccb[(1, 3)] > raccb[(2, 3)]


class TestSupervisedMetaBlocking:
    def test_improves_pq_on_benchmark(self):
        from repro import load_clean_clean, prepare_blocks

        ds = load_clean_clean("ar1", scale=0.5)
        base = prepare_blocks(ds)
        out = SupervisedMetaBlocking(seed=7).run(base, ds)
        before = evaluate_blocks(base, ds)
        after = evaluate_blocks(out, ds)
        assert after.pair_quality > before.pair_quality
        assert after.pair_completeness > 0.8

    def test_deterministic_given_seed(self):
        from repro import load_clean_clean, prepare_blocks

        ds = load_clean_clean("prd", scale=0.5)
        base = prepare_blocks(ds)
        out1 = SupervisedMetaBlocking(seed=5).run(base, ds)
        out2 = SupervisedMetaBlocking(seed=5).run(base, ds)
        assert {b.key for b in out1} == {b.key for b in out2}

    def test_degenerate_no_positives_keeps_everything(self, figure1_dirty):
        from repro.data import ERDataset, GroundTruth

        no_matches = ERDataset(
            figure1_dirty.collection1, None,
            GroundTruth([], clean_clean=False), "empty-gt",
        )
        blocks = TokenBlocking().build(no_matches)
        out = SupervisedMetaBlocking(seed=1).run(blocks, no_matches)
        graph = BlockingGraph(blocks)
        assert len(out) == graph.num_edges

    def test_empty_collection(self, figure1_dirty):
        from repro.blocking.base import BlockCollection

        out = SupervisedMetaBlocking().run(
            BlockCollection([], False), figure1_dirty
        )
        assert len(out) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedMetaBlocking(training_fraction=0.0)
        with pytest.raises(ValueError):
            SupervisedMetaBlocking(negative_ratio=-1.0)
