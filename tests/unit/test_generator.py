"""Tests for the synthetic dataset generator machinery."""

import pytest

from repro.datasets.generator import (
    FieldSpec,
    NoiseModel,
    SourceSchema,
    make_clean_clean_dataset,
    make_dirty_dataset,
    sample_entities,
)
from repro.datasets.vocabulary import make_vocabulary
from repro.utils.rng import make_rng

FIELDS = (
    FieldSpec("name", lambda rng, v: v.pick(rng, v.first_names)),
    FieldSpec("year", lambda rng, v: str(int(rng.integers(1980, 1990)))),
    FieldSpec("rare", lambda rng, v: "rareword", present_prob=0.3),
)

SCHEMA_A = SourceSchema("A", {"name": ("name",), "year": ("year",),
                              "rare": ("rare",)}, noise=NoiseModel(0, 0, 0, 0))
SCHEMA_B = SourceSchema("B", {"fullname": ("name",), "when": ("year",)},
                        noise=NoiseModel(0, 0, 0, 0))


class TestNoiseModel:
    def test_zero_noise_is_identity(self):
        noise = NoiseModel(0, 0, 0, 0)
        rng = make_rng(1)
        assert noise.corrupt(rng, "john abram") == "john abram"

    def test_missing_prob_one_always_drops(self):
        noise = NoiseModel(0, 0, 0, missing_prob=1.0)
        assert noise.corrupt(make_rng(1), "anything") is None

    def test_numeric_truncation(self):
        noise = NoiseModel(0, 0, 0, 0, numeric_truncate_prob=1.0)
        assert noise.corrupt(make_rng(1), "1985") == "85"
        assert noise.corrupt(make_rng(1), "word") == "word"

    def test_token_drop_reduces_tokens(self):
        noise = NoiseModel(0, token_drop_prob=1.0, abbreviate_prob=0,
                           missing_prob=0)
        out = noise.corrupt(make_rng(1), "one two three")
        assert len(out.split()) == 2

    def test_abbreviation_shortens_a_token(self):
        noise = NoiseModel(0, 0, abbreviate_prob=1.0, missing_prob=0)
        out = noise.corrupt(make_rng(3), "jonathan smithson")
        assert any(token.endswith(".") for token in out.split())

    def test_typo_changes_value(self):
        noise = NoiseModel(typo_prob=1.0, token_drop_prob=0,
                           abbreviate_prob=0, missing_prob=0)
        original = "abcdefgh"
        corrupted = {noise.corrupt(make_rng(i), original) for i in range(10)}
        assert any(value != original for value in corrupted)


class TestSampleEntities:
    def test_present_prob_controls_sparsity(self):
        entities = sample_entities(FIELDS, 500, make_rng(1), make_vocabulary())
        with_rare = sum(1 for e in entities if "rare" in e)
        assert 0.2 < with_rare / 500 < 0.4
        assert all("name" in e and "year" in e for e in entities)


class TestSourceSchemaRender:
    def test_renders_renamed_attributes(self):
        entity = {"name": "ann", "year": "1985"}
        profile = SCHEMA_B.render("x", entity, make_rng(1))
        assert profile.values("fullname") == ["ann"]
        assert profile.values("when") == ["1985"]

    def test_merging_fields(self):
        schema = SourceSchema("M", {"combined": ("name", "year")},
                              noise=NoiseModel(0, 0, 0, 0))
        profile = schema.render("x", {"name": "ann", "year": "1985"}, make_rng(1))
        assert profile.values("combined") == ["ann 1985"]

    def test_absent_fields_produce_no_attribute(self):
        profile = SCHEMA_A.render("x", {"name": "ann", "year": "1985"}, make_rng(1))
        assert "rare" not in profile.attribute_names


class TestCleanCleanDataset:
    def test_sizes_and_overlap(self):
        ds = make_clean_clean_dataset(
            "t", FIELDS, SCHEMA_A, SCHEMA_B,
            size1=40, size2=30, matches=10, seed=5,
        )
        assert len(ds.collection1) == 40
        assert len(ds.collection2) == 30
        assert ds.num_duplicates == 10

    def test_matching_profiles_share_underlying_entity(self):
        ds = make_clean_clean_dataset(
            "t", FIELDS, SCHEMA_A, SCHEMA_B,
            size1=40, size2=30, matches=10, seed=5,
        )
        for i, j in ds.truth_pairs:
            left, right = ds.profile(i), ds.profile(j)
            # noiseless schemas: the name value must be identical
            assert left.values("name") == right.values("fullname")

    def test_deterministic_given_seed(self):
        a = make_clean_clean_dataset("t", FIELDS, SCHEMA_A, SCHEMA_B,
                                     size1=20, size2=20, matches=5, seed=9)
        b = make_clean_clean_dataset("t", FIELDS, SCHEMA_A, SCHEMA_B,
                                     size1=20, size2=20, matches=5, seed=9)
        assert [p.attributes for p in a.collection1] == \
            [p.attributes for p in b.collection1]

    def test_too_many_matches_rejected(self):
        with pytest.raises(ValueError, match="matches"):
            make_clean_clean_dataset("t", FIELDS, SCHEMA_A, SCHEMA_B,
                                     size1=5, size2=5, matches=6, seed=1)


class TestDirtyDataset:
    def test_cluster_sizes_define_duplicates(self):
        ds = make_dirty_dataset("t", FIELDS, SCHEMA_A,
                                cluster_sizes=[3, 2, 1], seed=4)
        assert ds.num_profiles == 6
        assert ds.num_duplicates == 3 + 1  # C(3,2) + C(2,2)

    def test_profiles_shuffled(self):
        ds = make_dirty_dataset("t", FIELDS, SCHEMA_A,
                                cluster_sizes=[2] * 20, seed=4)
        ids = [p.profile_id for p in ds.collection1]
        assert ids != sorted(ids, key=lambda x: int(x[1:]))

    def test_invalid_cluster_size_rejected(self):
        with pytest.raises(ValueError):
            make_dirty_dataset("t", FIELDS, SCHEMA_A, cluster_sizes=[0], seed=1)
