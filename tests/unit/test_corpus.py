"""Tests for the interned columnar corpus (repro.data.corpus)."""

import numpy as np
import pytest

from repro.data import (
    EntityCollection,
    EntityProfile,
    ERDataset,
    GroundTruth,
    InternedCorpus,
    TokenDictionary,
)
from repro.schema.attribute_profile import build_attribute_profiles
from repro.schema.entropy import attribute_entropies
from repro.utils.tokenize import qgrams, suffixes, tokenize


class TestTokenDictionary:
    def test_intern_assigns_dense_stable_ids(self):
        d = TokenDictionary()
        assert d.intern("abram") == 0
        assert d.intern("st") == 1
        assert d.intern("abram") == 0  # stable on re-intern
        assert len(d) == 2

    def test_lookup_and_membership(self):
        d = TokenDictionary(["abram", "st"])
        assert d.id_of("st") == 1
        assert d.token_of(0) == "abram"
        assert "abram" in d and "ellen" not in d
        assert d.get("ellen") is None
        with pytest.raises(KeyError):
            d.id_of("ellen")

    def test_iterates_in_id_order(self):
        d = TokenDictionary(["b", "a", "c"])
        assert list(d) == ["b", "a", "c"]

    def test_lengths_indexed_by_id(self):
        d = TokenDictionary(["abram", "st", "30"])
        assert d.lengths().tolist() == [5, 2, 2]

    def test_payload_round_trip_preserves_ids(self):
        d = TokenDictionary(["abram", "st", "30"])
        restored = TokenDictionary.from_payload(d.to_payload())
        for token in d:
            assert restored.id_of(token) == d.id_of(token)

    def test_duplicate_payload_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TokenDictionary.from_payload(["abram", "abram"])


class TestCorpusBuild:
    def test_one_row_per_occurrence_with_multiplicity(self):
        profile = EntityProfile.from_dict("p1", {"name": "st st abram"})
        dataset = ERDataset(
            EntityCollection([profile, profile_with("p2", "abram")]),
            None,
            GroundTruth([], clean_clean=False),
        )
        corpus = dataset.corpus
        assert corpus.num_profiles == 2
        # duplicates survive: "st" appears twice in p1
        tokens_p1 = [
            corpus.dictionary.token_of(t)
            for t in corpus.token_ids[
                corpus.profile_ptr[0] : corpus.profile_ptr[1]
            ].tolist()
        ]
        assert tokens_p1 == ["st", "st", "abram"]

    def test_cached_on_dataset(self, figure1_dirty):
        assert figure1_dirty.corpus is figure1_dirty.corpus

    def test_attribute_interning_is_source_scoped(self, figure1_clean_clean):
        corpus = figure1_clean_clean.corpus
        assert corpus.attr_id_of(0, "Name") is not None
        assert corpus.attr_id_of(1, "Name") is None  # E2 has no "Name"
        assert corpus.attr_id_of(1, "full name") is not None

    def test_short_tokens_are_kept_down_to_length_one(self):
        dataset = ERDataset(
            EntityCollection([profile_with("p1", "a bc")]),
            None,
            GroundTruth([], clean_clean=False),
        )
        corpus = dataset.corpus
        assert "a" in corpus.dictionary


class TestDistinctViews:
    def test_distinct_profile_tokens_match_profile_tokens(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        rows, toks = corpus.distinct_profile_tokens(2)
        by_profile: dict[int, set[str]] = {}
        for row, tok in zip(rows.tolist(), toks.tolist()):
            by_profile.setdefault(row, set()).add(corpus.dictionary.token_of(tok))
        for gidx, profile in figure1_dirty.iter_profiles():
            assert by_profile.get(gidx, set()) == set(profile.tokens())

    def test_profile_token_id_sets_align_with_strings(self, figure1_clean_clean):
        corpus = figure1_clean_clean.corpus
        sets = corpus.profile_token_id_sets(2)
        assert len(sets) == figure1_clean_clean.num_profiles
        for gidx, profile in figure1_clean_clean.iter_profiles():
            materialized = {corpus.dictionary.token_of(t) for t in sets[gidx]}
            assert materialized == set(profile.tokens())

    def test_length_floor_filters(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        _, toks = corpus.distinct_profile_tokens(4)
        assert all(
            len(corpus.dictionary.token_of(t)) >= 4 for t in set(toks.tolist())
        )


class TestAttributeTermCounts:
    def test_counts_match_counter_over_strings(self, figure1_clean_clean):
        corpus = figure1_clean_clean.corpus
        for source, collection in (
            (0, figure1_clean_clean.collection1),
            (1, figure1_clean_clean.collection2),
        ):
            attrs, toks, counts = corpus.attribute_term_counts(source, 2)
            reference: dict[tuple[str, str], int] = {}
            for profile in collection:
                for name, value in profile.iter_pairs():
                    for token in tokenize(value, 2):
                        reference[(name, token)] = (
                            reference.get((name, token), 0) + 1
                        )
            got = {
                (
                    corpus.attributes[a][1],
                    corpus.dictionary.token_of(t),
                ): c
                for a, t, c in zip(
                    attrs.tolist(), toks.tolist(), counts.tolist()
                )
            }
            assert got == reference

    def test_dirty_corpus_rejects_source_one(self, figure1_dirty):
        with pytest.raises(ValueError, match="single source"):
            figure1_dirty.corpus.attribute_term_counts(1, 2)


class TestExpansionTables:
    def test_qgram_table_matches_qgrams(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        terms, ptr, ids = corpus.qgram_table(3)
        for tid, token in enumerate(corpus.dictionary):
            derived = [terms.token_of(g) for g in ids[ptr[tid] : ptr[tid + 1]]]
            expected = list(dict.fromkeys(qgrams(token, 3)))
            assert derived == expected

    def test_suffix_table_matches_suffixes(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        terms, ptr, ids = corpus.suffix_table(3)
        for tid, token in enumerate(corpus.dictionary):
            derived = {terms.token_of(g) for g in ids[ptr[tid] : ptr[tid + 1]]}
            assert derived == set(suffixes(token, 3))

    def test_tables_are_cached(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        assert corpus.qgram_table(3) is corpus.qgram_table(3)
        assert corpus.suffix_table(4) is corpus.suffix_table(4)

    def test_expand_tokens_positions_track_inputs(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        rows, toks = corpus.distinct_profile_tokens(2)
        table = corpus.qgram_table(3)
        out_rows, grams, positions = corpus.expand_tokens(rows, toks, table)
        assert out_rows.tolist() == rows[positions].tolist()
        _, ptr, _ = table
        counts = (ptr[toks + 1] - ptr[toks]).tolist()
        assert len(grams) == sum(counts)


class TestSchemaConsumers:
    def test_entropies_equal_string_path(self, figure1_clean_clean):
        corpus = figure1_clean_clean.corpus
        for source, collection in (
            (0, figure1_clean_clean.collection1),
            (1, figure1_clean_clean.collection2),
        ):
            assert attribute_entropies(
                collection, source, corpus=corpus
            ) == attribute_entropies(collection, source)

    def test_attribute_profiles_equal_string_path(self, figure1_dirty):
        corpus = figure1_dirty.corpus
        assert build_attribute_profiles(
            figure1_dirty.collection1, 0, corpus=corpus
        ) == build_attribute_profiles(figure1_dirty.collection1, 0)


def profile_with(pid: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(pid, {"name": text})


def test_corpus_repr_mentions_sizes(figure1_dirty):
    text = repr(figure1_dirty.corpus)
    assert "profiles=4" in text and "vocabulary=" in text


def test_empty_dataset_corpus():
    dataset = ERDataset(
        EntityCollection([]), None, GroundTruth([], clean_clean=False)
    )
    corpus = dataset.corpus
    assert corpus.num_profiles == 0
    assert corpus.num_occurrences == 0
    rows, toks = corpus.distinct_profile_tokens(2)
    assert rows.size == 0 and toks.size == 0
    assert isinstance(InternedCorpus.build(dataset), InternedCorpus)


class TestMemmapPersistence:
    def test_round_trip_is_bit_identical(self, figure1_clean_clean, tmp_path):
        corpus = figure1_clean_clean.corpus
        corpus.to_memmap(str(tmp_path))
        reopened = InternedCorpus.from_memmap(str(tmp_path))
        assert reopened.offset2 == corpus.offset2
        assert reopened.is_clean_clean == corpus.is_clean_clean
        assert reopened.attributes == corpus.attributes
        for name in ("profile_ptr", "attr_ids", "token_ids"):
            original = getattr(corpus, name)
            restored = getattr(reopened, name)
            assert restored.dtype == original.dtype
            assert restored.tobytes() == original.tobytes()

    def test_reopened_arrays_are_memmapped(self, figure1_dirty, tmp_path):
        figure1_dirty.corpus.to_memmap(str(tmp_path))
        reopened = InternedCorpus.from_memmap(str(tmp_path))
        assert isinstance(reopened.profile_ptr, np.memmap)
        assert isinstance(reopened.token_ids, np.memmap)

    def test_token_ids_survive_round_trip(self, figure1_dirty, tmp_path):
        corpus = figure1_dirty.corpus
        corpus.to_memmap(str(tmp_path))
        reopened = InternedCorpus.from_memmap(str(tmp_path))
        for token in corpus.dictionary:
            assert reopened.dictionary.id_of(token) == corpus.dictionary.id_of(
                token
            )

    def test_no_temp_files_left_behind(self, figure1_dirty, tmp_path):
        figure1_dirty.corpus.to_memmap(str(tmp_path))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "attr_ids.npy",
            "corpus.json",
            "profile_ptr.npy",
            "token_ids.npy",
        ]

    def test_save_overwrites_previous_snapshot(self, figure1_dirty, tmp_path):
        figure1_dirty.corpus.to_memmap(str(tmp_path))
        figure1_dirty.corpus.to_memmap(str(tmp_path))  # idempotent re-save
        reopened = InternedCorpus.from_memmap(str(tmp_path))
        assert reopened.num_profiles == figure1_dirty.corpus.num_profiles

    def test_unknown_format_rejected(self, figure1_dirty, tmp_path):
        import json

        figure1_dirty.corpus.to_memmap(str(tmp_path))
        manifest = json.loads((tmp_path / "corpus.json").read_text())
        manifest["format"] = 99
        (tmp_path / "corpus.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            InternedCorpus.from_memmap(str(tmp_path))

    def test_empty_corpus_round_trips(self, tmp_path):
        dataset = ERDataset(
            EntityCollection([]), None, GroundTruth([], clean_clean=False)
        )
        dataset.corpus.to_memmap(str(tmp_path))
        reopened = InternedCorpus.from_memmap(str(tmp_path))
        assert reopened.num_profiles == 0
        assert reopened.num_occurrences == 0
